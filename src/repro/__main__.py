"""Command-line interface: ``python -m repro <file>``.

Analyzes a mini-C file (``.c``) or a textual-IR file (``.ir``) and
prints the inferred recursive predicates, the exit states, and the
timing breakdown.  ``--run`` additionally executes the program with the
concrete interpreter and model-checks every tree/list predicate whose
root the program returned.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import ShapeAnalysis
from repro.concrete import Interpreter
from repro.frontend import compile_c
from repro.ir import parse_program, print_program
from repro.logic import satisfies


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Shape analysis with inductive recursion synthesis "
            "(Guo, Vachharajani, August; PLDI 2007)"
        ),
    )
    parser.add_argument("file", help="a mini-C (.c) or textual-IR (.ir) file")
    parser.add_argument(
        "--no-slicing", action="store_true", help="disable the slicing pre-pass"
    )
    parser.add_argument(
        "--unroll",
        type=int,
        default=2,
        metavar="N",
        help="symbolic iterations before synthesis (default 2)",
    )
    parser.add_argument(
        "--dump-ir", action="store_true", help="print the (lowered) IR and exit"
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="also execute concretely and model-check the result",
    )
    parser.add_argument(
        "--invariants",
        action="store_true",
        help="print the verified loop invariants and procedure summaries",
    )
    return parser


def load_program(path: Path):
    text = path.read_text()
    if path.suffix == ".c":
        return compile_c(text)
    return parse_program(text)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    path = Path(args.file)
    if not path.exists():
        print(f"repro: no such file: {path}", file=sys.stderr)
        return 2
    program = load_program(path)

    if args.dump_ir:
        print(print_program(program))
        return 0

    result = ShapeAnalysis(
        program,
        name=path.stem,
        max_unroll=args.unroll,
        enable_slicing=not args.no_slicing,
    ).run()

    print(result.describe())
    if not result.succeeded:
        return 1

    print("\nexit states:")
    for state in result.exit_states:
        print("   ", state)

    if args.invariants:
        print("\nloop invariants and procedure summaries:")
        for line in result.describe_invariants().splitlines():
            print("   ", line)

    if args.run:
        run = Interpreter(load_program(path)).run()
        print(f"\nconcrete execution returned {run.value} "
              f"({len(run.heap.cells)} cells allocated)")
        if run.value in run.heap.cells:
            for definition in result.recursive_predicates():
                args_tuple = (run.value,) + (0,) * (definition.arity - 1)
                footprint = satisfies(
                    result.env, definition.name, args_tuple, run.heap.snapshot()
                )
                verdict = (
                    f"holds exactly on {len(footprint)} nodes"
                    if footprint == run.heap.reachable_from(run.value)
                    else ("holds (partial footprint)" if footprint else "does not hold here")
                )
                print(f"    {definition.name}{args_tuple}: {verdict}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
