"""Command-line interface: ``python -m repro <file>``.

Analyzes a mini-C file (``.c``), a textual-IR file (``.ir``), or a
built-in benchmark by name (``python -m repro treeadd``) and prints
the inferred recursive predicates, the exit states, and the timing
breakdown.  ``--run`` additionally executes the program with the
concrete interpreter and model-checks every tree/list predicate whose
root the program returned.  ``--batch`` instead drives the built-in
benchmark suite through the crash-isolating batch runner.

Observability: ``--trace FILE`` writes a hierarchical span trace of
the run as JSONL (with ``--batch``, a *directory* of one trace per
benchmark), ``--metrics`` prints the canonical engine metrics, and
``python -m repro trace-summary FILE`` aggregates a trace into the
top-down time/count tree.

Performance: ``python -m repro bench`` measures cached vs uncached
analysis throughput over the suite and writes a ``BENCH_<date>.json``
baseline; ``--no-cache`` disables the entailment cache for a single
run.

Soundness gates: ``python -m repro lemma-smoke`` is the CI gate for
the lemma-synthesis entailment fallback -- a seeded crucible campaign
whose oracle cross-checks every lemma-assisted pass against the
concrete interpreter and re-runs every non-pass with lemmas disabled
(lemmas may only *add* passes), plus the three curated lemma
regression scenarios whose fail-without/pass-with differential is
pinned.  ``--no-lemmas`` disables the fallback for a single run.

Serving: ``python -m repro serve`` runs the supervised analysis daemon
(persistent warm-cache workers behind a bounded queue; see
:mod:`repro.serve`), ``submit`` sends it one job, ``serve-bench``
load-tests it, and ``serve-smoke`` is the CI chaos gate.

Exit codes (stable, for batch drivers):

* ``0``   analysis succeeded (possibly degraded -- check the output);
* ``1``   the analysis failed (halt-and-report, budget exhaustion, or
  an internal error contained into a diagnostic);
* ``2``   usage errors: missing file, bad flags;
* ``3``   the input failed to parse, type-check, or lower to IR;
* ``--batch`` exits ``0`` only when no benchmark failed, crashed or
  timed out;
* ``--crucible`` exits ``0`` only when the fuzzing campaign found no
  differential-oracle violations (analysis failures on mutants are
  expected and fine; *unsound* or *unclassified* ones are not).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.analysis import ShapeAnalysis
from repro.concrete import Interpreter
from repro.frontend import compile_c
from repro.frontend.cparser import ParseError as CParseError
from repro.frontend.lexer import LexError
from repro.frontend.lower import LowerError
from repro.frontend.typecheck import TypeError_
from repro.ir import parse_program, print_program
from repro.ir.program import IRError
from repro.logic import satisfies

EXIT_OK = 0
EXIT_ANALYSIS_FAILED = 1
EXIT_USAGE = 2
EXIT_FRONTEND = 3

#: Everything the frontend can raise on malformed input.
FRONTEND_ERRORS = (CParseError, LexError, LowerError, TypeError_, IRError)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Shape analysis with inductive recursion synthesis "
            "(Guo, Vachharajani, August; PLDI 2007)"
        ),
    )
    parser.add_argument(
        "file",
        nargs="?",
        help=(
            "a mini-C (.c) or textual-IR (.ir) file, or a built-in "
            "benchmark name (e.g. treeadd; see "
            "python -m repro.benchsuite.runner --list)"
        ),
    )
    parser.add_argument(
        "--no-slicing", action="store_true", help="disable the slicing pre-pass"
    )
    parser.add_argument(
        "--unroll",
        type=int,
        default=2,
        metavar="N",
        help="symbolic iterations before synthesis (default 2)",
    )
    parser.add_argument(
        "--mode",
        choices=("strict", "degrade"),
        default="strict",
        help=(
            "failure semantics: strict halts on the first failure (the "
            "paper's behavior); degrade retries with an escalated "
            "unroll bound, then contains failures per loop/procedure"
        ),
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget for the whole analysis in seconds",
    )
    parser.add_argument(
        "--state-budget",
        type=int,
        default=20000,
        metavar="N",
        help="worklist state budget per procedure (default 20000)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the structured result record to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "write a hierarchical span trace (JSONL) to PATH; with "
            "--batch, PATH is a directory holding one trace per "
            "benchmark (explore either with 'trace-summary')"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the canonical engine metrics after the analysis",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the entailment cache (verdicts are identical "
        "either way; see 'python -m repro bench')",
    )
    parser.add_argument(
        "--no-lemmas",
        action="store_true",
        help="disable the lemma-synthesis entailment fallback "
        "(restores the purely structural matcher; lemmas only add "
        "passes -- see 'python -m repro lemma-smoke')",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="durable predicate/summary store directory: validated "
        "summaries are reused across runs and processes (verdicts are "
        "identical either way; see 'python -m repro store-smoke')",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="ignore --store and any REPRO_STORE default",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable fixpoint-bundle replay against the durable store "
        "(per-entry summary reuse still applies; verdicts are identical "
        "either way -- see 'python -m repro incr-smoke')",
    )
    parser.add_argument(
        "--no-wto",
        action="store_true",
        help="drive the fixpoint worklist in naive FIFO order instead "
        "of the weak topological order (verdicts are identical either "
        "way; see tests/test_wto_schedule.py)",
    )
    parser.add_argument(
        "--dump-ir", action="store_true", help="print the (lowered) IR and exit"
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="also execute concretely and model-check the result",
    )
    parser.add_argument(
        "--invariants",
        action="store_true",
        help="print the verified loop invariants and procedure summaries",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="run the built-in benchmark suite through the batch runner",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="per-benchmark isolation timeout for --batch (default 120)",
    )
    parser.add_argument(
        "--no-isolate",
        action="store_true",
        help="with --batch: run in-process instead of per-run subprocesses",
    )
    crucible = parser.add_argument_group(
        "crucible (adversarial validation)",
        "seeded fuzzing with a differential analysis-vs-interpreter oracle",
    )
    crucible.add_argument(
        "--crucible",
        action="store_true",
        help="run a fuzzing campaign instead of analyzing a file",
    )
    crucible.add_argument(
        "--seeds",
        type=int,
        default=20,
        metavar="N",
        help="number of seeds in the campaign (default 20)",
    )
    crucible.add_argument(
        "--base-seed",
        type=int,
        default=1,
        metavar="S",
        help="first seed of the campaign (default 1)",
    )
    crucible.add_argument(
        "--mutate",
        type=int,
        default=0,
        metavar="N",
        help="mutations per generated program (default 0: pure skeletons)",
    )
    crucible.add_argument(
        "--corpus-dir",
        default=None,
        metavar="DIR",
        help="where minimized reproducers go (default crucible/corpus)",
    )
    crucible.add_argument(
        "--check-determinism",
        action="store_true",
        help="with --crucible: run the campaign twice and require "
        "byte-identical reports",
    )
    crucible.add_argument(
        "--replay",
        metavar="FILE",
        help="re-run the differential oracle on a corpus reproducer",
    )
    return parser


def load_program(path: Path):
    text = path.read_text()
    if path.suffix == ".c":
        return compile_c(text)
    return parse_program(text)


def _trace_summary(argv: list[str]) -> int:
    """The ``trace-summary`` subcommand: aggregate one or more trace
    files into the top-down time/count tree, a collapsed-stack
    flamegraph export, or a self-time hotspot table."""
    from repro.obs.summary import (
        read_trace,
        render_collapsed,
        render_hotspots,
        render_trace_summary,
    )

    parser = argparse.ArgumentParser(
        prog="repro trace-summary",
        description="aggregate a span trace (JSONL) into a time/count tree",
    )
    parser.add_argument("files", nargs="+", metavar="FILE", help="trace files")
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help="collapse the tree below depth N",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.0,
        metavar="S",
        help="hide spans totalling less than S seconds",
    )
    parser.add_argument(
        "--flamegraph",
        action="store_true",
        help="emit collapsed-stack lines ('a;b;c <microseconds>') "
        "instead of the tree -- pipe into any flamegraph renderer",
    )
    parser.add_argument(
        "--hotspots",
        type=int,
        default=None,
        metavar="N",
        help="emit the top-N spans by aggregate self time instead of "
        "the tree",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the output to PATH instead of stdout",
    )
    args = parser.parse_args(argv)
    status = EXIT_OK
    chunks: list[str] = []
    for name in args.files:
        path = Path(name)
        if not path.exists():
            print(f"repro: no such trace: {path}", file=sys.stderr)
            status = EXIT_USAGE
            continue
        records, malformed = read_trace(path)
        if malformed:
            print(
                f"repro trace-summary: warning: {path}: skipped "
                f"{malformed} malformed line(s) -- torn trace from a "
                "killed process?",
                file=sys.stderr,
            )
        if args.flamegraph:
            chunks.append(render_collapsed(records))
        elif args.hotspots is not None:
            chunks.append(render_hotspots(records, top=args.hotspots) + "\n")
        else:
            chunks.append(
                render_trace_summary(
                    records,
                    max_depth=args.max_depth,
                    min_seconds=args.min_seconds,
                    title=f"Trace summary: {path} ({len(records)} records)",
                )
                + "\n"
            )
    output = "".join(chunks)
    if args.out:
        Path(args.out).write_text(output)
    else:
        sys.stdout.write(output)
    return status


def _resolve_input(args, parser) -> "tuple[object, str, object] | int":
    """Turn the positional argument into (program, name, reload):
    an existing file wins; otherwise the name is looked up among the
    built-in benchmarks (so ``python -m repro treeadd --trace t.jsonl``
    works without a checkout of the suite as files).  ``reload`` yields
    a fresh program for the concrete interpreter (``--run``)."""
    if args.file is None:
        parser.print_usage(sys.stderr)
        print("repro: a file argument (or --batch) is required", file=sys.stderr)
        return EXIT_USAGE
    path = Path(args.file)
    if path.exists():
        try:
            return load_program(path), path.stem, lambda: load_program(path)
        except FRONTEND_ERRORS as exc:
            print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
            return EXIT_FRONTEND
    from repro.benchsuite.runner import benchmark_factories

    factories = benchmark_factories()
    factory = factories.get(args.file)
    if factory is not None:
        return factory(), args.file, factory
    print(
        f"repro: no such file: {path} "
        f"(and not a built-in benchmark; known: {', '.join(sorted(factories))})",
        file=sys.stderr,
    )
    return EXIT_USAGE


def _run_batch(args) -> int:
    from repro.benchsuite.runner import run_batch

    report = run_batch(
        names=None,
        mode=args.mode if args.mode else "degrade",
        timeout=args.timeout,
        deadline=args.deadline,
        unroll=args.unroll,
        state_budget=args.state_budget,
        isolate=not args.no_isolate,
        trace_dir=args.trace,
        lemmas=not args.no_lemmas,
    )
    print(report.render())
    if args.json:
        payload = json.dumps(report.to_dict(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
    return EXIT_OK if report.ok else EXIT_ANALYSIS_FAILED


def _run_crucible(args) -> int:
    from repro.crucible import (
        replay_corpus_file,
        run_campaign,
        verify_determinism,
    )
    from repro.crucible.harness import DEFAULT_CORPUS_DIR

    if args.replay:
        path = Path(args.replay)
        if not path.exists():
            print(f"repro: no such reproducer: {path}", file=sys.stderr)
            return EXIT_USAGE
        report = replay_corpus_file(path)
        print(json.dumps(report.to_dict(), indent=2))
        return EXIT_OK if report.ok else EXIT_ANALYSIS_FAILED

    if args.check_determinism:
        same, first, second = verify_determinism(
            seeds=args.seeds, base_seed=args.base_seed, mutations=args.mutate
        )
        if same:
            print(
                f"deterministic: {args.seeds} seed(s) produced "
                "byte-identical reports across two runs"
            )
            return EXIT_OK
        print("NON-DETERMINISTIC: reports differ between runs", file=sys.stderr)
        for a, b in zip(first.splitlines(), second.splitlines()):
            if a != b:
                print(f"  first:  {a}\n  second: {b}", file=sys.stderr)
                break
        return EXIT_ANALYSIS_FAILED

    report = run_campaign(
        seeds=args.seeds,
        base_seed=args.base_seed,
        mutations=args.mutate,
        corpus_dir=args.corpus_dir or DEFAULT_CORPUS_DIR,
    )
    print(report.render())
    if args.json:
        payload = report.to_json()
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
    return EXIT_OK if report.ok else EXIT_ANALYSIS_FAILED


def _render_metrics(stats: dict) -> str:
    from repro.reporting import render_table

    rows = [
        [key, value]
        for key, value in sorted(stats.items())
        if "." in key  # canonical names only; legacy aliases duplicate
    ]
    return render_table(["Metric", "Value"], rows, title="Engine metrics")


def main(argv: list[str] | None = None) -> int:
    # ``trace-summary`` is a subcommand with its own flags; intercept it
    # before the main parser would mistake it for an input file.
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace-summary":
        return _trace_summary(argv[1:])
    if argv and argv[0] == "bench":
        from repro.perf.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        from repro.serve.client import main as submit_main

        return submit_main(argv[1:])
    if argv and argv[0] == "stats":
        from repro.serve.stats import main as stats_main

        return stats_main(argv[1:])
    if argv and argv[0] == "serve-bench":
        from repro.serve.loadgen import main as loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "serve-smoke":
        from repro.serve.smoke import main as smoke_main

        return smoke_main(argv[1:])
    if argv and argv[0] == "store-smoke":
        from repro.store.smoke import main as store_smoke_main

        return store_smoke_main(argv[1:])
    if argv and argv[0] == "incr-smoke":
        from repro.store.incrsmoke import main as incr_smoke_main

        return incr_smoke_main(argv[1:])
    if argv and argv[0] == "store-gc":
        from repro.store.gc import main as store_gc_main

        return store_gc_main(argv[1:])
    if argv and argv[0] == "lemma-smoke":
        from repro.crucible.lemmasmoke import main as lemma_smoke_main

        return lemma_smoke_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.crucible or args.replay:
        return _run_crucible(args)
    if args.batch:
        return _run_batch(args)
    resolved = _resolve_input(args, parser)
    if isinstance(resolved, int):
        return resolved
    program, name, reload_program = resolved

    if args.dump_ir:
        print(print_program(program))
        return EXIT_OK

    store = None
    store_path = None if args.no_store else (args.store or os.environ.get("REPRO_STORE"))
    if store_path:
        from repro.store import SummaryStore

        store = SummaryStore.open(store_path)

    result = ShapeAnalysis(
        program,
        name=name,
        max_unroll=args.unroll,
        enable_slicing=not args.no_slicing,
        mode=args.mode,
        deadline_seconds=args.deadline,
        state_budget=args.state_budget,
        trace_path=args.trace,
        enable_cache=not args.no_cache,
        enable_lemmas=not args.no_lemmas,
        schedule="fifo" if args.no_wto else "wto",
        store=store,
        enable_incremental=not args.no_incremental,
    ).run()

    if store is not None:
        stats = store.stats()
        print(
            "store: {hits} hit(s), {misses} miss(es), {writes} write(s), "
            "{invalid} rejected, {entries} entr(ies) at {path}".format(
                path=store_path, **stats
            )
        )

    print(result.describe())
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(_render_metrics(result.stats))
    if args.json:
        payload = json.dumps(result.to_record(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
    if not result.succeeded:
        return EXIT_ANALYSIS_FAILED

    print("\nexit states:")
    for state in result.exit_states:
        print("   ", state)

    if args.invariants:
        print("\nloop invariants and procedure summaries:")
        for line in result.describe_invariants().splitlines():
            print("   ", line)

    if args.run:
        run = Interpreter(reload_program()).run()
        print(f"\nconcrete execution returned {run.value} "
              f"({len(run.heap.cells)} cells allocated)")
        if run.value in run.heap.cells:
            for definition in result.recursive_predicates():
                args_tuple = (run.value,) + (0,) * (definition.arity - 1)
                footprint = satisfies(
                    result.env, definition.name, args_tuple, run.heap.snapshot()
                )
                verdict = (
                    f"holds exactly on {len(footprint)} nodes"
                    if footprint == run.heap.reachable_from(run.value)
                    else ("holds (partial footprint)" if footprint else "does not hold here")
                )
                print(f"    {definition.name}{args_tuple}: {verdict}")
    return EXIT_OK


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (e.g. `trace-summary
        # t.jsonl | head`); point stdout at devnull so the interpreter
        # does not raise again while flushing at shutdown.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        code = EXIT_OK
    raise SystemExit(code)
