"""``python -m repro.perf.revisits``: the WTO revisit-count assertion.

A regression gate for the scheduling overhaul: on a nested-loop
fixture, driving the fixpoint worklist in weak topological order must
strictly reduce ``engine.worklist.revisits`` relative to the naive
FIFO order, with the analysis reaching the identical outcome.

The fixture is chosen with care.  On programs whose loops converge in
one synthesis round the trajectory is *schedule-independent*: every
back-edge arrival meets the same invariant list whichever order blocks
are popped, so pushes -- and therefore revisits -- coincide exactly
(all eleven suite benchmarks behave this way).  Divergence requires an
arrival that *races* invariant synthesis at its header: an inner loop
whose case splits (here, the two-way branch on ``[%i.next]``) keep
several distinct states in flight while an outer loop keeps feeding
the inner header.  Under WTO the inner component's arrivals funnel
through the header before its exits are released, so later arrivals
find the invariant already synthesized and converge without a push;
under FIFO they arrive interleaved with downstream work, before
synthesis, and are pushed as extra unroll rounds.  The counts are
fully deterministic (both schedules break ties positionally) and
independent of the build size, so the gate pins exact behaviour, not a
flaky threshold.

The fixture's outer loop deliberately exceeds the invariant-candidate
cap, so in ``degrade`` mode both runs report the same contained
``invariant-failure`` diagnostic -- the containment path is part of
what the differential holds fixed across schedules.
"""

from __future__ import annotations

import sys

__all__ = ["FIXTURE", "measure", "main"]

#: Nested loops with inner-loop case splits: the smallest program we
#: know of whose worklist trajectory depends on the schedule.
FIXTURE = """
proc build(%n):
    %head = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %head
    %head = %p
    %n = sub %n, 1
    goto L
done:
    return %head

proc main():
    %head = call build(4)
    %o = %head
O:
    if %o == null goto out
    %i = %head
I:
    if %i == null goto onext
    %v = [%i.next]
    if %v == null goto last
    %i = %v
    goto I
last:
    %i = null
    goto I
onext:
    %o = [%o.next]
    goto O
out:
    return %head
"""


def measure(deadline: float | None = 30.0) -> dict:
    """Analyze the fixture under both schedules; return the counters."""
    from repro.analysis import ShapeAnalysis
    from repro.ir.textual import parse_program

    program = parse_program(FIXTURE)
    out: dict = {}
    for schedule in ("wto", "fifo"):
        # Lemma synthesis is disabled: the gate pins the exact worklist
        # trajectory of the structural matcher, and lemma-assisted
        # invariant supersession legitimately changes how many unroll
        # rounds each schedule needs on this fixture.
        result = ShapeAnalysis(
            program,
            name=f"revisits-{schedule}",
            mode="degrade",
            deadline_seconds=deadline,
            enable_cache=False,
            enable_lemmas=False,
            schedule=schedule,
        ).run()
        out[schedule] = {
            "outcome": result.outcome,
            "revisits": result.stats.get("engine.worklist.revisits", 0),
            "pushes": result.stats.get("engine.worklist.pushes", 0),
        }
    return out


def main(argv: "list[str] | None" = None) -> int:
    counts = measure()
    wto, fifo = counts["wto"], counts["fifo"]
    print(
        f"wto  outcome {wto['outcome']:9s} revisits {wto['revisits']:5d}"
        f" pushes {wto['pushes']:5d}"
    )
    print(
        f"fifo outcome {fifo['outcome']:9s} revisits {fifo['revisits']:5d}"
        f" pushes {fifo['pushes']:5d}"
    )
    if wto["outcome"] != fifo["outcome"]:
        print(
            "repro.perf.revisits: outcomes differ between schedules",
            file=sys.stderr,
        )
        return 1
    if wto["revisits"] >= fifo["revisits"]:
        print(
            "repro.perf.revisits: WTO did not strictly reduce worklist "
            f"revisits ({wto['revisits']} vs {fifo['revisits']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
