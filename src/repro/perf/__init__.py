"""Performance layer: canonical interning, memoized entailment, bench.

The hot path of the analysis is entailment checking during fixpoint
iteration: ``subsumes`` re-unifies structurally identical state pairs
on every join, every dedup round and every summary probe.  This
package makes those repeats cheap without touching soundness:

* :mod:`repro.logic.canonical` (logic layer) computes deterministic,
  alpha-renaming-invariant state keys -- equal keys imply
  alpha-equivalent states, so a cached verdict can never be wrong;
* :mod:`repro.perf.cache` -- the bounded LRU
  :class:`~repro.perf.cache.EntailmentCache` the entailment layer
  consults, with hit/miss/eviction counters surfaced as
  ``entailment.cache.*`` metrics;
* :mod:`repro.perf.bench` -- ``python -m repro bench``, the benchmark
  harness that writes ``BENCH_<date>.json`` perf baselines.

Following the :mod:`repro.obs` pattern, the *active* cache is a
module-level global (:data:`CACHE`) swapped in per analysis run by
:func:`activate_cache`; outside a run it is the null cache and
``subsumes`` pays one attribute check.  Cache keys are fully
structural -- canonical state keys plus a structural
predicate-environment token -- so a cache handed to several runs
(``ShapeAnalysis(cache=...)``) legitimately carries verdicts across
them; the bench harness measures exactly that warm path.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.perf.cache import (
    EntailmentCache,
    IdentityMemo,
    LemmaCache,
    NULL_CACHE,
    NullCache,
)

__all__ = [
    "CACHE",
    "UNFOLD_CACHE",
    "FOLD_CACHE",
    "EntailmentCache",
    "IdentityMemo",
    "LemmaCache",
    "NULL_CACHE",
    "NullCache",
    "activate_cache",
]

#: The active entailment cache (null outside :func:`activate_cache`).
CACHE: "EntailmentCache | NullCache" = NULL_CACHE

#: The active unfold-memo cache (rearrangement case analyses keyed on
#: canonical state + focus address; see :mod:`repro.analysis.memo`).
UNFOLD_CACHE: "EntailmentCache | NullCache" = NULL_CACHE

#: The active fold identity-memo cache (states a prior ``fold_state``
#: left untouched; see :mod:`repro.analysis.memo`).
FOLD_CACHE: "EntailmentCache | NullCache" = NULL_CACHE


@contextmanager
def activate_cache(
    cache: "EntailmentCache | NullCache | None",
    unfold: "EntailmentCache | NullCache | None" = None,
    fold: "EntailmentCache | NullCache | None" = None,
):
    """Install the given caches for the duration of the block (restored
    on exit, exception or not).  ``None`` leaves the corresponding
    active cache untouched."""
    global CACHE, UNFOLD_CACHE, FOLD_CACHE
    saved = (CACHE, UNFOLD_CACHE, FOLD_CACHE)
    if cache is not None:
        CACHE = cache
    if unfold is not None:
        UNFOLD_CACHE = unfold
    if fold is not None:
        FOLD_CACHE = fold
    try:
        yield
    finally:
        CACHE, UNFOLD_CACHE, FOLD_CACHE = saved
