"""``python -m repro bench``: the performance baseline harness.

Measures, for every suite benchmark, *repeated* analysis throughput in
two configurations -- ``--no-cache`` (every run pays the full
entailment search) and cached (one :class:`EntailmentCache` shared
across the benchmark's repetitions, the warm server-style workload the
roadmap's "heavy traffic" goal cares about; canonical keys and
predicate-environment tokens are fully structural, so verdicts carry
across runs) -- and writes a ``BENCH_<date>.json`` baseline recording
wall times, per-phase seconds and cache hit rates.

Every cached run is differentially checked against its uncached twin:
the verdict fingerprint (outcome, failure, attempts, exit-state count
and the engine's trajectory counters) must be identical, otherwise the
report flags the benchmark and the harness exits nonzero.  The
entailment cache is a pure memo -- a verdict difference is a soundness
bug, not a measurement artifact.

``--quick`` restricts the suite to the list staples plus the
entailment stress program (the CI perf-smoke job runs this);
``--require-hits`` additionally fails when the list benchmarks see no
cache hits at all, which would mean cross-run key sharing regressed.

Since the durable store landed, every benchmark additionally gets a
cold-store vs warm-store pair (fresh store directory, uncached, so the
delta isolates validated summary reuse); the warm run's core verdict
must match the store-less runs or the harness exits nonzero, and
``--require-hits`` also fails on a warm sweep with zero store hits.

Two more differentials ride along since the scheduling overhaul:

* every benchmark is also analyzed once under the FIFO worklist
  (``schedule="fifo"``); its *core* verdict (outcome, failure,
  attempts, exit-state and predicate counts -- not the trajectory
  counters, which legitimately depend on visit order) must match the
  WTO run, else exit nonzero;
* when a committed ``BENCH_*.json`` baseline exists (or ``--baseline``
  names one), the report embeds a delta section: stored totals, the
  uncached-total ratio, and per-benchmark phase-seconds deltas.  Treat
  cross-*time* wall-clock ratios with suspicion -- they compare
  different machine loads; the honest speedup measurement is an
  interleaved A/B against a checkout of the baseline commit (see
  EXPERIMENTS.md).

``--compare BASELINE.json`` turns the harness into a noise-aware
regression *gate*: per-benchmark per-rep minima (the one-sided-noise
estimator) are compared against the baseline's, a regression needs to
exceed both a relative threshold and an absolute seconds floor,
under-sampled benchmarks are skipped rather than judged, and any
surviving regression exits nonzero.  CI runs this against the
committed baselines; ``--compare-out`` writes the comparison JSON it
uploads as an artifact.

Since the incremental layer landed (schema ``repro-bench-v2``), suite
runs also measure the ``incr:*`` edit-loop rows: each Table-4 program
is analyzed from scratch after a deterministic 1-procedure edit, then
incrementally against a store populated by the unedited base, and the
row reports the callgraph-cone size/depth of the edit and the fixpoint
replay hit rate alongside the usual timing arrays -- so the
``--compare`` gate guards the edit-loop speedup like any other
benchmark.  Core verdicts between the two configurations must match or
the harness exits nonzero (``python -m repro incr-smoke`` is the
full differential gate).

The default output path never overwrites an existing report: when
``BENCH_<date>.json`` is taken, ``BENCH_<date>-2.json`` (then ``-3``,
...) is used, so re-running on the baseline's date cannot clobber it.
"""

from __future__ import annotations

import argparse
import datetime
import json
import re
import sys
import time
from pathlib import Path

from repro.perf.cache import EntailmentCache

__all__ = [
    "main",
    "run_bench",
    "BENCH_SCHEMA",
    "INCR_SUITE",
    "QUICK_SUITE",
    "attach_baseline",
    "compare_reports",
    "default_out_path",
    "find_baseline",
    "render_comparison",
]

#: The ``--quick`` suite: the cheap list staples (cross-run hit-rate
#: canaries) plus the entailment-bound stress workload.
QUICK_SUITE = (
    "list-build",
    "list-traverse",
    "list-reverse",
    "list-delete",
    "list-doubly",
    "entail-stress",
)

#: The incremental (edit-loop) suite: every Table-4 program is analyzed
#: from scratch after a 1-procedure edit, then again against a store
#: populated by the *unedited* base -- the "developer touched one
#: procedure, re-analyze" workload the roadmap's CI-traffic goal cares
#: about.  Rows are named ``incr:<program>`` and carry the ordinary
#: ``uncached_seconds``/``cached_seconds`` arrays so the ``--compare``
#: regression gate judges them like any other benchmark.
INCR_SUITE = ("181.mcf", "treeadd", "bisort", "perimeter", "power")

#: Seed for the deterministic 1-procedure edit the incremental rows
#: measure.  A dead store in the entry procedure: semantics-preserving,
#: so scratch and warm runs must agree, yet digest-changing, so the
#: entry procedure's cone genuinely re-analyzes.
_INCR_EDIT_SEED = 7

#: The bench report schema this harness writes and fully understands.
#: v2 added the ``incr:*`` rows and their ``incremental`` sections.
BENCH_SCHEMA = "repro-bench-v2"

_SCHEMA_VERSION = re.compile(r"^repro-bench-v(\d+)$")


def _schema_version(report: dict) -> "int | None":
    match = _SCHEMA_VERSION.match(str(report.get("schema", "")))
    return int(match.group(1)) if match else None

#: Verdict-fingerprint stat counters: identical between cached and
#: uncached runs iff the analysis took the same trajectory.  Cache and
#: timing metrics are deliberately absent.
_VERDICT_COUNTERS = (
    "engine.states",
    "engine.instructions",
    "engine.invariants.synthesized",
    "engine.summaries.reused",
    "engine.procedures.analyzed",
    "entailment.queries",
    "entailment.subsumed",
    "entailment.rejected",
    "entailment.lemma.applied",
)


#: Core-verdict keys: what the analysis *concluded*, independent of the
#: trajectory it took.  The FIFO/WTO schedule differential compares
#: exactly these -- visit order legitimately changes the trajectory
#: counters, and can change synthesis *granularity* (on 181.mcf the
#: WTO funnel generalizes to a single invariant where FIFO tabulates
#: two predicates and three exit disjuncts -- both sound), but must
#: never change the conclusion.
_CORE_KEYS = ("outcome", "failure", "attempts")


def _verdict(result) -> dict:
    """The verdict fingerprint of one analysis result."""
    out = {
        "outcome": result.outcome,
        "failure": result.failure,
        "attempts": result.attempts,
        "exit_states": len(result.exit_states),
        "predicates": len(result.env),
    }
    for name in _VERDICT_COUNTERS:
        out[name] = result.stats.get(name, 0)
    return out


def _core(verdict: dict) -> dict:
    return {k: verdict[k] for k in _CORE_KEYS}


def _phase_seconds(result) -> dict:
    return {
        "pointer": round(result.pointer_seconds, 6),
        "slicing": round(result.slicing_seconds, 6),
        "shape": round(result.shape_seconds, 6),
    }


def _run(
    name: str,
    mode: str,
    deadline: float | None,
    cache,
    schedule: str = "wto",
    store=None,
    lemmas: bool = True,
) -> tuple:
    """One analysis run; returns (result, wall seconds)."""
    from repro.analysis import ShapeAnalysis
    from repro.benchsuite.runner import _resolve_benchmark

    program = _resolve_benchmark(name)
    start = time.perf_counter()
    result = ShapeAnalysis(
        program,
        name=name,
        mode=mode,
        deadline_seconds=deadline,
        enable_cache=cache is not None,
        cache=cache,
        schedule=schedule,
        store=store,
        enable_lemmas=lemmas,
    ).run()
    return result, time.perf_counter() - start


def _store_differential(
    name: str, mode: str, deadline: float | None, core: dict
) -> tuple:
    """Cold-store vs warm-store measurement for one benchmark.

    Each benchmark gets a fresh store directory so "cold" really pays
    the populate and "warm" really measures validated reuse.  Both
    runs are uncached (no entailment memo) so the delta isolates the
    durable store.  Returns (section, core_matches)."""
    import shutil
    import tempfile

    from repro.store import SummaryStore

    store_dir = tempfile.mkdtemp(prefix=f"repro-bench-store-{name}-")
    try:
        cold_store = SummaryStore(store_dir)
        cold_result, cold_seconds = _run(
            name, mode, deadline, cache=None, store=cold_store
        )
        warm_store = SummaryStore(store_dir)
        warm_result, warm_seconds = _run(
            name, mode, deadline, cache=None, store=warm_store
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    warm_stats = warm_store.stats()
    matches = (
        _core(_verdict(cold_result)) == core
        and _core(_verdict(warm_result)) == core
    )
    return (
        {
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup": round(cold_seconds / warm_seconds, 4)
            if warm_seconds
            else None,
            "warm_hits": warm_stats["hits"],
            "warm_hit_rate": warm_stats["hit_rate"],
            "invalid": warm_stats["invalid"],
            "entries": warm_stats["entries"],
            "matches": matches,
        },
        matches,
    )


def _incremental_row(
    name: str, mode: str, deadline: "float | None", repetitions: int
) -> dict:
    """One edit-loop measurement: ``incr:<name>``.

    ``uncached_seconds`` are from-scratch runs of the *edited* program;
    ``cached_seconds`` are incremental runs of the same edited program
    against a copy of a store populated by the unedited base -- each
    repetition gets its own copy of the populated store (a warm run
    re-exports the edited cone's bundles, and the honest workload is
    the *first* re-analysis after an edit, not the second).

    ``verdicts_match`` compares **core** verdicts (outcome, failure,
    attempts): replaying a cached fixpoint legitimately changes the
    trajectory counters (that is the whole point), never the
    conclusion -- ``python -m repro incr-smoke`` gates that parity
    differentially under store faults."""
    import shutil
    import tempfile

    from repro.analysis import ShapeAnalysis
    from repro.benchsuite import TABLE4_PROGRAMS
    from repro.crucible.generator import edit_program
    from repro.ir.digest import diff_programs, program_digests
    from repro.store import SummaryStore

    base = TABLE4_PROGRAMS()[name]
    edited, edits = edit_program(
        base, _INCR_EDIT_SEED, target=base.entry, kinds=("dead-store",)
    )
    diff = diff_programs(program_digests(base), edited)

    def run(program, store=None):
        start = time.perf_counter()
        result = ShapeAnalysis(
            program,
            name=f"incr:{name}",
            mode=mode,
            deadline_seconds=deadline,
            store=store,
        ).run()
        return result, time.perf_counter() - start

    uncached_seconds = []
    verdict = core = phases = None
    matches = True
    for _ in range(repetitions):
        result, seconds = run(edited)
        uncached_seconds.append(round(seconds, 6))
        this = _core(_verdict(result))
        if core is None:
            core, verdict, phases = this, _verdict(result), _phase_seconds(result)
        elif this != core:
            matches = False

    populate_dir = tempfile.mkdtemp(prefix=f"repro-bench-incr-{name}-")
    cached_seconds = []
    replay_hits = replay_lookups = invalid = 0
    try:
        run(base, SummaryStore(populate_dir))
        for _ in range(repetitions):
            rep_dir = tempfile.mkdtemp(prefix=f"repro-bench-incr-rep-{name}-")
            try:
                shutil.rmtree(rep_dir)
                shutil.copytree(populate_dir, rep_dir)
                warm = SummaryStore(rep_dir)
                result, seconds = run(edited, warm)
                cached_seconds.append(round(seconds, 6))
                stats = warm.stats()
                replay_hits += stats.get("fixpoint_hits", 0)
                replay_lookups += stats.get("fixpoint_lookups", 0)
                invalid += stats.get("invalid", 0)
                if _core(_verdict(result)) != core:
                    matches = False
            finally:
                shutil.rmtree(rep_dir, ignore_errors=True)
    finally:
        shutil.rmtree(populate_dir, ignore_errors=True)

    uncached_total, cached_total = sum(uncached_seconds), sum(cached_seconds)
    return {
        "name": f"incr:{name}",
        "verdict": verdict,
        "verdicts_match": matches,
        "phase_seconds": phases,
        "uncached_seconds": uncached_seconds,
        "cached_seconds": cached_seconds,
        "speedup": round(uncached_total / cached_total, 4)
        if cached_total
        else None,
        "incremental": {
            "edits": list(edits),
            "changed": list(diff.changed),
            "cone": list(diff.cone),
            "cone_size": len(diff.cone),
            "cone_depth": diff.depth,
            "procedures": diff.total,
            "reused": len(diff.reusable),
            "replay_hits": replay_hits,
            "replay_lookups": replay_lookups,
            "replay_hit_rate": round(replay_hits / replay_lookups, 6)
            if replay_lookups
            else 0.0,
            "invalid": invalid,
        },
    }


def run_bench(
    names: "list[str] | None" = None,
    quick: bool = False,
    repetitions: int = 3,
    mode: str = "degrade",
    deadline: float | None = 60.0,
    capacity: int = 65536,
) -> dict:
    """Run the benchmark comparison and return the report dict.

    Each benchmark is analyzed ``repetitions`` times without a cache
    and ``repetitions`` times against one shared cache; the shared
    cache makes repetitions 2..R the warm-path measurement.

    Suite runs (no explicit *names*) additionally measure the
    ``incr:*`` edit-loop rows over :data:`INCR_SUITE`; explicit name
    lists measure exactly what they name."""
    incremental = names is None
    if names is None:
        if quick:
            names = list(QUICK_SUITE)
        else:
            from repro.benchsuite.runner import benchmark_factories

            names = sorted(benchmark_factories())
    benchmarks = []
    mismatches = []
    schedule_mismatches = []
    store_mismatches = []
    lemma_mismatches = []
    total_uncached = total_cached = 0.0
    total_store_cold = total_store_warm = 0.0
    total_store_hits = 0
    list_hits = list_misses = 0
    for name in names:
        uncached_seconds = []
        verdict = None
        verdicts_match = True
        for _ in range(repetitions):
            result, seconds = _run(name, mode, deadline, cache=None)
            uncached_seconds.append(round(seconds, 6))
            this = _verdict(result)
            if verdict is None:
                verdict = this
                phases = _phase_seconds(result)
            elif this != verdict:
                verdicts_match = False
        shared = EntailmentCache(capacity)
        cached_seconds = []
        rep_hit_rates = []
        for _ in range(repetitions):
            hits0, misses0 = shared.hits, shared.misses
            result, seconds = _run(name, mode, deadline, cache=shared)
            cached_seconds.append(round(seconds, 6))
            asked = (shared.hits - hits0) + (shared.misses - misses0)
            rep_hit_rates.append(
                round((shared.hits - hits0) / asked, 6) if asked else 0.0
            )
            if _verdict(result) != verdict:
                verdicts_match = False
        if not verdicts_match:
            mismatches.append(name)
        # Schedule differential: one uncached FIFO run; the core
        # verdict must match the WTO runs above.
        fifo_result, _ = _run(name, mode, deadline, cache=None, schedule="fifo")
        fifo_core = _core(_verdict(fifo_result))
        schedules_match = fifo_core == _core(verdict)
        if not schedules_match:
            schedule_mismatches.append(name)
        # Durable-store differential: cold populate vs warm reuse, core
        # verdict identical to the store-less runs above or exit 1.
        store_section, store_matches = _store_differential(
            name, mode, deadline, _core(verdict)
        )
        if not store_matches:
            store_mismatches.append(name)
        # Lemma differential: one uncached lemmas-off run.  Lemma
        # synthesis may only *add* passes -- a benchmark that passes
        # structurally but not with lemmas enabled is a violation
        # (the converse, a lemma-assisted pass the structural matcher
        # misses, is exactly what the lemma benchmarks exist for and is
        # certified concretely by 'python -m repro lemma-smoke').
        off_result, off_seconds = _run(
            name, mode, deadline, cache=None, lemmas=False
        )
        off_core = _core(_verdict(off_result))
        lemma_matches = not (
            off_core["outcome"] == "pass" and verdict["outcome"] != "pass"
        )
        if not lemma_matches:
            lemma_mismatches.append(name)
        lemma_section = {
            "no_lemmas_core": off_core,
            "no_lemmas_seconds": round(off_seconds, 6),
            "lemmas_applied": verdict.get("entailment.lemma.applied", 0),
            "matches": lemma_matches,
        }
        total_store_cold += store_section["cold_seconds"]
        total_store_warm += store_section["warm_seconds"]
        total_store_hits += store_section["warm_hits"]
        if name.startswith("list-"):
            list_hits += shared.hits
            list_misses += shared.misses
        uncached_total = sum(uncached_seconds)
        cached_total = sum(cached_seconds)
        total_uncached += uncached_total
        total_cached += cached_total
        benchmarks.append(
            {
                "name": name,
                "verdict": verdict,
                "verdicts_match": verdicts_match,
                "phase_seconds": phases,
                "uncached_seconds": uncached_seconds,
                "cached_seconds": cached_seconds,
                "speedup": round(uncached_total / cached_total, 4)
                if cached_total
                else None,
                "cache": {**shared.stats(), "rep_hit_rates": rep_hit_rates},
                "schedule_differential": {
                    "fifo_core": fifo_core,
                    "matches": schedules_match,
                },
                "store_differential": store_section,
                "lemma_differential": lemma_section,
            }
        )
    incremental_mismatches = []
    total_incr_scratch = total_incr_warm = 0.0
    total_replay_hits = total_replay_lookups = 0
    if incremental:
        for incr_name in INCR_SUITE:
            row = _incremental_row(incr_name, mode, deadline, repetitions)
            if not row["verdicts_match"]:
                incremental_mismatches.append(row["name"])
            total_incr_scratch += sum(row["uncached_seconds"])
            total_incr_warm += sum(row["cached_seconds"])
            total_replay_hits += row["incremental"]["replay_hits"]
            total_replay_lookups += row["incremental"]["replay_lookups"]
            benchmarks.append(row)
    list_total = list_hits + list_misses
    return {
        "schema": BENCH_SCHEMA,
        "date": datetime.date.today().isoformat(),
        "python": sys.version.split()[0],
        "quick": quick,
        "repetitions": repetitions,
        "mode": mode,
        "benchmarks": benchmarks,
        "totals": {
            "uncached_seconds": round(total_uncached, 6),
            "cached_seconds": round(total_cached, 6),
            "speedup": round(total_uncached / total_cached, 4)
            if total_cached
            else None,
            "list_cache_hits": list_hits,
            "list_hit_rate": round(list_hits / list_total, 6)
            if list_total
            else 0.0,
            "store_cold_seconds": round(total_store_cold, 6),
            "store_warm_seconds": round(total_store_warm, 6),
            "store_speedup": round(total_store_cold / total_store_warm, 4)
            if total_store_warm
            else None,
            "store_warm_hits": total_store_hits,
            "incr_scratch_seconds": round(total_incr_scratch, 6),
            "incr_warm_seconds": round(total_incr_warm, 6),
            "incr_speedup": round(total_incr_scratch / total_incr_warm, 4)
            if total_incr_warm
            else None,
            "incr_replay_hits": total_replay_hits,
            "incr_replay_lookups": total_replay_lookups,
        },
        "verdict_mismatches": mismatches,
        "schedule_mismatches": schedule_mismatches,
        "store_mismatches": store_mismatches,
        "lemma_mismatches": lemma_mismatches,
        "incremental_mismatches": incremental_mismatches,
    }


_BENCH_NAME = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})(?:-(\d+))?\.json$")


def default_out_path(report: dict, directory: "Path | str" = ".") -> Path:
    """``BENCH_<date>.json``, suffixed ``-2``/``-3``/... if taken.

    Never returns an existing path: re-running the harness on the same
    date as a committed baseline must not overwrite it."""
    directory = Path(directory)
    path = directory / f"BENCH_{report['date']}.json"
    suffix = 2
    while path.exists():
        path = directory / f"BENCH_{report['date']}-{suffix}.json"
        suffix += 1
    return path


def find_baseline(directory: "Path | str" = ".") -> "Path | None":
    """The most recent committed ``BENCH_<date>[-N].json``, or None.

    Ordered by (date, run-suffix) parsed from the name, not by mtime
    (checkouts rewrite mtimes) or raw string order (``-2`` sorts before
    ``.json`` in ASCII)."""
    candidates = []
    for path in Path(directory).iterdir():
        match = _BENCH_NAME.match(path.name)
        if match:
            candidates.append(
                (match.group(1), int(match.group(2) or 1), path)
            )
    if not candidates:
        return None
    return max(candidates)[2]


def attach_baseline(report: dict, baseline_path: Path) -> bool:
    """Embed a delta-vs-baseline section into *report* (in place).

    Baselines are committed artifacts from *other* machines and other
    versions of the harness, so anything missing from one -- a
    benchmark the current run has but the baseline lacks, a record
    without timing arrays, or a file that is not a bench report at all
    -- is a *warning* on stderr, never a crash: a fresh machine with
    no usable BENCH history must still be able to write its first
    baseline.  Returns True when a delta section was attached."""
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(
            f"repro bench: warning: unreadable baseline "
            f"{baseline_path}: {exc}; skipping deltas",
            file=sys.stderr,
        )
        return False
    if not isinstance(baseline, dict) or not isinstance(
        baseline.get("benchmarks"), list
    ):
        print(
            f"repro bench: warning: {baseline_path} is not a bench "
            "report (no benchmarks list); skipping deltas",
            file=sys.stderr,
        )
        return False
    base_by_name = {
        b["name"]: b
        for b in baseline["benchmarks"]
        if isinstance(b, dict) and "name" in b
    }
    # Per-rep means, so reports taken with different --reps compare.
    reps = max(report.get("repetitions", 1), 1)
    base_reps = max(baseline.get("repetitions", 1), 1)
    deltas = []
    missing = []
    for bench in report["benchmarks"]:
        base = base_by_name.get(bench["name"])
        if base is None or not base.get("uncached_seconds"):
            # The baseline predates this benchmark (or recorded an
            # empty trajectory for it): there is nothing to diff
            # against, which is normal on a new machine or after the
            # suite grew -- warn and carry on.
            missing.append(bench["name"])
            continue
        phase_delta = {
            phase: round(
                bench["phase_seconds"][phase]
                - base.get("phase_seconds", {}).get(phase, 0.0),
                6,
            )
            for phase in bench["phase_seconds"]
        }
        uncached = sum(bench["uncached_seconds"]) / reps
        base_uncached = sum(base["uncached_seconds"]) / base_reps
        deltas.append(
            {
                "name": bench["name"],
                "phase_seconds_delta": phase_delta,
                "uncached_ratio": round(base_uncached / uncached, 4)
                if uncached
                else None,
            }
        )
    if missing:
        print(
            "repro bench: warning: baseline "
            f"{baseline_path} has no usable record for: "
            + ", ".join(missing),
            file=sys.stderr,
        )
    shared = {d["name"] for d in deltas}
    ours = sum(
        sum(b["uncached_seconds"]) / reps
        for b in report["benchmarks"]
        if b["name"] in shared
    )
    theirs = sum(
        sum(b.get("uncached_seconds", [])) / base_reps
        for b in base_by_name.values()
        if b["name"] in shared
    )
    report["baseline"] = {
        "path": str(baseline_path),
        "date": baseline.get("date"),
        "totals": baseline.get("totals"),
        "shared_benchmarks": sorted(shared),
        "uncached_speedup_vs_baseline": round(theirs / ours, 4)
        if ours
        else None,
        "benchmarks": deltas,
        "caveat": "wall-clock ratio across different runs/machine "
        "loads; see EXPERIMENTS.md for the interleaved A/B protocol",
    }
    return True


# ----------------------------------------------------------------------
# The noise-aware regression gate (``--compare``)
# ----------------------------------------------------------------------

#: Relative slowdown that counts as a regression (0.25 = 25%).  Wide
#: on purpose: CI compares against baselines committed from *other*
#: machines, and an honest gate must not cry wolf on machine skew.
DEFAULT_COMPARE_THRESHOLD = 0.25
#: Absolute per-rep slowdown floor in seconds: a 25% blowup of a 4ms
#: benchmark is scheduler jitter, not a regression.  Both the relative
#: threshold *and* this floor must be exceeded.
DEFAULT_MIN_SECONDS = 0.05
#: Minimum repetitions (on both sides) before a verdict is rendered:
#: the min of one sample is just that sample, so under-sampled
#: benchmarks are *skipped*, never judged.
DEFAULT_MIN_REPS = 2


def _rep_min(seconds: "list | None") -> "float | None":
    values = [s for s in (seconds or []) if isinstance(s, (int, float))]
    return min(values) if values else None


def _compare_metric(
    current: "list | None",
    baseline: "list | None",
    threshold: float,
    min_reps: int,
    min_seconds: float,
) -> dict:
    """One timing array pair -> verdict.

    The estimator is the **per-rep minimum**: timing noise on a quiet
    benchmark is one-sided (preemption, cache eviction and GC only ever
    *add* time), so the min of R reps is the closest observable to the
    true cost and the only order statistic that gets *better* with more
    reps.  Means and totals smear outliers into the estimate; gating on
    them trades real regressions for noise alerts."""
    cur_min, base_min = _rep_min(current), _rep_min(baseline)
    out = {
        "current_min": cur_min,
        "baseline_min": base_min,
        "current_reps": len(current or []),
        "baseline_reps": len(baseline or []),
        "ratio": None,
        "verdict": "ok",
    }
    if cur_min is None or base_min is None:
        out["verdict"] = "missing"
        return out
    if out["current_reps"] < min_reps or out["baseline_reps"] < min_reps:
        out["verdict"] = "skipped"
        return out
    out["ratio"] = round(cur_min / base_min, 4) if base_min else None
    if (
        cur_min > base_min * (1.0 + threshold)
        and cur_min - base_min > min_seconds
    ):
        out["verdict"] = "regression"
    elif (
        base_min > cur_min * (1.0 + threshold)
        and base_min - cur_min > min_seconds
    ):
        out["verdict"] = "improved"
    return out


def compare_reports(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_COMPARE_THRESHOLD,
    min_reps: int = DEFAULT_MIN_REPS,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> dict:
    """Noise-aware comparison of two bench reports.

    Per benchmark, the uncached and cached per-rep minima are compared
    independently; a benchmark regresses when *either* metric exceeds
    both the relative *threshold* and the absolute *min_seconds* floor
    (and improves only when a metric clears the same bars the other
    way, so the verdict is symmetric).  Benchmarks with fewer than
    *min_reps* repetitions on either side are skipped, and benchmarks
    absent from the baseline are reported as missing -- a gate that
    judged under-sampled or unmatched data would be noise itself.

    Self-comparison of any report yields zero regressions by
    construction (every ratio is exactly 1.0).

    Schema skew is *warned about*, never silently absorbed: a baseline
    written by a newer harness (schema version above
    :data:`BENCH_SCHEMA`'s) may shape its timing fields differently, so
    its skipped/missing verdicts could be schema artifacts rather than
    absent data -- the ``warnings`` list in the returned dict (and in
    ``--compare-out``) says so explicitly."""
    warnings = []
    ours = _schema_version({"schema": BENCH_SCHEMA}) or 0
    base_version = _schema_version(baseline)
    if base_version is None:
        warnings.append(
            "baseline has no recognizable bench schema "
            f"(schema={baseline.get('schema')!r}); its timing fields "
            "may be misread -- treat skipped/missing verdicts as "
            "schema mismatch, not absent data"
        )
    elif base_version > ours:
        warnings.append(
            f"baseline was produced by a newer bench schema "
            f"(v{base_version} > this harness's v{ours}); its timing "
            "fields may be misread -- treat skipped/missing verdicts "
            "as schema mismatch, not absent data"
        )
    base_by_name = {
        b.get("name"): b
        for b in (baseline.get("benchmarks") or [])
        if isinstance(b, dict)
    }
    rows = []
    buckets: "dict[str, list]" = {
        "regression": [], "improved": [], "skipped": [], "missing": [],
    }
    for bench in current.get("benchmarks") or []:
        name = bench.get("name")
        base = base_by_name.get(name) or {}
        metrics = {
            metric: _compare_metric(
                bench.get(f"{metric}_seconds"),
                base.get(f"{metric}_seconds"),
                threshold,
                min_reps,
                min_seconds,
            )
            for metric in ("uncached", "cached")
        }
        verdicts = {m["verdict"] for m in metrics.values()}
        if "regression" in verdicts:
            verdict = "regression"
        elif verdicts <= {"missing"}:
            verdict = "missing"
        elif "skipped" in verdicts or "missing" in verdicts:
            verdict = "skipped"
        elif "improved" in verdicts:
            verdict = "improved"
        else:
            verdict = "ok"
        if verdict in buckets:
            buckets[verdict].append(name)
        rows.append({"name": name, "verdict": verdict, "metrics": metrics})
    return {
        "schema": "repro-bench-compare-v1",
        "threshold": threshold,
        "min_reps": min_reps,
        "min_seconds": min_seconds,
        "current_date": current.get("date"),
        "baseline_date": baseline.get("date"),
        "current_schema": current.get("schema"),
        "baseline_schema": baseline.get("schema"),
        "warnings": warnings,
        "benchmarks": rows,
        "regressions": buckets["regression"],
        "improved": buckets["improved"],
        "skipped": buckets["skipped"],
        "missing": buckets["missing"],
        "ok": not buckets["regression"],
    }


def render_comparison(comparison: dict) -> str:
    lines = [
        f"bench compare vs baseline of {comparison['baseline_date']} "
        f"(threshold {comparison['threshold'] * 100:.0f}% "
        f"and > {comparison['min_seconds']}s, per-rep minima, "
        f"min {comparison['min_reps']} reps)"
    ]
    for warning in comparison.get("warnings", ()):
        lines.append(f"  warning: {warning}")
    for row in comparison["benchmarks"]:
        parts = [f"  {row['name']:16s} {row['verdict']:10s}"]
        for metric, data in row["metrics"].items():
            if data["current_min"] is None or data["baseline_min"] is None:
                parts.append(f" {metric} -")
                continue
            ratio = f"x{data['ratio']}" if data["ratio"] is not None else "-"
            parts.append(
                f" {metric} {data['current_min']:.3f}s"
                f" vs {data['baseline_min']:.3f}s ({ratio})"
            )
        lines.append("".join(parts))
    summary = ", ".join(
        f"{len(comparison[key])} {key}"
        for key in ("regressions", "improved", "skipped", "missing")
    )
    lines.append(
        f"  => {'OK' if comparison['ok'] else 'REGRESSION'}: {summary}"
    )
    return "\n".join(lines)


def render(report: dict) -> str:
    lines = [
        f"bench {report['date']} ({'quick' if report['quick'] else 'full'}, "
        f"{report['repetitions']} reps)"
    ]
    for bench in report["benchmarks"]:
        if "incremental" in bench:
            incr = bench["incremental"]
            lines.append(
                f"  {bench['name']:16s} scratch  {sum(bench['uncached_seconds']):7.3f}s"
                f"  incr   {sum(bench['cached_seconds']):7.3f}s"
                f"  x{bench['speedup']:<6}"
                f" cone {incr['cone_size']}/{incr['procedures']}"
                f" depth {incr['cone_depth']}"
                f" replay {incr['replay_hits']}/{incr['replay_lookups']}"
                f"{'' if bench['verdicts_match'] else '  VERDICT MISMATCH'}"
            )
            continue
        cache = bench["cache"]
        sched = bench.get("schedule_differential", {})
        store = bench.get("store_differential", {})
        lemma = bench.get("lemma_differential", {})
        lines.append(
            f"  {bench['name']:16s} uncached {sum(bench['uncached_seconds']):7.3f}s"
            f"  cached {sum(bench['cached_seconds']):7.3f}s"
            f"  x{bench['speedup']:<6}"
            f" hit_rate {cache.get('hit_rate', 0.0):.2f}"
            f" store x{store.get('speedup', '-')}"
            f"{'' if bench['verdicts_match'] else '  VERDICT MISMATCH'}"
            f"{'' if sched.get('matches', True) else '  SCHEDULE MISMATCH'}"
            f"{'' if store.get('matches', True) else '  STORE MISMATCH'}"
            f"{'' if lemma.get('matches', True) else '  LEMMA MISMATCH'}"
            + (
                f"  lemmas {lemma['lemmas_applied']}"
                if lemma.get("lemmas_applied")
                else ""
            )
        )
    totals = report["totals"]
    lines.append(
        f"  {'TOTAL':16s} uncached {totals['uncached_seconds']:7.3f}s"
        f"  cached {totals['cached_seconds']:7.3f}s"
        f"  x{totals['speedup']}"
    )
    if "store_cold_seconds" in totals:
        lines.append(
            f"  {'STORE':16s} cold     {totals['store_cold_seconds']:7.3f}s"
            f"  warm   {totals['store_warm_seconds']:7.3f}s"
            f"  x{totals['store_speedup']}"
            f" ({totals['store_warm_hits']} warm hit(s))"
        )
    if totals.get("incr_warm_seconds"):
        lines.append(
            f"  {'INCREMENTAL':16s} scratch  {totals['incr_scratch_seconds']:7.3f}s"
            f"  incr   {totals['incr_warm_seconds']:7.3f}s"
            f"  x{totals['incr_speedup']}"
            f" ({totals['incr_replay_hits']}/{totals['incr_replay_lookups']}"
            " fixpoint replay(s))"
        )
    baseline = report.get("baseline")
    if baseline:
        lines.append(
            f"  vs baseline {baseline['path']} ({baseline['date']}): "
            f"uncached x{baseline['uncached_speedup_vs_baseline']} over "
            f"{len(baseline['shared_benchmarks'])} shared benchmarks "
            f"(cross-run wall clock; see EXPERIMENTS.md)"
        )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="measure cached vs uncached analysis throughput and "
        "write a BENCH_<date>.json baseline",
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="BENCHMARK",
        help="benchmarks to measure (default: the full suite)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="only the list staples + entail-stress (the CI smoke suite)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        metavar="N",
        help="repetitions per configuration (default 3)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        metavar="S",
        help="per-run wall-clock deadline in seconds (default 60)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="where to write the JSON report (default BENCH_<date>.json; "
        "'-' for stdout only)",
    )
    parser.add_argument(
        "--require-hits",
        action="store_true",
        help="fail (exit 1) when the list benchmarks record zero cache "
        "hits -- the CI canary for cross-run key sharing",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed BENCH_*.json to diff against (default: the "
        "most recent one in the working directory; 'none' to disable)",
    )
    parser.add_argument(
        "--compare",
        metavar="PATH",
        help="noise-aware regression gate: compare this run's per-rep "
        "minima against the bench report at PATH and exit 1 on any "
        "regression (relative threshold AND absolute floor, skipping "
        "under-sampled benchmarks)",
    )
    parser.add_argument(
        "--compare-threshold",
        type=float,
        default=DEFAULT_COMPARE_THRESHOLD,
        metavar="F",
        help="relative slowdown that counts as a regression "
        f"(default {DEFAULT_COMPARE_THRESHOLD})",
    )
    parser.add_argument(
        "--compare-min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        metavar="S",
        help="absolute per-rep slowdown floor in seconds "
        f"(default {DEFAULT_MIN_SECONDS})",
    )
    parser.add_argument(
        "--compare-out",
        metavar="PATH",
        help="write the comparison JSON to PATH (the CI gate uploads "
        "this as an artifact)",
    )
    args = parser.parse_args(argv)
    if args.reps < 1:
        print("repro bench: --reps must be >= 1", file=sys.stderr)
        return 2
    report = run_bench(
        names=args.names or None,
        quick=args.quick,
        repetitions=args.reps,
        deadline=args.deadline,
    )
    if args.baseline != "none":
        baseline_path = (
            Path(args.baseline) if args.baseline else find_baseline()
        )
        if baseline_path is not None and baseline_path.exists():
            attach_baseline(report, baseline_path)
        elif args.baseline:
            print(
                f"repro bench: baseline {args.baseline} not found",
                file=sys.stderr,
            )
            return 2
    print(render(report))
    payload = json.dumps(report, indent=2)
    if args.out == "-":
        print(payload)
    else:
        out = Path(args.out) if args.out else default_out_path(report)
        out.write_text(payload + "\n")
        print(f"report written to {out}")
    regression_gate_failed = False
    if args.compare:
        compare_path = Path(args.compare)
        try:
            compare_base = json.loads(compare_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"repro bench: unreadable --compare baseline "
                f"{compare_path}: {exc}",
                file=sys.stderr,
            )
            return 2
        comparison = compare_reports(
            report,
            compare_base,
            threshold=args.compare_threshold,
            min_seconds=args.compare_min_seconds,
        )
        for warning in comparison["warnings"]:
            print(f"repro bench: warning: {warning}", file=sys.stderr)
        print(render_comparison(comparison))
        if args.compare_out:
            Path(args.compare_out).write_text(
                json.dumps(comparison, indent=2) + "\n"
            )
            print(f"comparison written to {args.compare_out}")
        regression_gate_failed = not comparison["ok"]
    if report["verdict_mismatches"]:
        print(
            "repro bench: cached and uncached verdicts differ for: "
            + ", ".join(report["verdict_mismatches"]),
            file=sys.stderr,
        )
        return 1
    if report["schedule_mismatches"]:
        print(
            "repro bench: fifo and wto core verdicts differ for: "
            + ", ".join(report["schedule_mismatches"]),
            file=sys.stderr,
        )
        return 1
    if report.get("store_mismatches"):
        print(
            "repro bench: store-on and store-off core verdicts differ "
            "for: " + ", ".join(report["store_mismatches"]),
            file=sys.stderr,
        )
        return 1
    if report.get("lemma_mismatches"):
        print(
            "repro bench: lemma synthesis lost a structural pass for: "
            + ", ".join(report["lemma_mismatches"]),
            file=sys.stderr,
        )
        return 1
    if report.get("incremental_mismatches"):
        print(
            "repro bench: incremental and from-scratch core verdicts "
            "differ for: " + ", ".join(report["incremental_mismatches"]),
            file=sys.stderr,
        )
        return 1
    if args.require_hits and report["totals"].get("store_warm_hits") == 0:
        print(
            "repro bench: warm-store runs recorded zero store hits",
            file=sys.stderr,
        )
        return 1
    if args.require_hits and report["totals"]["list_cache_hits"] == 0:
        print(
            "repro bench: list benchmarks recorded zero cache hits",
            file=sys.stderr,
        )
        return 1
    if regression_gate_failed:
        print(
            "repro bench: performance regressions detected; see the "
            "comparison above",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
