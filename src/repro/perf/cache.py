"""A bounded LRU cache for entailment verdicts.

Deliberately generic: keys and payloads are opaque to the cache (the
entailment layer builds keys from canonical state forms and stores
witnesses in canonical coordinates), so this module depends on nothing
above the standard library and the ``perf`` package stays import-cycle
free below ``logic``.

The cache stores *both* polarities -- a ``None`` payload records a
rejected query -- because a negative verdict is exactly as
deterministic as a positive one once the step limit is part of the
key.  Eviction is least-recently-used; capacity bounds memory on
pathological fixpoints that generate unbounded families of states.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = [
    "EntailmentCache",
    "IdentityMemo",
    "LemmaCache",
    "NULL_CACHE",
    "NullCache",
]


class EntailmentCache:
    """LRU map from (canonical) query keys to cached verdicts.

    ``lookup`` returns the stored ``(payload,)`` 1-tuple on a hit and
    ``None`` on a miss, so that a cached negative verdict (payload
    ``None``) is distinguishable from absence.
    """

    enabled = True

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[object, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key) -> "tuple | None":
        try:
            payload = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return (payload,)

    def store(self, key, payload) -> bool:
        """Record *payload* under *key*; True when an entry was evicted."""
        self._entries[key] = payload
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "hit_rate": round(self.hit_rate, 6),
        }


class LemmaCache(EntailmentCache):
    """LRU map from canonical lemma pair keys to verdicts.

    Same shape as :class:`EntailmentCache` -- a ``None`` payload records
    a *refuted* pair, so the synthesis search never re-runs for a pair
    already known to admit no lemma.  Kept as its own class (and its
    own, smaller default capacity: distinct predicate-definition pairs
    are few compared to entailment queries) so lemma verdicts never
    compete with entailment verdicts for cache slots.
    """

    def __init__(self, capacity: int = 1024):
        super().__init__(capacity)


class IdentityMemo:
    """A set of keys known to denote identity (no-op) operations.

    The fold memo only needs membership -- there is no payload to
    replay and no negative polarity worth recording, so a plain set
    beats :class:`EntailmentCache`'s ``OrderedDict`` bookkeeping on a
    path hot enough that ``move_to_end`` showed up in profiles.  The
    capacity bound is kept (pathological fixpoints can mint unbounded
    state families); overflow clears the whole set, which is sound for
    a pure memo and cheaper than tracking recency.
    """

    enabled = True

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("memo capacity must be positive")
        self.capacity = capacity
        self._keys: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._keys)

    def lookup(self, key) -> "tuple | None":
        if key in self._keys:
            self.hits += 1
            return (True,)
        self.misses += 1
        return None

    def store(self, key, payload=True) -> bool:
        if len(self._keys) >= self.capacity and key not in self._keys:
            self.evictions += len(self._keys)
            self._keys.clear()
        self._keys.add(key)
        return False

    def clear(self) -> None:
        self._keys.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._keys),
            "hit_rate": round(self.hit_rate, 6),
        }


class NullCache:
    """Disabled cache: the hot-path guard is one attribute load."""

    enabled = False

    def lookup(self, key) -> None:
        return None

    def store(self, key, payload) -> bool:
        return False

    def clear(self) -> None:
        pass

    def stats(self) -> dict:
        return {}


NULL_CACHE = NullCache()
