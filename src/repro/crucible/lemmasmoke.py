"""``python -m repro lemma-smoke`` -- the lemma-soundness CI gate.

The lemma-synthesis fallback (:mod:`repro.logic.lemmas`) widens the
entailment checker, and a widened checker has exactly one way to go
wrong: admitting a subsumption that does not hold.  This gate proves
the two observable consequences differentially:

1. **Curated differential** -- the three lemma regression scenarios
   (:mod:`repro.benchsuite.lemmaprogs`: mid-list re-fold,
   different-root reachability, shared tail) must *fail* under the
   purely structural strict analysis and *pass* with lemmas enabled,
   the pass must actually be lemma-assisted
   (``entailment.lemma.applied > 0``), and the differential
   :class:`~repro.crucible.oracle.Oracle` must certify it against the
   concrete reference interpreter (claims A/B: the pass implies a
   safe execution whose final heap models the claimed predicates).
2. **Seeded sweep** -- a crucible campaign (default 50 seeds) runs the
   full oracle on every generated program.  Lemma-assisted passes are
   concretely cross-checked by claims A/B; every non-pass is re-run
   with lemmas disabled by claim D (lemma monotonicity: lemmas may
   only *add* passes, never lose one).  Both directions of the
   lemmas-on/off differential are therefore covered on every seed.

Any violation exits 1.  The gate also fails if the sweep plus the
curated scenarios never produced a single lemma-assisted pass: a
fallback that never fires is dead weight, and a gate that never
exercises it proves nothing.
"""

from __future__ import annotations

import json
import sys
import time

from repro.analysis import ShapeAnalysis
from repro.benchsuite import lemmaprogs
from repro.crucible.generator import generate_program
from repro.crucible.oracle import Oracle

__all__ = ["main", "run_gate", "SCENARIOS"]

#: The curated scenario classes and their program factories.
SCENARIOS = (
    ("lemma-refold", lemmaprogs.refold_program),
    ("lemma-diffroot", lemmaprogs.diffroot_program),
    ("lemma-sharedtail", lemmaprogs.sharedtail_program),
)


def _structural_outcome(program, name: str, deadline: float) -> str:
    """The strict verdict of the purely structural analysis."""
    return ShapeAnalysis(
        program,
        name=name,
        mode="strict",
        deadline_seconds=deadline,
        enable_lemmas=False,
    ).run().outcome


def run_gate(
    seeds: int = 50,
    base_seed: int = 1,
    deadline: float = 30.0,
    mutations: int = 0,
) -> dict:
    """The differential sweep; returns the report dict (``failures``
    empty iff the gate passed)."""
    oracle = Oracle(deadline_seconds=deadline)
    failures: list[str] = []
    lemma_assisted_passes = 0
    outcomes = {"pass": 0, "other": 0}
    start = time.perf_counter()

    # -- curated scenarios ---------------------------------------------
    for name, factory in SCENARIOS:
        try:
            structural = _structural_outcome(factory(), name, deadline)
            if structural == "pass":
                failures.append(
                    f"{name}: passes without lemmas -- the scenario no "
                    "longer exercises the fallback"
                )
            report = oracle.check(factory(), name)
            if report.analysis_outcome != "pass":
                failures.append(
                    f"{name}: lemma-assisted analysis reported "
                    f"{report.analysis_outcome!r}, expected 'pass'"
                )
            elif report.lemmas_applied == 0:
                failures.append(
                    f"{name}: passed without applying a lemma -- the "
                    "differential is not testing lemma synthesis"
                )
            else:
                lemma_assisted_passes += 1
            for violation in report.violations:
                failures.append(
                    f"{name}: oracle violation [{violation.claim}] "
                    f"{violation.message}"
                )
        except Exception as exc:  # the gate itself must never crash
            failures.append(
                f"{name}: gate crashed ({type(exc).__name__}: {exc})"
            )

    # -- seeded sweep ---------------------------------------------------
    seeds_checked = 0
    for seed in range(base_seed, base_seed + seeds):
        name = f"crucible:{seed}"
        try:
            program = generate_program(seed, mutations=mutations).program
            report = oracle.check(program, name)
            if report.analysis_outcome == "pass":
                outcomes["pass"] += 1
            else:
                outcomes["other"] += 1
            if report.analysis_outcome == "pass" and report.lemmas_applied:
                lemma_assisted_passes += 1
            for violation in report.violations:
                failures.append(
                    f"{name}: oracle violation [{violation.claim}] "
                    f"{violation.message}"
                )
            seeds_checked += 1
        except Exception as exc:
            failures.append(
                f"{name}: gate crashed ({type(exc).__name__}: {exc})"
            )

    if not failures and lemma_assisted_passes == 0:
        failures.append(
            "no run in the whole gate was lemma-assisted: the fallback "
            "never fired, so the differential proves nothing"
        )

    return {
        "seeds": seeds,
        "base_seed": base_seed,
        "seeds_checked": seeds_checked,
        "scenarios": [name for name, _ in SCENARIOS],
        "outcomes": outcomes,
        "lemma_assisted_passes": lemma_assisted_passes,
        "failures": failures,
        "seconds": round(time.perf_counter() - start, 3),
    }


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lemma-smoke",
        description="lemma-synthesis soundness gate (see module doc)",
    )
    parser.add_argument("--seeds", type=int, default=50)
    parser.add_argument("--base-seed", type=int, default=1)
    parser.add_argument("--mutate", type=int, default=0, metavar="N")
    parser.add_argument("--deadline", type=float, default=30.0, metavar="S")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    report = run_gate(
        seeds=args.seeds,
        base_seed=args.base_seed,
        deadline=args.deadline,
        mutations=args.mutate,
    )

    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(
            f"lemma-smoke: {report['seeds_checked']}/{report['seeds']} "
            f"seeds + {len(report['scenarios'])} curated scenario(s) "
            f"checked in {report['seconds']}s, outcomes "
            f"{report['outcomes']}, {report['lemma_assisted_passes']} "
            "lemma-assisted pass(es)"
        )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"lemma-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "lemma-smoke: every lemma-assisted pass certified concretely; "
        "no structural pass lost"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
