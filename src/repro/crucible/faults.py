"""Deterministic fault injection at the engine's phase boundaries.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers.  The
plan is wired into :class:`~repro.analysis.engine.ShapeAnalysis`
through its ``engine_factory`` hook: the factory builds a
:class:`FaultyShapeEngine`, whose overridden
:meth:`~repro.analysis.interproc.ShapeEngine.phase_boundary` consults
the plan at every boundary crossing (``rearrange``, ``fold``,
``entailment``, ``synthesis``, ``tabulation``) and raises the planned
fault.  Because the boundary hook sits on the exact code paths real
failures take, an injected fault exercises precisely the containment,
retry-escalation, and exit-code machinery of the resilience layer --
chaos testing with reproducible triggers instead of wall-clock luck.

Fault kinds:

* ``"failure"`` -- raise an :class:`AnalysisFailure` with the
  documented code for the phase (a synthesis failure at the synthesis
  boundary, a stuck execution at rearrange, ...);
* ``"error"`` -- raise a bare :class:`RuntimeError` (an engine bug;
  must be classified as ``internal-error``, never escape);
* ``"budget"`` -- raise :class:`BudgetExhausted` (never retried);
* ``"timeout"`` -- collapse the engine budget's wall-clock deadline to
  zero and trip it: from this crossing on the run behaves exactly like
  a real deadline expiry (subsequent cooperative checks fail too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.interproc import PHASE_BOUNDARIES, ShapeEngine
from repro.analysis.resilience import (
    EXECUTION_STUCK,
    INVARIANT_FAILURE,
    STORE_INVALID,
    SUMMARY_FAILURE,
    AnalysisFailure,
    BudgetExhausted,
)
from repro.store.chaos import StoreChaos, StoreFaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyShapeEngine",
    "StoreFaultSpec",
]

FAULT_KINDS = ("failure", "error", "budget", "timeout")

#: The documented failure code a real failure of each phase carries.
#: A "failure" injected at the store boundary models the store
#: rejecting an entry mid-consult; the engine must contain it as the
#: always-recovered ``store-invalid`` (a miss, never a verdict change).
PHASE_FAILURE_CODES = {
    "rearrange": EXECUTION_STUCK,
    "fold": INVARIANT_FAILURE,
    "entailment": SUMMARY_FAILURE,
    "synthesis": INVARIANT_FAILURE,
    "tabulation": SUMMARY_FAILURE,
    "store": STORE_INVALID,
}


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: fire *kind* at the *at*-th crossing of *phase*
    (1-based), or at **every** crossing when ``at`` is None."""

    phase: str
    kind: str = "failure"
    at: int | None = 1
    procedure: str | None = None

    def __post_init__(self) -> None:
        if self.phase not in PHASE_BOUNDARIES:
            raise ValueError(f"unknown phase boundary {self.phase!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass
class FaultPlan:
    """A deterministic chaos schedule, shared across retry attempts.

    The plan counts boundary crossings per phase (across every engine
    the analysis builds, so retry escalation keeps counting where the
    failed attempt stopped) and raises when a spec matches.  With no
    specs it is a pure *recorder*: ``crossings`` exposes how often each
    boundary was crossed, which the tests use to prove every boundary
    is actually exercised.
    """

    specs: list[FaultSpec] = field(default_factory=list)
    #: Store-level damage (torn writes, checksum flips, stale schemas,
    #: mid-write kills), applied *inside* the disk layer rather than at
    #: a boundary: build the run's store with :meth:`store_chaos`.
    store_specs: list[StoreFaultSpec] = field(default_factory=list)
    crossings: dict[str, int] = field(
        default_factory=lambda: {phase: 0 for phase in PHASE_BOUNDARIES}
    )
    fired: list[str] = field(default_factory=list)

    def store_chaos(self) -> "StoreChaos | None":
        """The :class:`StoreChaos` schedule for this plan's store-level
        specs (None when there are none).  Pass it to
        ``SummaryStore(path, chaos=...)``; the schedule's ``fired`` list
        then records what actually triggered."""
        return StoreChaos(self.store_specs) if self.store_specs else None

    def on_boundary(self, engine: ShapeEngine, phase: str, procedure: str | None) -> None:
        count = self.crossings[phase] = self.crossings[phase] + 1
        for spec in self.specs:
            if spec.phase != phase:
                continue
            if spec.procedure is not None and spec.procedure != procedure:
                continue
            if spec.at is not None and spec.at != count:
                continue
            self.fired.append(f"{spec.kind}@{phase}#{count}")
            self._raise(engine, spec, phase, procedure)

    def _raise(
        self,
        engine: ShapeEngine,
        spec: FaultSpec,
        phase: str,
        procedure: str | None,
    ) -> None:
        where = procedure or "<program>"
        if spec.kind == "failure":
            raise AnalysisFailure(
                f"injected {phase} failure in {where}",
                code=PHASE_FAILURE_CODES[phase],
                phase=phase,
                procedure=procedure,
            )
        if spec.kind == "error":
            raise RuntimeError(f"injected chaos error at {phase} in {where}")
        if spec.kind == "budget":
            raise BudgetExhausted(
                f"injected budget exhaustion at {phase} in {where}",
                resource=f"injected-{phase}",
                phase=phase,
                procedure=procedure,
            )
        # kind == "timeout": make the shared budget's deadline expire
        # for real, so every later cooperative check fails exactly as
        # it would after a genuine wall-clock overrun.
        engine.budget.deadline_seconds = 0.0
        engine.budget.start()
        engine.budget.check_deadline(phase)
        raise BudgetExhausted(  # pragma: no cover - check_deadline raised
            f"injected timeout at {phase}", resource="deadline", phase=phase
        )

    # ------------------------------------------------------------------
    def engine_factory(self):
        """An ``engine_factory`` for :class:`ShapeAnalysis` that builds
        :class:`FaultyShapeEngine` instances sharing this plan."""

        def factory(*args, **kwargs):
            return FaultyShapeEngine(*args, fault_plan=self, **kwargs)

        return factory


class FaultyShapeEngine(ShapeEngine):
    """A :class:`ShapeEngine` whose phase boundaries consult a
    :class:`FaultPlan`."""

    def __init__(self, *args, fault_plan: FaultPlan, **kwargs):
        super().__init__(*args, **kwargs)
        self.fault_plan = fault_plan

    def phase_boundary(self, phase: str, procedure: str | None = None) -> None:
        self.fault_plan.on_boundary(self, phase, procedure)
