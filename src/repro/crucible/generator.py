"""Seeded, deterministic generator of heap-manipulating IR programs.

Programs are composed from a pool of *skeletons* -- parameterized
traversal/insert/delete/rotate kernels over the recursive types the
paper's analysis targets (singly and doubly linked lists, binary
trees) -- and then optionally perturbed with random *mutations*:

* **block reordering** -- basic blocks are shuffled with explicit
  ``goto``\\ s preserving the control flow (semantics-preserving, but a
  completely different instruction layout for the analysis);
* **branch flipping** -- a branch condition is negated (semantics-
  *changing*: loops may exit immediately or never);
* **dead stores** -- a fresh never-read register assignment is
  inserted at a random point;
* **statement deletion** -- a random non-control instruction is
  replaced with ``nop`` (unlinking list nodes, dropping initializing
  stores, ...).

Everything is driven by one ``random.Random(seed)`` instance, so a
seed fully determines the generated program; the same seed always
reproduces the same bytes of textual IR.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.instructions import (
    Assign,
    Branch,
    Cond,
    Goto,
    Nop,
    Return,
)
from repro.ir.program import IRError, Procedure, Program
from repro.ir.textual import parse_program, print_program
from repro.ir.values import NULL, IntConst, Register

__all__ = [
    "SKELETONS",
    "MUTATIONS",
    "GeneratedProgram",
    "generate_program",
    "mutate_program",
    "edit_program",
    "clone_program",
]


# ----------------------------------------------------------------------
# Skeleton pool
# ----------------------------------------------------------------------

_BUILD_PROC = """
proc build(%n):
    %head = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %head
    %head = %p
    %n = sub %n, 1
    goto L
done:
    return %head
"""

_TREE_BUILD_PROC = """
proc build(%n):
    if %n > 0 goto rec
    return null
rec:
    %t = malloc()
    %m = sub %n, 1
    %l = call build(%m)
    [%t.left] = %l
    %r = call build(%m)
    [%t.right] = %r
    return %t
"""


def _list_build(n: int) -> str:
    return _BUILD_PROC + f"""
proc main():
    %head = call build({n})
    return %head
"""


def _list_traverse(n: int) -> str:
    return _BUILD_PROC + f"""
proc main():
    %head = call build({n})
    %c = %head
T:
    if %c == null goto out
    %c = [%c.next]
    goto T
out:
    return %head
"""


def _list_reverse(n: int) -> str:
    return _BUILD_PROC + f"""
proc main():
    %head = call build({n})
    %prev = null
R:
    if %head == null goto out
    %next = [%head.next]
    [%head.next] = %prev
    %prev = %head
    %head = %next
    goto R
out:
    return %prev
"""


def _list_delete(n: int) -> str:
    return _BUILD_PROC + f"""
proc main():
    %head = call build({n})
    if %head == null goto out
    %victim = [%head.next]
    if %victim == null goto out
    %rest = [%victim.next]
    [%head.next] = %rest
    free(%victim)
out:
    return %head
"""


def _list_insert(n: int) -> str:
    return _BUILD_PROC + f"""
proc main():
    %head = call build({n})
    if %head == null goto out
    %new = malloc()
    %rest = [%head.next]
    [%new.next] = %rest
    [%head.next] = %new
out:
    return %head
"""


def _list_rotate(n: int) -> str:
    return _BUILD_PROC + f"""
proc main():
    %head = call build({n})
    if %head == null goto out
    %first = %head
    %head = [%first.next]
    [%first.next] = null
    if %head == null goto lone
    %c = %head
walk:
    %t = [%c.next]
    if %t == null goto splice
    %c = %t
    goto walk
splice:
    [%c.next] = %first
out:
    return %head
lone:
    return %first
"""


def _doubly_build(n: int) -> str:
    return f"""
proc main():
    %n = {n}
    %head = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %head
    [%p.prev] = null
    if %head == null goto skip
    [%head.prev] = %p
skip:
    %head = %p
    %n = sub %n, 1
    goto L
done:
    return %head
"""


def _tree_build(n: int) -> str:
    return _TREE_BUILD_PROC + f"""
proc main():
    %root = call build({n})
    return %root
"""


def _tree_sum(n: int) -> str:
    return _TREE_BUILD_PROC + f"""
proc walk(%t):
    if %t != null goto rec
    return 0
rec:
    %l = [%t.left]
    %a = call walk(%l)
    %r = [%t.right]
    %b = call walk(%r)
    %s = add %a, %b
    return %s

proc main():
    %root = call build({n})
    %total = call walk(%root)
    return %root
"""


def _tree_rotate(n: int) -> str:
    return _TREE_BUILD_PROC + f"""
proc main():
    %root = call build({n})
    if %root == null goto out
    %l = [%root.left]
    if %l == null goto out
    %lr = [%l.right]
    [%root.left] = %lr
    [%l.right] = %root
    %root = %l
out:
    return %root
"""


#: name -> (source builder, (min size, max size)).  List sizes are node
#: counts; tree sizes are depths (kept small: a depth-``d`` build
#: allocates ``2^d - 1`` nodes).
SKELETONS: dict[str, tuple] = {
    "list-build": (_list_build, (1, 12)),
    "list-traverse": (_list_traverse, (1, 12)),
    "list-reverse": (_list_reverse, (1, 12)),
    "list-delete": (_list_delete, (1, 12)),
    "list-insert": (_list_insert, (1, 12)),
    "list-rotate": (_list_rotate, (1, 12)),
    "doubly-build": (_doubly_build, (1, 12)),
    "tree-build": (_tree_build, (1, 6)),
    "tree-sum": (_tree_sum, (1, 6)),
    "tree-rotate": (_tree_rotate, (2, 6)),
}


@dataclass
class GeneratedProgram:
    """One generator output: the program plus its full provenance."""

    seed: int
    skeleton: str
    size: int
    program: Program
    mutations: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        suffix = f"+{len(self.mutations)}mut" if self.mutations else ""
        return f"crucible-{self.seed}-{self.skeleton}{suffix}"

    def source(self) -> str:
        """The program as replayable textual IR."""
        return print_program(self.program)


def generate_program(seed: int, mutations: int = 0) -> GeneratedProgram:
    """Deterministically generate one program from *seed*.

    ``mutations`` random mutations are applied on top of the chosen
    skeleton (0 = the pure skeleton pool).
    """
    rng = random.Random(seed)
    skeleton = rng.choice(sorted(SKELETONS))
    maker, (lo, hi) = SKELETONS[skeleton]
    size = rng.randint(lo, hi)
    program = parse_program(maker(size))
    generated = GeneratedProgram(seed, skeleton, size, program)
    if mutations:
        mutate_program(generated, rng, mutations)
    return generated


def clone_program(program: Program) -> Program:
    """A structurally independent copy (instructions are immutable and
    shared; instruction lists and label maps are fresh)."""
    clone = Program(entry=program.entry, globals=program.globals)
    for proc in program.procedures.values():
        clone.add(
            Procedure(proc.name, proc.params, list(proc.instrs), dict(proc.labels))
        )
    return clone


# ----------------------------------------------------------------------
# Mutations
# ----------------------------------------------------------------------


def _pick_proc(program: Program, rng: random.Random) -> Procedure:
    return program.procedures[rng.choice(sorted(program.procedures))]


def _flip_branch(
    program: Program, rng: random.Random, proc: Procedure | None = None
) -> str | None:
    proc = proc or _pick_proc(program, rng)
    branches = [
        i for i, instr in enumerate(proc.instrs) if isinstance(instr, Branch)
    ]
    if not branches:
        return None
    index = rng.choice(branches)
    old = proc.instrs[index]
    proc.instrs[index] = Branch(old.cond.negated(), old.target)
    return f"branch-flip {proc.name}@{index}"


_DEAD_COUNTER_FIELDS = ("next", "prev", "left", "right", "val")


def _dead_store(
    program: Program, rng: random.Random, proc: Procedure | None = None
) -> str | None:
    proc = proc or _pick_proc(program, rng)
    index = rng.randrange(len(proc.instrs) + 1)
    regs = sorted(r.name for r in proc.registers())
    if regs and rng.random() < 0.5:
        src = Register(rng.choice(regs))
    elif rng.random() < 0.5:
        src = NULL
    else:
        src = IntConst(rng.randint(0, 99))
    dead = Register(f"dead{rng.randint(0, 9999)}")
    proc.instrs.insert(index, Assign(dead, src))
    # Labels at or after the insertion point shift by one.
    for label, target in proc.labels.items():
        if target >= index:
            proc.labels[label] = target + 1
    return f"dead-store {proc.name}@{index}"


def _delete_statement(
    program: Program, rng: random.Random, proc: Procedure | None = None
) -> str | None:
    proc = proc or _pick_proc(program, rng)
    candidates = [
        i
        for i, instr in enumerate(proc.instrs)
        if not isinstance(instr, (Branch, Goto, Return, Nop))
    ]
    if not candidates:
        return None
    index = rng.choice(candidates)
    proc.instrs[index] = Nop()
    return f"stmt-delete {proc.name}@{index}"


def _reorder_blocks(
    program: Program, rng: random.Random, proc: Procedure | None = None
) -> str | None:
    """Shuffle the basic blocks of one procedure, making every implicit
    fallthrough explicit first so the control flow is preserved."""
    proc = proc or _pick_proc(program, rng)
    leaders = {0} | set(proc.labels.values())
    for i, instr in enumerate(proc.instrs):
        if isinstance(instr, (Branch, Goto)):
            leaders.add(i + 1)
    leaders = sorted(i for i in leaders if i < len(proc.instrs))
    if len(leaders) < 3:
        return None
    bounds = leaders + [len(proc.instrs)]
    blocks = [
        list(proc.instrs[bounds[i]:bounds[i + 1]]) for i in range(len(leaders))
    ]
    # Name every leader so explicit gotos can target it.
    index_to_label: dict[int, str] = {}
    for label, target in proc.labels.items():
        index_to_label.setdefault(target, label)
    names = []
    for i, leader in enumerate(leaders):
        label = index_to_label.get(leader)
        if label is None:
            label = f"blk{i}"
            while label in proc.labels:
                label = f"blk{i}_{rng.randint(0, 999)}"
        names.append(label)
    # Make fallthrough into the next block explicit.
    for i, block in enumerate(blocks[:-1]):
        if not block or not isinstance(block[-1], (Goto, Return)):
            block.append(Goto(names[i + 1]))
    if not blocks[-1] or not isinstance(blocks[-1][-1], (Goto, Return)):
        blocks[-1].append(Return())
    order = list(range(1, len(blocks)))
    rng.shuffle(order)
    order = [0] + order
    instrs: list = []
    labels: dict[str, int] = {}
    for i in order:
        labels[names[i]] = len(instrs)
        instrs.extend(blocks[i])
    # Labels that pointed one past the end (implicit epilogue) keep
    # pointing one past the end.
    for label, target in proc.labels.items():
        if label not in labels and target >= len(proc.instrs):
            labels[label] = len(instrs)
    proc.instrs[:] = instrs
    proc.labels.clear()
    proc.labels.update(labels)
    return f"block-reorder {proc.name} order={order}"


MUTATIONS = (
    ("branch-flip", _flip_branch),
    ("dead-store", _dead_store),
    ("stmt-delete", _delete_statement),
    ("block-reorder", _reorder_blocks),
)


def mutate_program(
    generated: GeneratedProgram, rng: random.Random, count: int
) -> GeneratedProgram:
    """Apply *count* random mutations in place, recording each one.

    A mutation that does not apply (no branch to flip...) or that
    leaves the program malformed is rolled back and retried with a
    different pick; the program is always valid afterwards.
    """
    applied = 0
    attempts = 0
    while applied < count and attempts < count * 8:
        attempts += 1
        _mutname, mutate = rng.choice(MUTATIONS)
        candidate = clone_program(generated.program)
        note = mutate(candidate, rng)
        if note is None:
            continue
        try:
            candidate.validate()
        except IRError:
            continue
        generated.program = candidate
        generated.mutations.append(note)
        applied += 1
    return generated


def edit_program(
    program: Program,
    seed: int,
    count: int = 1,
    target: str | None = None,
    kinds: "tuple[str, ...] | None" = None,
) -> "tuple[Program, list[str]]":
    """Deterministically derive an *edited* variant of *program*: the
    "developer changed one procedure" generator behind the
    ``edit:<base>@<seed>`` benchmark grammar and the incremental
    differential gate.

    Applies *count* crucible mutations driven by ``random.Random(seed)``,
    optionally confined to procedure *target* and/or to the mutation
    *kinds* named (a subset of :data:`MUTATIONS`).  Returns
    ``(edited, notes)``: a fresh, always-valid program (the input is
    untouched) plus one provenance note per applied mutation.
    """
    pool = MUTATIONS
    if kinds is not None:
        pool = tuple((name, fn) for name, fn in MUTATIONS if name in kinds)
        if not pool:
            raise ValueError(f"no such mutation kinds: {kinds!r}")
    if target is not None and target not in program.procedures:
        raise ValueError(f"no such procedure to edit: {target!r}")
    rng = random.Random(seed)
    edited = clone_program(program)
    notes: list[str] = []
    applied = 0
    attempts = 0
    while applied < count and attempts < count * 16:
        attempts += 1
        _mutname, mutate = rng.choice(pool)
        candidate = clone_program(edited)
        proc = candidate.procedures[target] if target is not None else None
        note = mutate(candidate, rng, proc)
        if note is None:
            continue
        try:
            candidate.validate()
        except IRError:
            continue
        edited = candidate
        notes.append(note)
        applied += 1
    return edited, notes
