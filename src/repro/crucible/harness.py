"""Campaign runner: generate -> oracle -> minimize -> corpus.

``run_campaign(seeds=N)`` drives the whole crucible loop for seeds
``base_seed .. base_seed+N-1``: each seed deterministically generates a
program (optionally mutated), the differential oracle cross-checks the
analysis against the concrete interpreter, and any violation is
delta-debugged down to a minimal reproducer written into the corpus
directory as replayable textual IR.

The report is **reproducible**: it contains no timestamps or timings,
and the logic-variable counter is reset up front, so the same seed set
produces byte-identical JSON across runs in one process (the
determinism guard, :func:`verify_determinism`, asserts exactly that;
across processes set ``PYTHONHASHSEED`` for stable set ordering).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.ir.program import Program
from repro.ir.textual import parse_program, print_program
from repro.logic.heapnames import reset_fresh_counter
from repro.crucible.generator import GeneratedProgram, generate_program
from repro.crucible.minimize import minimize_program
from repro.crucible.oracle import Oracle, OracleReport

__all__ = [
    "CampaignReport",
    "capture_failure_trace",
    "replay_corpus_file",
    "reproducer_path",
    "run_campaign",
    "verify_determinism",
    "write_reproducer",
]

#: Default corpus directory, relative to the working directory.
DEFAULT_CORPUS_DIR = Path("crucible") / "corpus"


@dataclass
class CampaignReport:
    """Aggregated, JSON-round-trippable outcome of one campaign."""

    base_seed: int
    seeds: int
    mutations: int
    runs: list[dict] = field(default_factory=list)

    @property
    def violation_count(self) -> int:
        return sum(len(run["oracle"]["violations"]) for run in self.runs)

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    @property
    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for run in self.runs:
            outcome = run["oracle"]["analysis_outcome"]
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "base_seed": self.base_seed,
            "seeds": self.seeds,
            "mutations": self.mutations,
            "counts": self.counts,
            "violations": self.violation_count,
            "runs": self.runs,
        }

    def to_json(self) -> str:
        """Canonical bytes for the determinism guard: sorted keys, no
        whitespace variance."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def render(self) -> str:
        lines = [
            f"crucible campaign: seeds {self.base_seed}.."
            f"{self.base_seed + self.seeds - 1}, "
            f"{self.mutations} mutation(s) per program"
        ]
        for run in self.runs:
            oracle = run["oracle"]
            mark = "VIOLATION" if oracle["violations"] else "ok"
            lines.append(
                f"  seed {run['seed']:>6} {run['skeleton']:<14} "
                f"analysis={oracle['analysis_outcome']:<8} "
                f"concrete={oracle['concrete']['status']:<10} {mark}"
            )
            for violation in oracle["violations"]:
                lines.append(
                    f"      {violation['claim']}: {violation['message']}"
                )
                if run.get("reproducer"):
                    lines.append(f"      reproducer: {run['reproducer']}")
                if run.get("trace"):
                    lines.append(f"      trace:      {run['trace']}")
        counts = "  ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        lines.append(f"outcomes: {counts}")
        lines.append(f"violations: {self.violation_count}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------


def reproducer_path(
    generated: GeneratedProgram,
    report: OracleReport,
    corpus_dir: "Path | str" = DEFAULT_CORPUS_DIR,
) -> Path:
    """Deterministic corpus filename for a violation: seed + claims."""
    claims = "+".join(sorted({v.claim for v in report.violations})) or "manual"
    return Path(corpus_dir) / f"seed{generated.seed:08d}-{claims}.ir"


def write_reproducer(
    generated: GeneratedProgram,
    report: OracleReport,
    program: Program,
    corpus_dir: "Path | str" = DEFAULT_CORPUS_DIR,
    trace_path: "Path | None" = None,
) -> Path:
    """Write *program* (usually the minimized form) as a replayable
    textual-IR corpus file with full provenance in comments.  When the
    failing run was re-analyzed under tracing, *trace_path* points the
    investigator at the span trace sitting next to the reproducer."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = reproducer_path(generated, report, corpus_dir)
    header = [
        "# crucible reproducer",
        f"# seed: {generated.seed}",
        f"# skeleton: {generated.skeleton} (size {generated.size})",
    ]
    for mutation in generated.mutations:
        header.append(f"# mutation: {mutation}")
    for violation in report.violations:
        header.append(f"# violation: {violation.claim}: {violation.message}")
    if trace_path is not None:
        header.append(f"# trace: {trace_path.as_posix()}")
    header.append(
        "# replay: python -m repro --crucible --replay " + path.as_posix()
    )
    path.write_text("\n".join(header) + "\n\n" + print_program(program))
    return path


def capture_failure_trace(
    oracle: Oracle,
    program: Program,
    name: str,
    reproducer: Path,
) -> "Path | None":
    """Re-run the analysis side of the oracle on *program* with tracing
    enabled and drop the span trace next to the reproducer
    (``<stem>.trace.jsonl``).  A trace capture that itself blows up is
    swallowed -- the reproducer is the artifact that matters."""
    from repro.analysis import ShapeAnalysis

    trace_path = reproducer.with_suffix(".trace.jsonl")
    try:
        ShapeAnalysis(
            program,
            name=name,
            mode="strict",
            deadline_seconds=getattr(oracle, "deadline_seconds", 20.0),
            state_budget=getattr(oracle, "state_budget", 20000),
            trace_path=trace_path,
        ).run()
    except Exception:
        return trace_path if trace_path.exists() else None
    return trace_path


def replay_corpus_file(
    path: "Path | str", oracle: "Oracle | None" = None
) -> OracleReport:
    """Re-run the differential oracle on a corpus file (``#`` comment
    lines are ignored by the textual parser)."""
    path = Path(path)
    program = parse_program(path.read_text())
    oracle = oracle or Oracle()
    return oracle.check(program, name=path.stem)


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------


def run_campaign(
    seeds: int = 20,
    base_seed: int = 1,
    mutations: int = 0,
    oracle: "Oracle | None" = None,
    corpus_dir: "Path | str | None" = DEFAULT_CORPUS_DIR,
    minimize: bool = True,
) -> CampaignReport:
    """The full loop: generate, cross-check, minimize, write corpus."""
    oracle = oracle or Oracle()
    report = CampaignReport(base_seed=base_seed, seeds=seeds, mutations=mutations)
    reset_fresh_counter()
    for seed in range(base_seed, base_seed + seeds):
        generated = generate_program(seed, mutations=mutations)
        oracle_report = oracle.check(generated.program, name=generated.name)
        run: dict = {
            "seed": seed,
            "skeleton": generated.skeleton,
            "size": generated.size,
            "mutations": list(generated.mutations),
            "instructions": generated.program.instruction_count(),
            "oracle": oracle_report.to_dict(),
            "reproducer": None,
        }
        if not oracle_report.ok:
            program = generated.program
            if minimize:
                program = minimize_program(
                    generated.program,
                    lambda p: not oracle.check(p, name=generated.name).ok,
                )
                run["minimized_instructions"] = program.instruction_count()
            if corpus_dir is not None:
                trace = capture_failure_trace(
                    oracle,
                    program,
                    generated.name,
                    reproducer_path(generated, oracle_report, corpus_dir),
                )
                path = write_reproducer(
                    generated, oracle_report, program, corpus_dir,
                    trace_path=trace,
                )
                run["reproducer"] = path.as_posix()
                run["trace"] = trace.as_posix() if trace else None
        report.runs.append(run)
    return report


def verify_determinism(
    seeds: int = 5,
    base_seed: int = 1,
    mutations: int = 0,
    oracle_factory=Oracle,
) -> tuple[bool, str, str]:
    """Run the same campaign twice and require byte-identical JSON.

    Returns ``(identical, first_json, second_json)``.  Corpus writing
    and minimization are disabled so the check is side-effect free.
    """
    first = run_campaign(
        seeds, base_seed, mutations, oracle=oracle_factory(),
        corpus_dir=None, minimize=False,
    ).to_json()
    second = run_campaign(
        seeds, base_seed, mutations, oracle=oracle_factory(),
        corpus_dir=None, minimize=False,
    ).to_json()
    return first == second, first, second
