"""The crucible: adversarial validation of the analysis pipeline.

Four cooperating parts (see the module docstrings for detail):

* :mod:`repro.crucible.generator` -- a seeded, deterministic generator
  of well-formed heap-manipulating IR programs, composed from a pool
  of traversal/insert/delete/rotate skeletons over recursive types
  plus random mutations (block reordering, branch flipping, dead
  stores, statement deletion);
* :mod:`repro.crucible.oracle` -- a differential oracle that runs the
  shape analysis and the concrete interpreter on the same program and
  cross-checks soundness claims between them;
* :mod:`repro.crucible.faults` -- a deterministic fault-injection
  layer (:class:`FaultPlan`) that raises exceptions, budget
  exhaustion, and synthetic timeouts at the engine's phase boundaries
  to chaos-test the resilience layer's containment;
* :mod:`repro.crucible.minimize` -- a delta-debugging minimizer that
  shrinks a failing program to a minimal textual-IR reproducer.

:mod:`repro.crucible.harness` ties them into a campaign runner with a
reproducible JSON report, a corpus directory of minimized reproducers,
and a determinism guard (same seed => byte-identical report).
"""

from repro.crucible.generator import (
    SKELETONS,
    GeneratedProgram,
    edit_program,
    generate_program,
    mutate_program,
)
from repro.crucible.oracle import (
    ConcreteOutcome,
    Oracle,
    OracleReport,
    Violation,
)
from repro.crucible.faults import FaultPlan, FaultSpec, FaultyShapeEngine
from repro.crucible.minimize import compact_program, minimize_program
from repro.crucible.harness import (
    CampaignReport,
    replay_corpus_file,
    run_campaign,
    verify_determinism,
    write_reproducer,
)

__all__ = [
    "SKELETONS",
    "CampaignReport",
    "ConcreteOutcome",
    "FaultPlan",
    "FaultSpec",
    "FaultyShapeEngine",
    "GeneratedProgram",
    "Oracle",
    "OracleReport",
    "Violation",
    "compact_program",
    "edit_program",
    "generate_program",
    "minimize_program",
    "mutate_program",
    "replay_corpus_file",
    "run_campaign",
    "verify_determinism",
    "write_reproducer",
]
