"""Differential soundness oracle: analysis vs. concrete execution.

Runs the strict-mode shape analysis and the concrete reference
interpreter on the *same* program and cross-checks three claims:

* **claim A (pass implies safe)** -- if the strict analysis reports
  ``pass``, the concrete execution must not hit a memory fault (null
  dereference, use-after-free, out-of-region access).  The paper's
  soundness theorem in differential form.
* **claim B (predicates model the heap)** -- every complete predicate
  instance the analysis claims of the returned value (in some exit
  state) must actually :func:`~repro.logic.model.satisfies` the final
  concrete heap.  Exit states are disjuncts: at least one must match
  the concrete outcome.
* **claim C (diagnostic taxonomy)** -- a strict-mode failure must
  carry a documented diagnostic code and phase for the stage that
  failed (:data:`~repro.analysis.resilience.DIAGNOSTIC_CODES` /
  ``DIAGNOSTIC_PHASES``), with a fatal severity.  Failures are allowed;
  *unclassified* failures are not.
* **claim D (lemma monotonicity)** -- synthesized bridging lemmas
  (:mod:`repro.logic.lemmas`) may only *add* passes.  Whenever the
  lemma-assisted analysis does not report ``pass``, the program is
  re-analyzed with lemmas disabled; a structural ``pass`` that the
  lemma-assisted run lost is a violation.  (The converse -- a
  lemma-*assisted* pass -- is concretely cross-checked by claims A
  and B against the reference interpreter, so both directions of the
  differential are covered.)

Additionally, an interpreter error that is neither a memory fault nor
a structured divergence (:class:`~repro.concrete.interp.FuelExhausted`)
is reported as an ``interpreter-health`` violation: the reference
semantics itself misbehaved.

The oracle's pieces are injectable (``analyze`` / ``execute``) so the
test suite can exercise the violation paths without needing a real
unsoundness in the analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import ShapeAnalysis
from repro.analysis.interproc import RET_REGISTER
from repro.analysis.resilience import (
    DIAGNOSTIC_CODES,
    DIAGNOSTIC_PHASES,
    SEVERITY_FATAL,
)
from repro.analysis.results import AnalysisResult
from repro.concrete import Interpreter
from repro.concrete.heap import MemoryError_
from repro.concrete.interp import FuelExhausted, InterpreterError
from repro.ir.program import Program
from repro.logic.model import ModelError, satisfies
from repro.logic.symvals import NullVal, OffsetVal, Opaque

__all__ = ["ConcreteOutcome", "Oracle", "OracleReport", "Violation"]


@dataclass
class Violation:
    """One broken oracle claim."""

    claim: str
    message: str

    def to_dict(self) -> dict:
        return {"claim": self.claim, "message": self.message}


@dataclass
class ConcreteOutcome:
    """What one concrete run did: ``status`` is ``ok`` / ``fault`` /
    ``diverged`` / ``interpreter-error``."""

    status: str
    value: int = 0
    steps: int = 0
    cells: dict[int, dict[str, int]] = field(default_factory=dict)
    reachable: set[int] = field(default_factory=set)
    error: str | None = None
    diagnostic: dict | None = None

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "value": self.value,
            "steps": self.steps,
            "cells": len(self.cells),
            "error": self.error,
            "diagnostic": self.diagnostic,
        }


@dataclass
class OracleReport:
    """The oracle's verdict on one program."""

    name: str
    analysis_outcome: str
    analysis_failure: str | None
    diagnostic_codes: list[str]
    concrete: ConcreteOutcome
    violations: list[Violation] = field(default_factory=list)
    #: ``entailment.lemma.applied`` of the analysis run: how many
    #: subsumption witnesses used a synthesized lemma.  Non-zero on a
    #: ``pass`` marks a lemma-assisted verdict (concretely checked by
    #: claims A/B).
    lemmas_applied: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "analysis_outcome": self.analysis_outcome,
            "analysis_failure": self.analysis_failure,
            "diagnostic_codes": self.diagnostic_codes,
            "concrete": self.concrete.to_dict(),
            "violations": [v.to_dict() for v in self.violations],
            "lemmas_applied": self.lemmas_applied,
        }


class Oracle:
    """Differential checker; one instance is reusable across programs."""

    def __init__(
        self,
        *,
        fuel: int = 200_000,
        deadline_seconds: float | None = 20.0,
        state_budget: int = 20000,
        documented_codes: frozenset[str] = frozenset(DIAGNOSTIC_CODES),
        documented_phases: frozenset[str] = frozenset(DIAGNOSTIC_PHASES),
        analyze: "Callable[[Program, str], AnalysisResult] | None" = None,
        execute: "Callable[[Program], ConcreteOutcome] | None" = None,
        schedule: str = "wto",
    ):
        self.fuel = fuel
        self.deadline_seconds = deadline_seconds
        self.state_budget = state_budget
        #: worklist schedule forwarded to the analysis; "fifo" lets the
        #: differential harness cross-check scheduling (the verdict must
        #: not depend on fixpoint order).
        self.schedule = schedule
        self.documented_codes = documented_codes
        self.documented_phases = documented_phases
        #: With an injected ``analyze`` the oracle cannot re-run the
        #: analysis under a different lemma setting, so claim D only
        #: fires on the default analyzer.
        self._custom_analyze = analyze is not None
        self._analyze = analyze or self._default_analyze
        self._execute = execute or self._default_execute

    # ------------------------------------------------------------------
    def _default_analyze(
        self, program: Program, name: str, *, enable_lemmas: bool = True
    ) -> AnalysisResult:
        return ShapeAnalysis(
            program,
            name=name,
            mode="strict",
            deadline_seconds=self.deadline_seconds,
            state_budget=self.state_budget,
            schedule=self.schedule,
            enable_lemmas=enable_lemmas,
        ).run()

    def _default_execute(self, program: Program) -> ConcreteOutcome:
        try:
            interp = Interpreter(program, fuel=self.fuel)
            run = interp.run()
        except MemoryError_ as exc:
            return ConcreteOutcome(status="fault", error=str(exc))
        except FuelExhausted as exc:
            return ConcreteOutcome(
                status="diverged",
                steps=exc.steps,
                error=str(exc),
                diagnostic=exc.to_diagnostic().to_dict(),
            )
        except (InterpreterError, RecursionError, ZeroDivisionError) as exc:
            return ConcreteOutcome(
                status="interpreter-error",
                error=f"{type(exc).__name__}: {exc}",
            )
        return ConcreteOutcome(
            status="ok",
            value=run.value,
            steps=run.steps,
            cells=run.heap.snapshot(),
            reachable=run.heap.reachable_from(run.value),
        )

    # ------------------------------------------------------------------
    def check(self, program: Program, name: str = "program") -> OracleReport:
        """Run both sides and compare (the whole differential loop)."""
        result = self._analyze(program, name)
        concrete = self._execute(program)
        report = self.compare(result, concrete, name=name)
        report.lemmas_applied = int(
            result.stats.get("entailment.lemma.applied", 0)
        )
        if result.outcome != "pass" and not self._custom_analyze:
            report.violations.extend(self._claim_d(program, name, result))
        return report

    def compare(
        self,
        result: AnalysisResult,
        concrete: ConcreteOutcome,
        name: str = "program",
    ) -> OracleReport:
        """Cross-check the three claims on already-computed halves."""
        violations: list[Violation] = []
        if concrete.status == "interpreter-error":
            violations.append(
                Violation(
                    "interpreter-health",
                    f"reference interpreter misbehaved: {concrete.error}",
                )
            )
        if result.outcome == "pass":
            violations.extend(self._claim_a(concrete))
            violations.extend(self._claim_b(result, concrete))
        else:
            violations.extend(self._claim_c(result))
        return OracleReport(
            name=name,
            analysis_outcome=result.outcome,
            analysis_failure=result.failure,
            diagnostic_codes=sorted({d.code for d in result.diagnostics}),
            concrete=concrete,
            violations=violations,
        )

    # -- claim A -------------------------------------------------------
    def _claim_a(self, concrete: ConcreteOutcome) -> list[Violation]:
        if concrete.status == "fault":
            return [
                Violation(
                    "pass-implies-safe",
                    "strict analysis passed but the concrete execution "
                    f"faulted: {concrete.error}",
                )
            ]
        return []

    # -- claim B -------------------------------------------------------
    def _claim_b(
        self, result: AnalysisResult, concrete: ConcreteOutcome
    ) -> list[Violation]:
        """At least one exit-state disjunct must match the concrete
        final heap.  Each disjunct is checked as far as its claims are
        concretizable: the return value's nullness, a complete
        predicate instance rooted at it (via :func:`satisfies`), or an
        explicit points-to graph.  A disjunct with claims the check
        cannot concretize (truncations, symbolic arguments, pointer
        arithmetic) *might* match, so its presence blocks any verdict
        -- the oracle only reports a violation when every disjunct is
        checkable and every one of them is refuted."""
        if concrete.status != "ok" or not result.exit_states:
            return []
        checked_any = False
        for state in result.exit_states:
            verdict = self._disjunct_matches(result, state, concrete)
            if verdict is None:
                return []  # an uncheckable disjunct might match
            if verdict:
                return []  # this disjunct describes the real heap
            checked_any = True
        if not checked_any:
            return []
        return [
            Violation(
                "predicates-model-heap",
                "no exit-state disjunct matches the concrete final heap "
                f"(returned {concrete.value}, "
                f"{len(concrete.cells)} cells live)",
            )
        ]

    def _disjunct_matches(
        self, result: AnalysisResult, state, concrete: ConcreteOutcome
    ) -> bool | None:
        """True/False when the disjunct's return-value claim can be
        checked against the concrete heap; None when it cannot."""
        ret = state.rho.get(RET_REGISTER)
        if ret is None:
            return None  # no claim made about the return value
        ret = state.resolve(ret)
        if isinstance(ret, NullVal):
            return concrete.value == 0
        instance = state.spatial.instance_rooted_at(ret)
        if instance is not None:
            if instance.truncs:
                return None
            # A complete instance covers the base case too, so a run
            # that returned 0 is checked against it (root 0, empty
            # footprint) rather than special-cased.
            concrete_args = [concrete.value]
            for arg in instance.args[1:]:
                if not isinstance(arg, NullVal):
                    return None  # symbolic argument: not concretizable
                concrete_args.append(0)
            try:
                footprint = satisfies(
                    result.env,
                    instance.pred,
                    tuple(concrete_args),
                    concrete.cells,
                )
            except ModelError:
                return False  # arity/definition mismatch: cannot hold
            return footprint is not None
        return self._points_to_graph_matches(state, ret, concrete)

    def _points_to_graph_matches(
        self, state, ret, concrete: ConcreteOutcome
    ) -> bool | None:
        """Match a disjunct's explicit points-to facts, rooted at the
        returned value, against the concrete cells."""
        binding = {ret: concrete.value}
        queue = [ret]
        seen = set()
        checked = False
        while queue:
            symbolic = queue.pop()
            if symbolic in seen:
                continue
            seen.add(symbolic)
            atoms = state.spatial.points_to_from(symbolic)
            if not atoms:
                continue
            address = binding[symbolic]
            if address == 0 or address not in concrete.cells:
                return False  # claims a cell where none exists
            node = concrete.cells[address]
            for atom in atoms:
                target = state.resolve(atom.target)
                if isinstance(target, Opaque):
                    continue  # untracked data: any value matches
                if isinstance(target, OffsetVal):
                    return None  # pointer arithmetic: out of scope
                value = node.get(atom.field, 0)
                checked = True
                if isinstance(target, NullVal):
                    if value != 0:
                        return False
                elif target in binding:
                    if binding[target] != value:
                        return False
                else:
                    binding[target] = value
                    queue.append(target)
        return True if checked else None

    # -- claim D -------------------------------------------------------
    def _claim_d(
        self, program: Program, name: str, result: AnalysisResult
    ) -> list[Violation]:
        """The lemma-assisted analysis did not pass; the purely
        structural one must not pass either (lemmas only add passes)."""
        structural = self._default_analyze(
            program, f"{name}-no-lemmas", enable_lemmas=False
        )
        if structural.outcome == "pass":
            return [
                Violation(
                    "lemma-monotonicity",
                    "lemma-assisted analysis reported "
                    f"{result.outcome!r} but the purely structural "
                    "analysis passes: lemma synthesis lost a verdict",
                )
            ]
        return []

    # -- claim C -------------------------------------------------------
    def _claim_c(self, result: AnalysisResult) -> list[Violation]:
        violations = []
        if result.outcome == "failed":
            fatal = [d for d in result.diagnostics if not d.recovered]
            if not fatal:
                violations.append(
                    Violation(
                        "diagnostic-taxonomy",
                        "analysis failed without a fatal diagnostic",
                    )
                )
            for diagnostic in fatal:
                if diagnostic.code not in self.documented_codes:
                    violations.append(
                        Violation(
                            "diagnostic-taxonomy",
                            f"undocumented diagnostic code {diagnostic.code!r}",
                        )
                    )
                if diagnostic.phase not in self.documented_phases:
                    violations.append(
                        Violation(
                            "diagnostic-taxonomy",
                            f"undocumented diagnostic phase {diagnostic.phase!r}",
                        )
                    )
                if diagnostic.severity != SEVERITY_FATAL:
                    violations.append(
                        Violation(
                            "diagnostic-taxonomy",
                            "fatal failure carries non-fatal severity "
                            f"{diagnostic.severity!r}",
                        )
                    )
        return violations
