"""Delta-debugging minimizer for failing IR programs.

Given a program and a predicate ``still_failing(program) -> bool``
(typically "the differential oracle still reports a violation"), the
minimizer shrinks the program while keeping the predicate true:

1. **ddmin over instructions** -- chunks of instructions (halving
   chunk sizes down to single instructions) are replaced with ``nop``;
   a replacement that keeps the program failing is kept.  Replacing
   with ``nop`` rather than deleting keeps every label and jump index
   stable, so any subset of replacements is well-formed by
   construction.
2. **compaction** -- runs of ``nop`` are deleted for real (labels are
   re-indexed), procedures unreachable from the entry are dropped, and
   labels no jump targets are removed.  Compaction preserves semantics
   exactly; if the predicate nevertheless flips (it may consult
   instruction indices), the uncompacted form is kept.

The result is written as a replayable textual-IR reproducer by the
harness (:func:`repro.crucible.harness.write_reproducer`).
"""

from __future__ import annotations

from typing import Callable

from repro.ir.instructions import Branch, Goto, Nop, Return
from repro.ir.program import IRError, Procedure, Program
from repro.crucible.generator import clone_program

__all__ = ["compact_program", "minimize_program"]


def _nop_out(
    program: Program,
    proc_name: str,
    indices: list[int],
) -> Program:
    candidate = clone_program(program)
    proc = candidate.procedures[proc_name]
    for index in indices:
        proc.instrs[index] = Nop()
    return candidate


def _check(program: Program, still_failing: Callable[[Program], bool]) -> bool:
    try:
        program.validate()
    except IRError:
        return False
    try:
        return bool(still_failing(program))
    except Exception:
        # A predicate that crashes on a candidate rejects it: the
        # minimizer must never turn one failure into a different one.
        return False


def minimize_program(
    program: Program,
    still_failing: Callable[[Program], bool],
    max_rounds: int = 8,
) -> Program:
    """Shrink *program* while ``still_failing`` stays true.

    The input program itself must satisfy the predicate; the returned
    program always does.
    """
    if not _check(clone_program(program), still_failing):
        raise ValueError("the input program does not satisfy the predicate")
    current = clone_program(program)
    for _round in range(max_rounds):
        changed = False
        for proc_name in sorted(current.procedures):
            proc = current.procedures[proc_name]
            candidates = [
                i
                for i, instr in enumerate(proc.instrs)
                if not isinstance(instr, Nop)
            ]
            chunk = max(len(candidates) // 2, 1)
            while chunk >= 1:
                index = 0
                progressed = False
                while index < len(candidates):
                    subset = candidates[index:index + chunk]
                    trial = _nop_out(current, proc_name, subset)
                    if _check(trial, still_failing):
                        current = trial
                        del candidates[index:index + chunk]
                        progressed = True
                        changed = True
                    else:
                        index += chunk
                if chunk == 1:
                    break
                chunk = chunk // 2 if not progressed else max(chunk // 2, 1)
        if not changed:
            break
    compacted = compact_program(current)
    if _check(compacted, still_failing):
        return compacted
    return current


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------


def compact_program(program: Program) -> Program:
    """Delete ``nop``\\ s (re-indexing labels), drop procedures the
    entry cannot reach, and drop labels nothing jumps to.  Semantics
    preserving."""
    compacted = Program(entry=program.entry, globals=program.globals)
    reachable = _reachable_procedures(program)
    for name, proc in program.procedures.items():
        if name not in reachable:
            continue
        compacted.add(_compact_procedure(proc))
    compacted.validate()
    return compacted


def _reachable_procedures(program: Program) -> set[str]:
    seen = {program.entry}
    frontier = [program.entry]
    while frontier:
        name = frontier.pop()
        proc = program.procedures.get(name)
        if proc is None:
            continue
        for callee in proc.callees():
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen


def _compact_procedure(proc: Procedure) -> Procedure:
    keep = [i for i, instr in enumerate(proc.instrs) if not isinstance(instr, Nop)]
    # new index of old index i = number of kept instructions before i
    remap: dict[int, int] = {}
    for new_index, old_index in enumerate(keep):
        remap[old_index] = new_index
    def new_index_of(old: int) -> int:
        # A label may point at a nop (or past the end): it moves to the
        # next kept instruction, or one past the new end.
        while old < len(proc.instrs) and old not in remap:
            old += 1
        return remap.get(old, len(keep))
    used_labels = {
        instr.target
        for instr in proc.instrs
        if isinstance(instr, (Goto, Branch))
    }
    labels = {
        label: new_index_of(old)
        for label, old in proc.labels.items()
        if label in used_labels
    }
    instrs = [proc.instrs[i] for i in keep]
    if not instrs or not isinstance(instrs[-1], (Return, Goto)):
        instrs.append(Return())
    return Procedure(proc.name, proc.params, instrs, labels)
