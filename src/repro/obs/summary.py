"""Trace exploration: aggregate a JSONL trace into a time/count tree.

``python -m repro trace-summary FILE`` renders, top-down, where a run
spent its time: spans with the same name under the same parent path are
aggregated (count, total wall time, self time = total minus children),
and point events show up as count-only rows.  Rendering goes through
:mod:`repro.reporting` so trace tables read like the rest of the
harness output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.reporting import render_table

__all__ = ["SummaryNode", "load_trace", "render_trace_summary", "summarize_trace"]


@dataclass
class SummaryNode:
    """One aggregate row: every span/event named *name* whose parents
    aggregate to the same path."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    children: "dict[str, SummaryNode]" = field(default_factory=dict)

    @property
    def self_seconds(self) -> float:
        return max(
            0.0,
            self.total_seconds
            - sum(c.total_seconds for c in self.children.values()),
        )

    def child(self, name: str) -> "SummaryNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SummaryNode(name)
        return node


def load_trace(path: "str | Path") -> list[dict]:
    """Parse a trace file; malformed lines (e.g. the torn tail of a
    crashed child process) are skipped, not fatal -- a truncated trace
    is still evidence."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "id" in record:
                records.append(record)
    return records


def summarize_trace(records: list[dict]) -> SummaryNode:
    """Fold the span forest into an aggregate tree rooted at a
    synthetic ``<trace>`` node (traces may have several roots: one per
    analysis attempt, or per benchmark when files are concatenated)."""
    by_id = {record["id"]: record for record in records}
    root = SummaryNode("<trace>")
    aggregate_of: dict[int, SummaryNode] = {}

    def node_for(record: dict) -> SummaryNode:
        known = aggregate_of.get(record["id"])
        if known is not None:
            return known
        parent_record = by_id.get(record["parent"])
        parent_node = root if parent_record is None else node_for(parent_record)
        node = parent_node.child(record["name"])
        aggregate_of[record["id"]] = node
        return node

    for record in records:
        node = node_for(record)
        node.count += 1
        if record.get("type") == "span":
            node.total_seconds += max(
                0.0, record.get("end", 0.0) - record.get("start", 0.0)
            )
    root.count = 1
    root.total_seconds = sum(c.total_seconds for c in root.children.values())
    return root


def render_trace_summary(
    records: list[dict],
    max_depth: int | None = None,
    min_seconds: float = 0.0,
    title: str | None = None,
) -> str:
    """The top-down tree as an aligned table: indented span name,
    count, total and self wall time.  Children sort by total time
    (descending), name-tie-broken, so the expensive path reads first."""
    root = summarize_trace(records)
    rows: list[list[object]] = []

    def emit(node: SummaryNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        ordered = sorted(
            node.children.values(),
            key=lambda child: (-child.total_seconds, child.name),
        )
        for child in ordered:
            if child.total_seconds < min_seconds and child.count == 0:
                continue
            rows.append(
                [
                    "  " * depth + child.name,
                    child.count,
                    f"{child.total_seconds:.6f}",
                    f"{child.self_seconds:.6f}",
                ]
            )
            emit(child, depth + 1)

    emit(root, 0)
    if not rows:
        return "empty trace (no span or event records)"
    table = render_table(
        ["Span", "Count", "Total (s)", "Self (s)"],
        rows,
        title=title or f"Trace summary ({len(records)} records)",
    )
    return table
