"""Trace exploration: aggregate a JSONL trace into a time/count tree.

``python -m repro trace-summary FILE`` renders, top-down, where a run
spent its time: spans with the same name under the same parent path are
aggregated (count, total wall time, self time = total minus children),
and point events show up as count-only rows.  Rendering goes through
:mod:`repro.reporting` so trace tables read like the rest of the
harness output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.reporting import render_table

__all__ = [
    "SummaryNode",
    "collapse_stacks",
    "load_trace",
    "read_trace",
    "render_collapsed",
    "render_hotspots",
    "render_trace_summary",
    "summarize_trace",
]


@dataclass
class SummaryNode:
    """One aggregate row: every span/event named *name* whose parents
    aggregate to the same path."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    children: "dict[str, SummaryNode]" = field(default_factory=dict)

    @property
    def self_seconds(self) -> float:
        return max(
            0.0,
            self.total_seconds
            - sum(c.total_seconds for c in self.children.values()),
        )

    def child(self, name: str) -> "SummaryNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SummaryNode(name)
        return node


def read_trace(path: "str | Path") -> "tuple[list[dict], int]":
    """Parse a trace file into ``(records, malformed)``.

    Malformed lines -- most commonly the torn final line a
    signal-killed worker left mid-write -- are counted, not fatal: a
    truncated trace is still evidence, and the count lets the CLI warn
    instead of silently under-reporting."""
    records = []
    malformed = 0
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if isinstance(record, dict) and "id" in record:
                records.append(record)
            else:
                malformed += 1
    return records, malformed


def load_trace(path: "str | Path") -> list[dict]:
    """:func:`read_trace` without the malformed-line count."""
    return read_trace(path)[0]


def summarize_trace(records: list[dict]) -> SummaryNode:
    """Fold the span forest into an aggregate tree rooted at a
    synthetic ``<trace>`` node (traces may have several roots: one per
    analysis attempt, or per benchmark when files are concatenated)."""
    by_id = {record["id"]: record for record in records}
    root = SummaryNode("<trace>")
    aggregate_of: dict[int, SummaryNode] = {}

    def node_for(record: dict) -> SummaryNode:
        known = aggregate_of.get(record["id"])
        if known is not None:
            return known
        parent_record = by_id.get(record["parent"])
        parent_node = root if parent_record is None else node_for(parent_record)
        node = parent_node.child(record["name"])
        aggregate_of[record["id"]] = node
        return node

    for record in records:
        node = node_for(record)
        node.count += 1
        if record.get("type") == "span":
            node.total_seconds += max(
                0.0, record.get("end", 0.0) - record.get("start", 0.0)
            )
    root.count = 1
    root.total_seconds = sum(c.total_seconds for c in root.children.values())
    return root


def collapse_stacks(records: list[dict]) -> "dict[tuple[str, ...], float]":
    """Fold spans into collapsed-stack form: name-path -> self time.

    Self time is a span's duration minus its direct children's
    durations (clamped at zero: children emitted by a different clock
    resolution may nominally overrun their parent).  Spans whose
    parent never made it into the file -- the unclosed ancestors of a
    torn trace -- root their stack at themselves, so a killed worker's
    partial trace still folds into a valid flamegraph."""
    spans = [
        r for r in records
        if r.get("type") == "span"
        and isinstance(r.get("start"), (int, float))
        and isinstance(r.get("end"), (int, float))
    ]
    by_id = {span["id"]: span for span in spans}
    child_seconds: dict = {}
    for span in spans:
        parent = span.get("parent")
        if parent in by_id:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + max(
                0.0, span["end"] - span["start"]
            )

    stack_memo: dict = {}

    def stack_of(span: dict) -> "tuple[str, ...]":
        known = stack_memo.get(span["id"])
        if known is not None:
            return known
        names: list[str] = []
        seen: set = set()
        current: "dict | None" = span
        while current is not None and current["id"] not in seen:
            seen.add(current["id"])
            names.append(str(current["name"]))
            current = by_id.get(current.get("parent"))
        stack = tuple(reversed(names))
        stack_memo[span["id"]] = stack
        return stack

    folded: "dict[tuple[str, ...], float]" = {}
    for span in spans:
        duration = max(0.0, span["end"] - span["start"])
        self_seconds = max(
            0.0, duration - child_seconds.get(span["id"], 0.0)
        )
        if self_seconds <= 0.0:
            continue
        stack = stack_of(span)
        folded[stack] = folded.get(stack, 0.0) + self_seconds
    return folded


def render_collapsed(records: list[dict]) -> str:
    """The collapsed-stack text format flamegraph tools consume
    (``a;b;c <weight>``), weighted in integer microseconds."""
    folded = collapse_stacks(records)
    lines = []
    for stack in sorted(folded):
        micros = round(folded[stack] * 1e6)
        if micros > 0:
            lines.append(";".join(stack) + f" {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_hotspots(records: list[dict], top: int = 15) -> str:
    """The top-*top* spans by aggregate self time, across all paths:
    the "where is the time actually spent" table a flamegraph answers
    visually."""
    totals: "dict[str, list]" = {}  # name -> [count, total, self]
    trace_seconds = 0.0

    def walk(node: SummaryNode) -> None:
        nonlocal trace_seconds
        for child in node.children.values():
            entry = totals.setdefault(child.name, [0, 0.0, 0.0])
            entry[0] += child.count
            entry[1] += child.total_seconds
            entry[2] += child.self_seconds
            walk(child)

    root = summarize_trace(records)
    walk(root)
    trace_seconds = root.total_seconds
    ranked = sorted(
        totals.items(), key=lambda item: (-item[1][2], item[0])
    )[:top]
    rows = [
        [
            name,
            count,
            f"{self_seconds:.6f}",
            f"{total_seconds:.6f}",
            f"{100.0 * self_seconds / trace_seconds:.1f}%"
            if trace_seconds > 0 else "-",
        ]
        for name, (count, total_seconds, self_seconds) in ranked
    ]
    if not rows:
        return "empty trace (no span records)"
    return render_table(
        ["Span", "Count", "Self (s)", "Total (s)", "Self %"],
        rows,
        title=f"Hotspots (top {len(rows)} by self time)",
    )


def render_trace_summary(
    records: list[dict],
    max_depth: int | None = None,
    min_seconds: float = 0.0,
    title: str | None = None,
) -> str:
    """The top-down tree as an aligned table: indented span name,
    count, total and self wall time.  Children sort by total time
    (descending), name-tie-broken, so the expensive path reads first."""
    root = summarize_trace(records)
    rows: list[list[object]] = []

    def emit(node: SummaryNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        ordered = sorted(
            node.children.values(),
            key=lambda child: (-child.total_seconds, child.name),
        )
        for child in ordered:
            if child.total_seconds < min_seconds and child.count == 0:
                continue
            rows.append(
                [
                    "  " * depth + child.name,
                    child.count,
                    f"{child.total_seconds:.6f}",
                    f"{child.self_seconds:.6f}",
                ]
            )
            emit(child, depth + 1)

    emit(root, 0)
    if not rows:
        return "empty trace (no span or event records)"
    table = render_table(
        ["Span", "Count", "Total (s)", "Self (s)"],
        rows,
        title=title or f"Trace summary ({len(records)} records)",
    )
    return table
