"""Hierarchical tracing spans, written as JSONL.

One :class:`Tracer` owns one output stream and a stack of open spans.
``tracer.span(name, **attrs)`` is a context manager; nesting follows
the dynamic call structure, so a trace reconstructs the engine's
actual execution tree: phases contain procedure activations, which
contain fixpoint runs, which contain loop-synthesis attempts and
entailment queries.

The wire format is one JSON object per line, ``sort_keys`` and compact
separators, so a trace is byte-deterministic given a deterministic
clock (the tests stub the monotonic clock and diff raw bytes):

* ``{"type":"span","id":2,"parent":1,"name":"fixpoint",
  "start":0.25,"end":0.75,"attrs":{"procedure":"main"}}``
* ``{"type":"event","id":3,"parent":2,"name":"entailment.query",
  "t":0.5,"attrs":{"steps":12,"subsumed":true}}``

Children are emitted *before* their parents (a span is written when it
closes), so consumers rebuild the tree from ``parent`` ids rather than
file order; ``parent`` is 0 for roots.

Balance guarantees: a span closed by an escaping exception records the
exception type in ``attrs.error``; :meth:`Tracer.close` force-closes
anything still open (marked ``aborted``), so even a
:class:`~repro.analysis.resilience.BudgetExhausted` that aborts the
engine mid-phase leaves a trace in which every opened span has exactly
one record.

The disabled path is :data:`NULL_TRACER`: ``enabled`` is False and
every method is a no-op, so instrumentation sites cost one attribute
check (``if tracer.enabled:``) when tracing is off -- the overhead
budget :mod:`repro.obs.overhead` asserts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One open span; a context manager handed out by
    :meth:`Tracer.span`.  Attributes may be added while the span is
    open with ``span["key"] = value``."""

    __slots__ = ("_tracer", "name", "attrs", "id", "parent", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = 0
        self.parent = 0
        self.start = 0.0

    def __setitem__(self, key: str, value) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._begin_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self._tracer._end_span(self)
        return False


class _NullSpan:
    """The no-op span: supports the same surface as :class:`Span`."""

    __slots__ = ()

    def __setitem__(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: every operation is a no-op.  Hot paths check
    ``enabled`` before even building attribute dicts."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Writes spans and point events to *sink* (any object with
    ``write``) as JSONL.  ``clock`` is injectable -- production uses the
    monotonic :func:`time.perf_counter`, determinism tests a stub."""

    enabled = True

    def __init__(self, sink, clock=time.perf_counter, owns_sink: bool = False):
        self._sink = sink
        self._clock = clock
        self._owns_sink = owns_sink
        self._next_id = 1
        self._stack: list[Span] = []

    @classmethod
    def to_path(cls, path: "str | Path", clock=time.perf_counter) -> "Tracer":
        """A tracer writing to *path* (parent directories created);
        :meth:`close` closes the file.  Line-buffered, so a process
        killed mid-run (the batch runner's isolation timeout, a
        segfault) leaves every completed record on disk -- a torn trace
        is still evidence."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        return cls(path.open("w", buffering=1), clock=clock, owns_sink=True)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """A zero-duration point event under the current span."""
        record = {
            "type": "event",
            "id": self._take_id(),
            "parent": self._stack[-1].id if self._stack else 0,
            "name": name,
            "t": round(self._clock(), 9),
            "attrs": attrs,
        }
        self._write(record)

    def close(self) -> None:
        """Force-close every still-open span (marked ``aborted``) and,
        when the tracer owns its sink, close the underlying file.  Safe
        to call twice."""
        while self._stack:
            span = self._stack[-1]
            span.attrs.setdefault("aborted", True)
            self._end_span(span)
        if self._owns_sink and not self._sink.closed:
            self._sink.close()
        elif hasattr(self._sink, "flush") and not getattr(
            self._sink, "closed", False
        ):
            self._sink.flush()

    # ------------------------------------------------------------------
    def _take_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _begin_span(self, span: Span) -> None:
        span.id = self._take_id()
        span.parent = self._stack[-1].id if self._stack else 0
        span.start = self._clock()
        self._stack.append(span)

    def _end_span(self, span: Span) -> None:
        end = self._clock()
        # Pop down to (and including) *span*: children leaked open by a
        # non-local exit are closed first, marked aborted, so the trace
        # stays balanced whatever path unwound the stack.
        while self._stack:
            top = self._stack.pop()
            if top is not span:
                top.attrs.setdefault("aborted", True)
            self._emit_span(top, end)
            if top is span:
                return
        # Already closed (e.g. close() raced the context manager exit).

    def _emit_span(self, span: Span, end: float) -> None:
        self._write(
            {
                "type": "span",
                "id": span.id,
                "parent": span.parent,
                "name": span.name,
                "start": round(span.start, 9),
                "end": round(end, 9),
                "attrs": span.attrs,
            }
        )

    def _write(self, record: dict) -> None:
        self._sink.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
