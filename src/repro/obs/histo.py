"""Rolling histograms: fixed log-spaced buckets, mergeable anywhere.

The PR-3 registry kept count/sum/min/max per histogram -- enough for a
time tree, useless for latency questions ("what is the p99 job
latency right now?") and *wrong* under aggregation (percentiles of
percentiles are meaningless).  This module fixes both with the
standard trick every production metrics stack uses: a **fixed global
bucket layout** shared by every process, so

* two histograms merge by summing bucket counts -- across workers,
  across generations, across batch children, across JSON round-trips;
* any quantile is recoverable at read time (to within one bucket's
  resolution) from the merged counts.

Layout: 4 buckets per decade from 1e-7 to 1e7 (factor ~1.78 between
bounds), chosen to cover everything we time (sub-microsecond store
lookups to multi-minute analyses) *and* everything we count
(entailment match steps per query).  Values at or below the lowest
bound land in bucket 0; values above the highest land in the overflow
bucket.  Exact ``min``/``max`` are carried alongside, so quantile
estimates are clamped to the truly observed range and a
single-sample histogram reports that sample exactly.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["BUCKET_BOUNDS", "Histogram", "QUANTILES"]

#: Upper bounds (inclusive, Prometheus ``le`` semantics) of every
#: bucket except the overflow bucket.  **Frozen**: changing this list
#: changes the wire format and breaks cross-process merging with older
#: snapshots, so treat it like a schema version.
BUCKET_BOUNDS: "tuple[float, ...]" = tuple(
    10.0 ** (e / 4.0) for e in range(-28, 29)
)

#: Index of the overflow (+Inf) bucket.
OVERFLOW = len(BUCKET_BOUNDS)

#: The quantiles every flattened histogram exports, as (q, suffix).
QUANTILES: "tuple[tuple[float, str], ...]" = (
    (0.5, "p50"),
    (0.9, "p90"),
    (0.99, "p99"),
)


def bucket_index(value: float) -> int:
    """The bucket holding *value*: smallest i with value <= bounds[i]
    (the overflow bucket above the top bound)."""
    if value <= BUCKET_BOUNDS[0]:
        return 0
    return bisect_left(BUCKET_BOUNDS, value)


class Histogram:
    """One rolling histogram: sparse bucket counts + exact extrema.

    Sparse because a typical latency distribution touches a handful of
    the 58 buckets; a dict of the touched ones keeps snapshots small
    on the supervisor<->worker pipes.
    """

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0
        #: bucket index -> sample count (only touched buckets present).
        self.buckets: "dict[int, int]" = {}

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.sum += value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Fold *other* in: bucket-wise sums, extrema of extrema --
        exact, associative, order-independent."""
        if other.count == 0:
            return
        if self.count == 0:
            self.min = other.min
            self.max = other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.sum += other.sum
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 < q <= 1) from bucket counts:
        walk the cumulative distribution to the target rank, then
        interpolate geometrically inside the bucket (the buckets are
        log-spaced, so geometric interpolation is the unbiased choice).
        Clamped to the exact observed ``[min, max]``."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            bucket_count = self.buckets[index]
            cumulative += bucket_count
            if cumulative < target:
                continue
            lo = self.min if index == 0 else BUCKET_BOUNDS[index - 1]
            hi = self.max if index >= OVERFLOW else BUCKET_BOUNDS[index]
            fraction = (target - (cumulative - bucket_count)) / bucket_count
            if lo > 0 and hi > lo:
                estimate = lo * (hi / lo) ** fraction
            else:
                estimate = lo + (hi - lo) * fraction
            return min(self.max, max(self.min, estimate))
        return self.max

    # ------------------------------------------------------------------
    def __getitem__(self, key: str):
        """Dict-style access to the scalar components (back-compat
        with the PR-3 plain-dict histograms)."""
        if key in ("count", "sum", "min", "max"):
            return getattr(self, key)
        raise KeyError(key)

    def to_dict(self) -> dict:
        """JSON-safe wire form (bucket keys become strings)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): c for i, c in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Decode :meth:`to_dict` output.  A legacy count/sum/min/max
        dict (no ``buckets``) is accepted by crediting the whole count
        to the mean's bucket -- lossy, but mergeable."""
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.sum = float(data.get("sum", 0.0))
        hist.min = float(data.get("min", 0.0))
        hist.max = float(data.get("max", 0.0))
        buckets = data.get("buckets")
        if buckets:
            hist.buckets = {int(i): int(c) for i, c in buckets.items()}
        elif hist.count:
            hist.buckets = {bucket_index(hist.sum / hist.count): hist.count}
        return hist

    @classmethod
    def from_flat(cls, flat: dict, base: str) -> "Histogram":
        """Reconstruct from the flattened-stats form
        (``base.count`` / ``base.sum`` / ``base.min`` / ``base.max`` /
        ``base.bucket.<i>`` keys inside *flat*)."""
        hist = cls()
        hist.count = int(flat.get(f"{base}.count", 0))
        hist.sum = float(flat.get(f"{base}.sum", 0.0))
        hist.min = float(flat.get(f"{base}.min", 0.0))
        hist.max = float(flat.get(f"{base}.max", 0.0))
        prefix = f"{base}.bucket."
        for name, value in flat.items():
            if name.startswith(prefix):
                tail = name[len(prefix):]
                if tail.isdigit():
                    hist.buckets[int(tail)] = int(value)
        return hist
