"""Named counters, gauges and histograms -- the canonical metric schema.

This registry replaces the ad-hoc ``_Stats`` dataclass the engine used
to keep and the undocumented, inconsistently-named keys it leaked into
``AnalysisResult.stats``.  Every metric the pipeline records is named
here; batch drivers, the bench JSON and CI treat any name outside this
table as a schema bug (``Metrics.check_schema``).

Canonical metric names
======================

======================================  =========  ==========================================
name                                    kind       meaning
======================================  =========  ==========================================
``engine.states``                       counter    worklist states processed
``engine.instructions``                 counter    abstract instruction executions
``engine.procedures.analyzed``          counter    procedure bodies analyzed (incl. re-runs)
``engine.summaries.reused``             counter    call sites answered from a tabulated summary
``engine.invariants.synthesized``       counter    loop/procedure invariants hypothesized
``engine.invariants.failed``            counter    invariant hypotheses that failed to verify
``engine.loop.back_edges``              counter    back-edge arrivals at loop headers
``engine.loop.converged``               counter    back-edge states subsumed by an invariant
``engine.recursion.sccs``               counter    recursive SCCs put through §5.2.1
``engine.recursion.verify_rounds``      counter    contract-verification Kleene rounds
``engine.worklist.pushes``              counter    states pushed onto the fixpoint worklist
``engine.worklist.revisits``            counter    worklist pops of an already-seen block
``engine.dedup.exact_drops``            counter    states dropped by exact canonical key, O(1)
``engine.dedup.checks``                 counter    ``subsumes`` calls issued by state-set dedup
``engine.dedup.dropped``                counter    states removed as subsumed during dedup
``engine.dedup.bucket_skips``           counter    pairs skipped by signature-bucket pre-filter
``entailment.queries``                  counter    ``subsumes`` queries answered
``entailment.subsumed``                 counter    queries that found a witness
``entailment.rejected``                 counter    queries that found none
``entailment.match_steps``              counter    backtracking steps consumed (summed)
``entailment.sig_rejects``              counter    queries rejected by the signature pre-filter
``entailment.step_limit_hits``          counter    queries cut off at the match-step cap
``entailment.cache.hits``               counter    queries answered from the entailment cache
``entailment.cache.misses``             counter    cacheable queries that ran the full search
``entailment.cache.evictions``          counter    LRU evictions from the entailment cache
``entailment.lemma.attempts``           counter    lemma synthesize+verify attempts
``entailment.lemma.verified``           counter    lemma candidates that passed verification
``entailment.lemma.refuted``            counter    lemma candidates refuted (negative-cached)
``entailment.lemma.cache.hits``         counter    lemma pair-key cache hits (either polarity)
``entailment.lemma.cache.misses``       counter    lemma pair-key cache misses
``entailment.lemma.applied``            counter    queries whose witness used >= 1 lemma
``unfold.root``                         counter    Figure-6 unfolds from the root
``unfold.interior``                     counter    Figure-6 bottom-up (interior) unfolds
``unfold.placements.exact``             counter    truncation points placed exactly at a sub-root
``unfold.placements.below``             counter    truncation points pushed below a sub-structure
``unfold.cases``                        counter    case-split states produced by unfolding
``unfold.cache.hits``                   counter    unfolds replayed from the unfold memo
``unfold.cache.misses``                 counter    keyable unfolds that ran the case analysis
``fold.calls``                          counter    ``fold_state`` invocations
``fold.absorbed``                       counter    bottom-up absorptions applied
``fold.wrapped``                        counter    top-down wraps applied
``fold.cache.hits``                     counter    identity folds skipped via the fold memo
``fold.cache.misses``                   counter    keyable folds that ran the rule search
``synthesis.terms``                     counter    term trees put through recursion synthesis
``synthesis.segmentations_tried``       counter    candidate segmentations examined
``synthesis.succeeded``                 counter    terms that yielded a predicate
``synthesis.failed``                    counter    terms no segmentation explained
``phase.pointer.seconds``               gauge      pointer-analysis pre-pass wall time
``phase.slicing.seconds``               gauge      slicing pre-pass wall time
``phase.shape.seconds``                 gauge      shape-analysis wall time (all attempts)
``phase.pointer.seconds.dist``          histogram  per-run pointer-phase latency distribution
``phase.slicing.seconds.dist``          histogram  per-run slicing-phase latency distribution
``phase.shape.seconds.dist``            histogram  per-run shape-phase latency distribution
``entailment.match_steps.dist``         histogram  match steps *per query* (vs the summed counter)
``entailment.lemma.attempts.dist``      histogram  synthesis attempts *per query* (lemmas active)
``analysis.attempts``                   gauge      engine attempts (1 unless escalation fired)
======================================  =========  ==========================================

Histogram-kind metrics are backed by :class:`repro.obs.histo.Histogram`
(fixed log-spaced buckets), so they merge bucket-wise across
processes and export p50/p90/p99 at read time.  In flattened stats a
histogram ``h`` appears as ``h.count`` / ``h.sum`` / ``h.min`` /
``h.max`` / ``h.p50`` / ``h.p90`` / ``h.p99`` plus sparse
``h.bucket.<i>`` keys; :func:`histogram_flat_base` recognizes those
derived names and :func:`is_schema_name` accepts them as canonical.

Back-compat: the seed's ``AnalysisResult.stats`` keys (``states``,
``instructions``, ``invariants``, ``summaries_reused``,
``procedures``) remain available as aliases of their canonical
counterparts -- :data:`LEGACY_STAT_ALIASES`, applied by
:func:`with_legacy_aliases` in ``AnalysisResult.to_record``.
"""

from __future__ import annotations

from repro.obs.histo import QUANTILES, Histogram

__all__ = [
    "LEGACY_STAT_ALIASES",
    "METRIC_SCHEMA",
    "Metrics",
    "NULL_METRICS",
    "NullMetrics",
    "histogram_flat_base",
    "is_schema_name",
    "merge_stat_dicts",
    "with_legacy_aliases",
]

#: name -> kind ("counter" | "gauge" | "histogram") for every canonical
#: metric; the table rendered in the module docstring, as data.
METRIC_SCHEMA: dict[str, str] = {
    "engine.states": "counter",
    "engine.instructions": "counter",
    "engine.procedures.analyzed": "counter",
    "engine.summaries.reused": "counter",
    "engine.invariants.synthesized": "counter",
    "engine.invariants.failed": "counter",
    "engine.loop.back_edges": "counter",
    "engine.loop.converged": "counter",
    "engine.recursion.sccs": "counter",
    "engine.recursion.verify_rounds": "counter",
    "engine.worklist.pushes": "counter",
    "engine.worklist.revisits": "counter",
    "engine.dedup.exact_drops": "counter",
    "engine.dedup.checks": "counter",
    "engine.dedup.dropped": "counter",
    "engine.dedup.bucket_skips": "counter",
    "entailment.queries": "counter",
    "entailment.subsumed": "counter",
    "entailment.rejected": "counter",
    "entailment.match_steps": "counter",
    "entailment.sig_rejects": "counter",
    "entailment.step_limit_hits": "counter",
    "entailment.cache.hits": "counter",
    "entailment.cache.misses": "counter",
    "entailment.cache.evictions": "counter",
    "entailment.lemma.attempts": "counter",
    "entailment.lemma.verified": "counter",
    "entailment.lemma.refuted": "counter",
    "entailment.lemma.cache.hits": "counter",
    "entailment.lemma.cache.misses": "counter",
    "entailment.lemma.applied": "counter",
    "unfold.root": "counter",
    "unfold.interior": "counter",
    "unfold.placements.exact": "counter",
    "unfold.placements.below": "counter",
    "unfold.cases": "counter",
    "unfold.cache.hits": "counter",
    "unfold.cache.misses": "counter",
    "fold.calls": "counter",
    "fold.absorbed": "counter",
    "fold.wrapped": "counter",
    "fold.cache.hits": "counter",
    "fold.cache.misses": "counter",
    "synthesis.terms": "counter",
    "synthesis.segmentations_tried": "counter",
    "synthesis.succeeded": "counter",
    "synthesis.failed": "counter",
    "phase.pointer.seconds": "gauge",
    "phase.slicing.seconds": "gauge",
    "phase.shape.seconds": "gauge",
    "phase.pointer.seconds.dist": "histogram",
    "phase.slicing.seconds.dist": "histogram",
    "phase.shape.seconds.dist": "histogram",
    "entailment.match_steps.dist": "histogram",
    "entailment.lemma.attempts.dist": "histogram",
    "analysis.attempts": "gauge",
    # serve.* -- recorded by the analysis *service* (repro.serve), not
    # by the engine: job-queue accounting, worker supervision and the
    # overload-degradation ladder.  They share the registry so batch
    # aggregation, trace-summary and the schema check treat service
    # telemetry exactly like engine telemetry.
    "serve.jobs.submitted": "counter",
    "serve.jobs.completed": "counter",
    "serve.jobs.rejected": "counter",
    "serve.jobs.retried": "counter",
    "serve.jobs.crashed": "counter",
    "serve.jobs.timeout": "counter",
    "serve.jobs.degraded": "counter",
    "serve.workers.spawned": "counter",
    "serve.workers.restarts": "counter",
    "serve.workers.warmed": "counter",
    "serve.degrade.entered": "counter",
    "serve.degrade.exited": "counter",
    "serve.queue.depth": "gauge",
    "serve.queue.peak": "gauge",
    "serve.state": "gauge",
    "serve.job.seconds": "histogram",
    "serve.job.queue_wait_seconds": "histogram",
    "serve.stats.requests": "counter",
    # store.* -- the durable predicate/summary store (repro.store).
    # ``store.invalid`` counts entries rejected by validation-on-read
    # (checksum, schema, decode, self-derivation, re-application);
    # every rejection also surfaces as a ``store-invalid`` diagnostic.
    "store.lookups": "counter",
    "store.hits": "counter",
    "store.misses": "counter",
    "store.writes": "counter",
    "store.invalid": "counter",
    "store.io_errors": "counter",
    "store.compactions": "counter",
    "store.preds.installed": "counter",
    "store.index.torn": "counter",
    "store.entries": "gauge",
    "store.lookup.seconds": "histogram",
    # incr.* -- incremental re-analysis (repro.ir.digest +
    # repro.store.fixpoint).  ``incr.procedures.reused`` counts
    # procedures whose entire fixpoint table was replayed from a
    # cone-digest-keyed bundle; ``incr.procedures.invalidated`` counts
    # procedures that had to be re-analyzed (their callee cone changed,
    # or their bundle failed validation-on-read).
    "incr.fixpoint.lookups": "counter",
    "incr.fixpoint.hits": "counter",
    "incr.fixpoint.misses": "counter",
    "incr.fixpoint.writes": "counter",
    "incr.procedures.reused": "counter",
    "incr.procedures.invalidated": "counter",
    "incr.summaries.replayed": "counter",
    "incr.tables.injected": "counter",
    "incr.cone.size": "gauge",
    "incr.cone.depth": "gauge",
    "incr.table.decode.seconds": "histogram",
}

#: Legacy ``AnalysisResult.stats`` key -> canonical metric name.
LEGACY_STAT_ALIASES: dict[str, str] = {
    "states": "engine.states",
    "instructions": "engine.instructions",
    "invariants": "engine.invariants.synthesized",
    "summaries_reused": "engine.summaries.reused",
    "procedures": "engine.procedures.analyzed",
}


def with_legacy_aliases(stats: dict) -> dict:
    """Return *stats* plus the legacy keys mirroring their canonical
    counterparts (idempotent; missing canonical keys alias to 0 so old
    consumers keep indexing without KeyError)."""
    out = dict(stats)
    for legacy, canonical in LEGACY_STAT_ALIASES.items():
        out[legacy] = out.get(canonical, out.get(legacy, 0))
    return out


#: Scalar suffixes a flattened histogram exports (besides buckets).
_HISTO_SUFFIXES = ("count", "sum", "min", "max") + tuple(
    suffix for _, suffix in QUANTILES
)


def histogram_flat_base(name: str) -> "str | None":
    """The schema histogram *name* is a flattened component of, or
    None.  ``serve.job.seconds.p99`` -> ``serve.job.seconds``;
    ``serve.job.seconds.bucket.31`` -> ``serve.job.seconds``."""
    base, _, suffix = name.rpartition(".")
    if suffix in _HISTO_SUFFIXES and METRIC_SCHEMA.get(base) == "histogram":
        return base
    if suffix.isdigit():
        head, _, word = base.rpartition(".")
        if word == "bucket" and METRIC_SCHEMA.get(head) == "histogram":
            return head
    return None


def is_schema_name(name: str) -> bool:
    """True when *name* is canonical: either in the schema table or a
    flattened component of a schema histogram."""
    return name in METRIC_SCHEMA or histogram_flat_base(name) is not None


def merge_stat_dicts(into: dict, stats: dict) -> dict:
    """Accumulate one run's canonical stats into *into* (in place).

    Only canonical (dotted) names participate -- legacy aliases would
    double-count; counters sum, ``.seconds`` gauges sum into totals,
    other gauges keep the max.  Flattened histogram components merge
    like the underlying histograms: counts, sums and bucket counts
    sum, ``.min``/``.max`` take the extremum, and the percentile keys
    are *recomputed* from the merged buckets (a sum -- or max -- of
    p99s is not a p99 of anything).  Used by the batch runner to
    aggregate metrics per outcome across isolated child processes."""
    touched_histograms = set()
    for name, value in stats.items():
        if "." not in name or not isinstance(value, (int, float)):
            continue
        base = histogram_flat_base(name)
        if base is not None:
            suffix = name[len(base) + 1:]
            if suffix == "min":
                into[name] = min(into[name], value) if name in into else value
            elif suffix == "max":
                into[name] = max(into.get(name, value), value)
            elif suffix.startswith("p"):
                touched_histograms.add(base)  # recomputed below
            else:  # count, sum, bucket.<i>
                into[name] = round(into.get(name, 0) + value, 9)
                touched_histograms.add(base)
            continue
        if METRIC_SCHEMA.get(name) == "gauge" and not name.endswith(".seconds"):
            into[name] = max(into.get(name, 0), value)
        else:
            into[name] = round(into.get(name, 0) + value, 9)
    for base in touched_histograms:
        merged = Histogram.from_flat(into, base)
        for q, suffix in QUANTILES:
            into[f"{base}.{suffix}"] = round(merged.quantile(q), 6)
    return into


class Metrics:
    """A registry of named counters, gauges and histograms.

    Deliberately tiny: incrementing a counter is one dict operation, so
    the always-on engine counters (the old ``_Stats`` fields) cost what
    they always did.
    """

    enabled = True

    def __init__(self):
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the rolling histogram *name*."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------
    def merge(self, other: "Metrics") -> None:
        """Fold *other* into this registry (counters sum, histograms
        merge bucket-wise; gauges last-write-wins)."""
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(hist)

    def check_schema(self) -> list[str]:
        """Names recorded outside :data:`METRIC_SCHEMA` (a bug)."""
        recorded = set(self.counters) | set(self.gauges) | set(self.histograms)
        return sorted(recorded - set(METRIC_SCHEMA))

    def to_dict(self) -> dict:
        """One flat, sorted, JSON-ready dict: counters and gauges by
        name, histograms flattened to ``name.count`` / ``.sum`` /
        ``.min`` / ``.max`` / ``.p50`` / ``.p90`` / ``.p99`` plus the
        sparse ``name.bucket.<i>`` counts that make the flattened form
        re-mergeable (:func:`merge_stat_dicts`)."""
        out: dict = {}
        out.update(self.counters)
        for name, value in self.gauges.items():
            out[name] = round(value, 6) if isinstance(value, float) else value
        for name, hist in self.histograms.items():
            out[f"{name}.count"] = hist.count
            out[f"{name}.sum"] = round(hist.sum, 6)
            out[f"{name}.min"] = round(hist.min, 6)
            out[f"{name}.max"] = round(hist.max, 6)
            for q, suffix in QUANTILES:
                out[f"{name}.{suffix}"] = round(hist.quantile(q), 6)
            for index, count in hist.buckets.items():
                out[f"{name}.bucket.{index}"] = count
        return dict(sorted(out.items()))


class NullMetrics:
    """Disabled registry: every recording method is a no-op."""

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def to_dict(self) -> dict:
        return {}


NULL_METRICS = NullMetrics()
