"""Disabled-tracer overhead micro-benchmark (CI-budgeted).

Instrumenting the engine costs something even when tracing is off: one
``enabled`` attribute check (and branch) per instrumentation site.
This module puts a number on that cost and holds it to a budget:

1. measure the per-check cost of the guard pattern
   (``if tracer.enabled: ...``) against the null tracer, baselined
   against an empty loop of the same shape;
2. run the Table 4 suite (in-process, tracing disabled) and count how
   many guard checks the run actually executed, derived from the
   canonical metrics the run records;
3. report ``overhead_pct`` = guarded-check time / analysis wall time.

``python -m repro.obs.overhead`` prints the JSON verdict and exits 1
when the overhead exceeds :data:`BUDGET_PCT` -- the CI step that keeps
instrumentation honest as spans accrete on hot paths.
"""

from __future__ import annotations

import json
import time

from repro.obs.tracer import NULL_TRACER

__all__ = ["BUDGET_PCT", "estimate_overhead", "main", "measure_guard_ns"]

#: Maximum tolerated disabled-tracer overhead on the Table 4 suite, in
#: percent of analysis wall time (the acceptance bound of the issue).
BUDGET_PCT = 3.0

#: Guard checks executed per recorded unit of work.  The engine guards
#: roughly: two sites per worklist state (span helpers on the pop path
#: are avoided, but procedure/fixpoint wrappers and back-edge handling
#: amortize to about this), three per entailment query (metrics +
#: event + the match-step histogram observe that rides inside the same
#: guard), one per unfold/fold/synthesis bookkeeping hit, and one per
#: durable-store lookup (the ``store.lookup.seconds`` timing observe;
#: a null-metrics method call when metrics are off).  Deliberately
#: over-counted -- the budget should survive a pessimistic estimate.
_GUARDS_PER = {
    "engine.states": 2.0,
    "entailment.queries": 3.0,
    "unfold.root": 1.0,
    "unfold.interior": 1.0,
    "fold.calls": 1.0,
    "synthesis.terms": 2.0,
    "engine.loop.back_edges": 2.0,
    "engine.procedures.analyzed": 2.0,
    "store.lookups": 1.0,
}


def measure_guard_ns(iterations: int = 1_000_000) -> float:
    """Per-check cost (ns) of ``if tracer.enabled:`` on the null
    tracer, with an empty loop of the same shape subtracted out."""
    tracer = NULL_TRACER
    acc = 0
    start = time.perf_counter()
    for _ in range(iterations):
        if tracer.enabled:
            acc += 1
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iterations):
        acc += 0
    baseline = time.perf_counter() - start
    return max(0.1, (guarded - baseline) / iterations * 1e9)


def estimate_overhead(
    benchmarks: "list[str] | None" = None,
    guard_iterations: int = 1_000_000,
) -> dict:
    """Run *benchmarks* (default: the Table 4 suite) with tracing
    disabled and estimate the guard overhead.  Returns the verdict
    record the CI step prints."""
    from repro.analysis import ShapeAnalysis
    from repro.benchsuite import TABLE4_PROGRAMS

    programs = TABLE4_PROGRAMS()
    names = benchmarks if benchmarks is not None else sorted(programs)
    guard_ns = measure_guard_ns(guard_iterations)
    total_seconds = 0.0
    guard_checks = 0.0
    per_benchmark = {}
    for name in names:
        result = ShapeAnalysis(programs[name], name=name, mode="degrade").run()
        total_seconds += result.total_seconds
        checks = sum(
            weight * result.stats.get(metric, 0)
            for metric, weight in _GUARDS_PER.items()
        )
        guard_checks += checks
        per_benchmark[name] = {
            "seconds": round(result.total_seconds, 6),
            "guard_checks": int(checks),
            "outcome": result.outcome,
        }
    guard_seconds = guard_checks * guard_ns / 1e9
    overhead_pct = (
        100.0 * guard_seconds / total_seconds if total_seconds > 0 else 0.0
    )
    return {
        "guard_ns_per_check": round(guard_ns, 2),
        "guard_checks": int(guard_checks),
        "guard_seconds": round(guard_seconds, 6),
        "suite_seconds": round(total_seconds, 6),
        "overhead_pct": round(overhead_pct, 4),
        "budget_pct": BUDGET_PCT,
        "ok": overhead_pct < BUDGET_PCT,
        "benchmarks": per_benchmark,
    }


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.overhead",
        description="disabled-tracer overhead micro-benchmark",
    )
    parser.add_argument(
        "benchmarks", nargs="*", help="Table 4 benchmarks (default: all)"
    )
    parser.add_argument(
        "--budget", type=float, default=BUDGET_PCT, metavar="PCT",
        help=f"failure threshold in percent (default {BUDGET_PCT})",
    )
    args = parser.parse_args(argv)
    verdict = estimate_overhead(args.benchmarks or None)
    verdict["budget_pct"] = args.budget
    verdict["ok"] = verdict["overhead_pct"] < args.budget
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
