"""Metric snapshots: registry <-> JSON wire form, plus expositions.

A *snapshot* is the JSON-safe image of one :class:`Metrics` registry:

    {"counters": {...}, "gauges": {...},
     "histograms": {name: Histogram.to_dict(), ...}}

Unlike the flattened ``Metrics.to_dict`` (which is for stats files
and humans), the snapshot form round-trips losslessly and merges
exactly: workers attach one to every result line they write to the
supervisor, the supervisor keeps the latest per worker generation,
and the ``stats`` op merges any set of them into a single registry --
the cross-process aggregation path behind ``python -m repro stats``.

:func:`render_prometheus` is the text exposition for scrape-style
consumers: counters as ``_total``, histograms as cumulative
``_bucket{le=...}`` series -- standard shapes, zero dependencies.
"""

from __future__ import annotations

from repro.obs.histo import BUCKET_BOUNDS, Histogram
from repro.obs.metrics import Metrics

__all__ = [
    "merge_snapshot",
    "render_prometheus",
    "restore",
    "snapshot",
]


def snapshot(metrics: Metrics) -> dict:
    """The lossless JSON-safe image of *metrics*."""
    return {
        "counters": dict(metrics.counters),
        "gauges": {
            name: round(value, 9) if isinstance(value, float) else value
            for name, value in metrics.gauges.items()
        },
        "histograms": {
            name: hist.to_dict() for name, hist in metrics.histograms.items()
        },
    }


def restore(data: "dict | None") -> Metrics:
    """Decode a snapshot back into a fresh registry (tolerant of
    missing sections -- a torn or legacy snapshot yields what it
    carries, never an exception)."""
    metrics = Metrics()
    if not isinstance(data, dict):
        return metrics
    counters = data.get("counters")
    if isinstance(counters, dict):
        for name, value in counters.items():
            if isinstance(value, (int, float)):
                metrics.counters[name] = int(value)
    gauges = data.get("gauges")
    if isinstance(gauges, dict):
        for name, value in gauges.items():
            if isinstance(value, (int, float)):
                metrics.gauges[name] = value
    histograms = data.get("histograms")
    if isinstance(histograms, dict):
        for name, hist in histograms.items():
            if isinstance(hist, dict):
                metrics.histograms[name] = Histogram.from_dict(hist)
    return metrics


def merge_snapshot(metrics: Metrics, data: "dict | None") -> Metrics:
    """Fold one snapshot into *metrics* (in place; returns it)."""
    metrics.merge(restore(data))
    return metrics


# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_value(value) -> str:
    if isinstance(value, float):
        return repr(round(value, 9))
    return str(value)


def render_prometheus(metrics: Metrics) -> str:
    """Prometheus-style text exposition of one registry.

    Counters render as ``<name>_total``, gauges bare, histograms as
    the cumulative ``_bucket{le="..."}`` / ``_sum`` / ``_count``
    triple over the fixed log-spaced bounds (only buckets up to the
    highest touched one, plus ``+Inf``, are emitted -- 58 series per
    histogram would be noise)."""
    lines: list[str] = []
    for name in sorted(metrics.counters):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom}_total {_prom_value(metrics.counters[name])}")
    for name in sorted(metrics.gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(metrics.gauges[name])}")
    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        top = max(hist.buckets) if hist.buckets else -1
        for index in range(min(top + 1, len(BUCKET_BOUNDS))):
            cumulative += hist.buckets.get(index, 0)
            bound = repr(round(BUCKET_BOUNDS[index], 10))
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{prom}_sum {_prom_value(hist.sum)}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")
