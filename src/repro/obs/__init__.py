"""Observability: structured tracing spans and a metrics registry.

The engine is a five-phase pipeline (pointer analysis, slicing,
symbolic execution, recursion synthesis, fold/unfold entailment) whose
behavior on a slow or failing benchmark used to be visible only in a
debugger.  This package makes a run legible:

* :mod:`repro.obs.tracer` -- a :class:`Tracer` emitting hierarchical
  spans (start/end, wall time, attributes) as JSONL, with a
  :data:`NULL_TRACER` fast path whose only cost on a hot path is one
  ``enabled`` attribute check;
* :mod:`repro.obs.metrics` -- a :class:`Metrics` registry of named
  counters / gauges / histograms with the canonical metric-name schema
  (and the back-compat aliases for the old ad-hoc ``_Stats`` keys);
* :mod:`repro.obs.summary` -- the ``trace-summary`` tree builder and
  renderer behind ``python -m repro trace-summary FILE``;
* :mod:`repro.obs.overhead` -- the disabled-tracer overhead
  micro-benchmark CI holds to a < 3% budget.

Deep modules (entailment, unfold, fold, synthesis) cannot be handed a
tracer through every call site, so the *active* tracer and metrics
registry are module-level here -- ``obs.TRACER`` / ``obs.METRICS`` --
and :func:`activate` swaps them in for the duration of one analysis
run.  Outside a run both are the null implementations, so importing
this module never changes behavior and unit tests that call
``subsumes`` directly pay only a no-op method call.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.histo import BUCKET_BOUNDS, Histogram
from repro.obs.metrics import (
    LEGACY_STAT_ALIASES,
    METRIC_SCHEMA,
    Metrics,
    NULL_METRICS,
    NullMetrics,
    histogram_flat_base,
    is_schema_name,
    merge_stat_dicts,
    with_legacy_aliases,
)
from repro.obs.snapshot import (
    merge_snapshot,
    render_prometheus,
    restore,
    snapshot,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Histogram",
    "LEGACY_STAT_ALIASES",
    "METRIC_SCHEMA",
    "METRICS",
    "Metrics",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "TRACER",
    "Tracer",
    "activate",
    "histogram_flat_base",
    "is_schema_name",
    "merge_snapshot",
    "merge_stat_dicts",
    "render_prometheus",
    "restore",
    "snapshot",
    "with_legacy_aliases",
]

#: The active tracer.  Hot paths guard with ``if obs.TRACER.enabled:``;
#: the null tracer makes that one attribute load plus one branch.
TRACER: "Tracer | NullTracer" = NULL_TRACER

#: The active metrics registry (null outside :func:`activate`).
METRICS: "Metrics | NullMetrics" = NULL_METRICS


@contextmanager
def activate(tracer=None, metrics=None):
    """Install *tracer* / *metrics* as the active instruments for the
    duration of the block (restored on exit, exception or not).

    ``None`` leaves the corresponding instrument untouched, so a nested
    activation may swap only one of the two.
    """
    global TRACER, METRICS
    saved = (TRACER, METRICS)
    if tracer is not None:
        TRACER = tracer
    if metrics is not None:
        METRICS = metrics
    try:
        yield
    finally:
        TRACER, METRICS = saved
