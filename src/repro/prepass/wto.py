"""Weak topological ordering of a procedure CFG (Bourdoncle 1993).

A weak topological order (WTO) arranges the instructions of a CFG into
a hierarchy of nested *components*: every strongly connected subgraph
becomes a component with a distinguished *head*, and the component's
body is itself recursively decomposed.  Flattening the hierarchy gives
a linearization in which every edge either goes forward or returns to
the head of an enclosing component.  Driving the fixpoint worklist in
this order stabilizes inner loops before their exits are released,
which is the classic cure for the FIFO worklist's habit of
re-propagating loop bodies against half-baked invariants.

The construction here follows Bourdoncle's recursive-strategy scheme,
implemented with an *iterative* Tarjan SCC pass (sliced procedures can
still contain long straight-line runs that would blow Python's
recursion limit):

1. Run Tarjan over the subgraph induced by the candidate node set,
   starting from its entry points.  Tarjan emits SCCs in reverse
   topological order; reversing yields a topological order of the
   condensation.
2. A trivial SCC (single node, no self-loop) becomes a plain element.
3. A nontrivial SCC becomes a component.  Its head is the SCC's first
   DFS-visited node -- for reducible flow this is the natural-loop
   header; for irreducible flow (gotos into loops) it is simply the
   first entry the search reached, which is still a sound choice: any
   head yields a correct WTO, only convergence speed differs.
4. The component body is ``scc - {head}``, decomposed recursively with
   the head's in-SCC successors as entries.

Everything is deterministic: successor tuples come straight from the
instruction encoding and all tie-breaks are positional, so the same
procedure always yields the same WTO (the scheduling differential in
``perf/bench.py`` relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import CFG

__all__ = ["WTOComponent", "WeakTopologicalOrder", "compute_wto"]


@dataclass(frozen=True)
class WTOComponent:
    """One nontrivial component: a head index plus its nested body.

    ``elements`` holds plain instruction indices and nested
    ``WTOComponent`` instances, in linearization order.
    """

    head: int
    elements: tuple

    def flatten(self) -> list[int]:
        out = [self.head]
        for element in self.elements:
            if isinstance(element, WTOComponent):
                out.extend(element.flatten())
            else:
                out.append(element)
        return out


@dataclass(frozen=True)
class WeakTopologicalOrder:
    """The decomposition of one CFG plus derived lookup tables.

    ``rank`` maps each reachable instruction index to its position in
    the flattened linearization -- the worklist priority.  ``depth``
    maps each index to the number of components enclosing it, and
    ``heads`` is the set of component heads (loop headers, for
    reducible flow).
    """

    elements: tuple
    rank: dict[int, int]
    depth: dict[int, int]
    heads: frozenset[int]

    def flatten(self) -> list[int]:
        out: list[int] = []
        for element in self.elements:
            if isinstance(element, WTOComponent):
                out.extend(element.flatten())
            else:
                out.append(element)
        return out

    def rank_of(self, index: int) -> int:
        """Priority of *index*; unknown (unreachable) nodes sort last."""
        return self.rank.get(index, len(self.rank))


def compute_wto(cfg: CFG) -> WeakTopologicalOrder:
    """Decompose *cfg* into a weak topological order."""
    n = len(cfg.proc.instrs)
    if n == 0:
        return WeakTopologicalOrder((), {}, {}, frozenset())
    nodes = set(cfg.reachable())
    elements = _decompose(cfg, nodes, [0] if 0 in nodes else [])

    rank: dict[int, int] = {}
    depth: dict[int, int] = {}
    heads: set[int] = set()

    def walk(items, level: int) -> None:
        for item in items:
            if isinstance(item, WTOComponent):
                heads.add(item.head)
                rank[item.head] = len(rank)
                depth[item.head] = level
                walk(item.elements, level + 1)
            else:
                rank[item] = len(rank)
                depth[item] = level

    walk(elements, 0)
    return WeakTopologicalOrder(tuple(elements), rank, depth, frozenset(heads))


def _decompose(cfg: CFG, nodes: set[int], entries: list[int]) -> list:
    """Recursively decompose the subgraph induced by *nodes*.

    *entries* seeds the DFS; any member of *nodes* the entries cannot
    reach (possible in already-decomposed inner bodies of irreducible
    flow) is swept up by restarting from the smallest unvisited index,
    so every node lands in the order exactly once.
    """
    if not nodes:
        return []
    sccs = _tarjan(cfg, nodes, entries)
    out: list = []
    for scc, root in reversed(sccs):
        if len(scc) == 1:
            (node,) = scc
            if node in cfg.succs.get(node, ()):
                # Self-loop: a one-node component (its head re-enters it).
                out.append(WTOComponent(node, ()))
            else:
                out.append(node)
            continue
        body = set(scc)
        body.discard(root)
        inner_entries = [s for s in cfg.succs.get(root, ()) if s in body]
        inner = _decompose(cfg, body, inner_entries)
        out.append(WTOComponent(root, tuple(inner)))
    return out


def _tarjan(
    cfg: CFG, nodes: set[int], entries: list[int]
) -> list[tuple[list[int], int]]:
    """Iterative Tarjan over the subgraph induced by *nodes*.

    Returns ``(scc_members, scc_root)`` pairs in reverse topological
    order of the condensation; ``scc_root`` is the first DFS-visited
    member (the component-head candidate).  Members are listed in
    DFS-stack pop order, which is deterministic.
    """
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[tuple[list[int], int]] = []
    counter = 0
    succs_of = {
        v: [s for s in cfg.succs.get(v, ()) if s in nodes] for v in nodes
    }

    def strongconnect(start: int) -> None:
        nonlocal counter
        # Each frame: (node, iterator position over its in-set succs).
        work = [(start, 0)]
        while work:
            v, i = work.pop()
            if i == 0:
                index_of[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            vsuccs = succs_of[v]
            while i < len(vsuccs):
                w = vsuccs[i]
                i += 1
                if w not in index_of:
                    work.append((v, i))
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index_of[w])
            if advanced:
                continue
            if lowlink[v] == index_of[v]:
                members: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    members.append(w)
                    if w == v:
                        break
                sccs.append((members, v))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])

    for entry in entries:
        if entry in nodes and entry not in index_of:
            strongconnect(entry)
    # Defensive sweep: decomposed inner bodies of irreducible regions
    # can leave nodes unreachable from the chosen entries.
    for node in sorted(nodes):
        if node not in index_of:
            strongconnect(node)
    return sccs
