"""Shape-relevance program slicing (paper, §5.1).

Starting from stores to tracked (recursive / pointer) types, the slice
pulls in every instruction contributing to a store address or stored
value, across procedure boundaries, discovering new pointer types to
track along the way.  Everything else is pruned -- the non-pointer
data fields "do not exhibit interesting recursive patterns and may
confuse recursion synthesis", and pruning is what keeps flow-sensitive
shape analysis affordable on realistic programs.

Pruned instructions are replaced by ``nop`` so labels and indices stay
stable.  Control flow (branches, gotos, returns, calls) is always
preserved; branch conditions over *pointer* values keep their inputs
(null-checks drive the unfold case analysis), while integer conditions
become non-deterministic -- precisely the abstraction the shape domain
wants for loop bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import (
    ArithOp,
    Assign,
    Branch,
    Call,
    Free,
    Goto,
    Instruction,
    Load,
    Malloc,
    Nop,
    Return,
    Store,
)
from repro.ir.program import Procedure, Program
from repro.ir.values import Register
from repro.prepass.steensgaard import InferredType, PointerAnalysis

__all__ = ["SliceResult", "slice_program"]


@dataclass
class SliceResult:
    """The pruned program plus slicing statistics."""

    program: Program
    kept: int
    pruned: int
    tracked_types: set[InferredType]

    @property
    def total(self) -> int:
        return self.kept + self.pruned


def slice_program(
    program: Program,
    pointers: PointerAnalysis,
    seed_types: set[InferredType],
) -> SliceResult:
    """Prune instructions that cannot affect recursive pointer fields."""
    needed: set[tuple[str, Register]] = set()
    kept: set[tuple[str, int]] = set()
    tracked = {pointers.canonical(t) for t in seed_types}

    def need(proc: str, *operands) -> None:
        for operand in operands:
            if isinstance(operand, Register):
                needed.add((proc, operand))

    # ------------------------------------------------------------------
    # Seeds: memory operations on pointer cells, control flow, calls.
    # ------------------------------------------------------------------
    for name, proc in program.procedures.items():
        for i, instr in enumerate(proc.instrs):
            if isinstance(instr, (Branch, Goto, Return, Call, Malloc, Free, Nop)):
                kept.add((name, i))
                if isinstance(instr, Malloc):
                    need(name, instr.count)
                if isinstance(instr, Free):
                    need(name, instr.ptr)
                if isinstance(instr, Return) and isinstance(
                    instr.value, Register
                ):
                    if pointers.is_pointer_register(name, instr.value):
                        need(name, instr.value)
                if isinstance(instr, Call):
                    for arg in instr.args:
                        if isinstance(arg, Register) and (
                            pointers.is_pointer_register(name, arg)
                        ):
                            need(name, arg)
                if isinstance(instr, Branch):
                    for operand in (instr.cond.lhs, instr.cond.rhs):
                        if isinstance(operand, Register) and (
                            pointers.is_pointer_register(name, operand)
                        ):
                            need(name, operand)
            elif isinstance(instr, (Load, Store)):
                access = pointers.access_type(name, instr)
                cell = pointers.cell_class(access)
                if pointers.is_pointer_class(cell) or (
                    pointers.canonical(access) in tracked
                ):
                    kept.add((name, i))
                    tracked.add(pointers.canonical(access))
                    need(name, instr.addr)
                    if isinstance(instr, Store):
                        need(name, instr.src)
                elif isinstance(instr.addr, Register) and not (
                    pointers.has_allocation(name, instr.addr)
                ):
                    # No allocation site flows into the address: the
                    # slice retains no other access through which the
                    # analysis could validate this dereference, so
                    # pruning it would hide a guaranteed-or-possible
                    # fault (a null or junk pointer) and unsoundly
                    # upgrade the verdict to "pass".  Keep it; the
                    # abstract execution will go stuck on it unless a
                    # guard proves it unreachable.
                    kept.add((name, i))
                    need(name, instr.addr)
                    if isinstance(instr, Store):
                        need(name, instr.src)

    # ------------------------------------------------------------------
    # Backward closure over definitions of needed registers.
    # ------------------------------------------------------------------
    changed = True
    while changed:
        changed = False
        for name, proc in program.procedures.items():
            for i, instr in enumerate(proc.instrs):
                if (name, i) in kept:
                    continue
                if any((name, r) in needed for r in instr.defs()):
                    kept.add((name, i))
                    for register in instr.uses():
                        if (name, register) not in needed:
                            needed.add((name, register))
                            changed = True
                    changed = True
            # Parameters needed inside a callee make the corresponding
            # call arguments needed at every call site.
        for name, proc in program.procedures.items():
            for i, instr in enumerate(proc.instrs):
                if not isinstance(instr, Call):
                    continue
                if instr.func not in program.procedures:
                    continue
                callee = program.procedures[instr.func]
                for formal, actual in zip(callee.params, instr.args):
                    if (instr.func, formal) in needed and isinstance(
                        actual, Register
                    ):
                        if (name, actual) not in needed:
                            needed.add((name, actual))
                            changed = True

    # ------------------------------------------------------------------
    # Rebuild the program with pruned instructions as nops.
    # ------------------------------------------------------------------
    pruned_program = Program(entry=program.entry, globals=program.globals)
    kept_count = 0
    pruned_count = 0
    for name, proc in program.procedures.items():
        new_instrs: list[Instruction] = []
        for i, instr in enumerate(proc.instrs):
            if (name, i) in kept:
                new_instrs.append(instr)
                if not isinstance(instr, Nop):
                    kept_count += 1
            else:
                new_instrs.append(Nop())
                pruned_count += 1
        pruned_program.add(
            Procedure(name, proc.params, new_instrs, dict(proc.labels))
        )
    pruned_program.validate()
    return SliceResult(pruned_program, kept_count, pruned_count, tracked)
