"""Register liveness (backward dataflow).

``foldT`` merges only "locations not pointed to by any live register"
(paper, §4); the engine consults per-program-point live-out sets to
build the fold guard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import CFG
from repro.ir.instructions import Return
from repro.ir.program import Procedure
from repro.ir.values import Register

__all__ = ["Liveness"]


@dataclass
class Liveness:
    """Live-in / live-out register sets per instruction."""

    proc: Procedure

    def __post_init__(self) -> None:
        cfg = CFG(self.proc)
        n = len(self.proc.instrs)
        self.live_in: list[set[Register]] = [set() for _ in range(n)]
        self.live_out: list[set[Register]] = [set() for _ in range(n)]
        changed = True
        while changed:
            changed = False
            for i in range(n - 1, -1, -1):
                instr = self.proc.instrs[i]
                out = set()
                for s in cfg.succs[i]:
                    out |= self.live_in[s]
                live = (out - set(instr.defs())) | set(instr.uses())
                if out != self.live_out[i] or live != self.live_in[i]:
                    self.live_out[i] = out
                    self.live_in[i] = live
                    changed = True

    def live_after(self, index: int) -> set[Register]:
        return set(self.live_out[index])

    def live_before(self, index: int) -> set[Register]:
        return set(self.live_in[index])
