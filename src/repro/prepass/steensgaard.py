"""Steensgaard-style unification-based pointer analysis (paper, §5.1).

The shape analysis targets low-level code with no type information, so
a fast flow-insensitive pointer analysis is used to roughly infer the
high-level type of each pointer.  An *inferred type* is an equivalence
class of runtime locations (e.g. "the ``next`` field of all nodes of
one linked list"); each load/store instruction is assigned the inferred
type it accesses, over-approximating the set of locations it touches.

Implementation: classic union-find over equivalence-class
representatives (ECRs).  Each register, global and allocation site maps
to an ECR; each ECR owns a field map whose entries are themselves ECRs.
Assignments unify value ECRs; loads/stores unify through the field map;
unifying two ECRs recursively unifies the common fields of their maps
(Steensgaard's conditional join, simplified to eager join -- same
precision class, simpler code).  Calls unify arguments with parameters
and returned values with call destinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import (
    ArithOp,
    Assign,
    Branch,
    Call,
    Free,
    Load,
    Malloc,
    Return,
    Store,
)
from repro.ir.program import Program
from repro.ir.values import Global, Operand, Register

__all__ = ["PointerAnalysis", "InferredType"]


@dataclass(frozen=True, slots=True)
class InferredType:
    """The inferred type of a memory access: an ECR id plus a field."""

    ecr: int
    field: str

    def __str__(self) -> str:
        return f"t{self.ecr}.{self.field}"


class _EcrTable:
    """Union-find with field maps."""

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._fields: list[dict[str, int]] = []
        self._is_alloc: list[bool] = []

    def fresh(self, is_alloc: bool = False) -> int:
        self._parent.append(len(self._parent))
        self._fields.append({})
        self._is_alloc.append(is_alloc)
        return len(self._parent) - 1

    def find(self, e: int) -> int:
        root = e
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[e] != root:
            self._parent[e], e = root, self._parent[e]
        return root

    def union(self, a: int, b: int) -> int:
        a, b = self.find(a), self.find(b)
        if a == b:
            return a
        self._parent[b] = a
        self._is_alloc[a] = self._is_alloc[a] or self._is_alloc[b]
        b_fields = self._fields[b]
        self._fields[b] = {}
        for name, target in b_fields.items():
            mine = self._fields[a].get(name)
            if mine is None:
                self._fields[a][name] = target
            else:
                self.union(mine, target)
        return a

    def field_of(self, e: int, name: str) -> int:
        e = self.find(e)
        target = self._fields[e].get(name)
        if target is None:
            target = self.fresh()
            self._fields[e][name] = target
        return self.find(target)

    def fields(self, e: int) -> dict[str, int]:
        e = self.find(e)
        return {n: self.find(t) for n, t in self._fields[e].items()}

    def is_alloc(self, e: int) -> bool:
        return self._is_alloc[self.find(e)]


class PointerAnalysis:
    """Run the unification analysis over a whole program."""

    def __init__(self, program: Program):
        self.program = program
        self._ecrs = _EcrTable()
        self._of_register: dict[tuple[str, Register], int] = {}
        self._of_global: dict[str, int] = {}
        self._of_return: dict[str, int] = {}
        self._run()

    # ------------------------------------------------------------------
    def _reg(self, proc: str, register: Register) -> int:
        key = (proc, register)
        ecr = self._of_register.get(key)
        if ecr is None:
            ecr = self._ecrs.fresh()
            self._of_register[key] = ecr
        return self._ecrs.find(ecr)

    def _glob(self, name: str) -> int:
        ecr = self._of_global.get(name)
        if ecr is None:
            ecr = self._ecrs.fresh()
            self._of_global[name] = ecr
        return self._ecrs.find(ecr)

    def _ret(self, proc: str) -> int:
        ecr = self._of_return.get(proc)
        if ecr is None:
            ecr = self._ecrs.fresh()
            self._of_return[proc] = ecr
        return self._ecrs.find(ecr)

    def _operand(self, proc: str, operand: Operand) -> int | None:
        if isinstance(operand, Register):
            return self._reg(proc, operand)
        if isinstance(operand, Global):
            return self._glob(operand.name)
        return None

    def _run(self) -> None:
        for name, proc in self.program.procedures.items():
            for instr in proc.instrs:
                if isinstance(instr, Assign):
                    src = self._operand(name, instr.src)
                    if src is not None:
                        self._ecrs.union(self._reg(name, instr.dst), src)
                elif isinstance(instr, ArithOp) and instr.op in ("add", "sub"):
                    # Element-level pointer arithmetic stays in the same
                    # class; integer arithmetic unifies nothing useful.
                    lhs = self._operand(name, instr.lhs)
                    if lhs is not None:
                        self._ecrs.union(self._reg(name, instr.dst), lhs)
                elif isinstance(instr, Malloc):
                    site = self._ecrs.fresh(is_alloc=True)
                    self._ecrs.union(self._reg(name, instr.dst), site)
                elif isinstance(instr, Load):
                    addr = self._reg(name, instr.addr)
                    cell = self._ecrs.field_of(addr, instr.field)
                    self._ecrs.union(self._reg(name, instr.dst), cell)
                elif isinstance(instr, Store):
                    addr = self._reg(name, instr.addr)
                    cell = self._ecrs.field_of(addr, instr.field)
                    src = self._operand(name, instr.src)
                    if src is not None:
                        self._ecrs.union(cell, src)
                elif isinstance(instr, Call):
                    if instr.func in self.program.procedures:
                        callee = self.program.procedures[instr.func]
                        for formal, actual in zip(callee.params, instr.args):
                            ecr = self._operand(name, actual)
                            if ecr is not None:
                                self._ecrs.union(
                                    self._reg(callee.name, formal), ecr
                                )
                        if instr.dst is not None:
                            self._ecrs.union(
                                self._reg(name, instr.dst), self._ret(instr.func)
                            )
                elif isinstance(instr, Return):
                    if instr.value is not None:
                        ecr = self._operand(name, instr.value)
                        if ecr is not None:
                            self._ecrs.union(self._ret(name), ecr)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def register_class(self, proc: str, register: Register) -> int:
        return self._reg(proc, register)

    def access_type(self, proc: str, instr: Load | Store) -> InferredType:
        """The inferred type a load/store accesses."""
        addr = self._reg(proc, instr.addr)
        return InferredType(self._ecrs.find(addr), instr.field)

    def cell_class(self, inferred: InferredType) -> int:
        """The ECR of the locations an inferred type denotes."""
        return self._ecrs.field_of(inferred.ecr, inferred.field)

    def is_pointer_class(self, ecr: int) -> bool:
        """Does the class hold heap addresses (allocation reached it, or
        it carries fields)?"""
        return self._ecrs.is_alloc(ecr) or bool(self._ecrs.fields(ecr))

    def is_pointer_register(self, proc: str, register: Register) -> bool:
        return self.is_pointer_class(self._reg(proc, register))

    def has_allocation(self, proc: str, register: Register) -> bool:
        """Does any allocation site flow into *register*?  False for
        registers whose class merely picked up fields from being
        dereferenced (e.g. a register that only ever holds null)."""
        return self._ecrs.is_alloc(self._reg(proc, register))

    def same_class(self, a: InferredType, b: InferredType) -> bool:
        return (
            self._ecrs.find(a.ecr) == self._ecrs.find(b.ecr)
            and a.field == b.field
        )

    def canonical(self, inferred: InferredType) -> InferredType:
        return InferredType(self._ecrs.find(inferred.ecr), inferred.field)
