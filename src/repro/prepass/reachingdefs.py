"""Reaching definitions over the CFG.

The recursive-type identification of §5.1 detects traversal loads by
computing strongly-connected components of the *reaching-definition
graph*: the graph whose nodes are instructions and whose edges connect
each definition of a register to the uses it reaches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import CFG
from repro.ir.program import Procedure
from repro.ir.values import Register

__all__ = ["ReachingDefinitions", "def_use_graph"]


@dataclass
class ReachingDefinitions:
    """Per-instruction IN sets of reaching definitions.

    ``reaching_in[i]`` is the set of instruction indices whose
    definitions may reach the entry of instruction ``i``.
    """

    proc: Procedure

    def __post_init__(self) -> None:
        cfg = CFG(self.proc)
        n = len(self.proc.instrs)
        defs_of_reg: dict[Register, set[int]] = {}
        for i, instr in enumerate(self.proc.instrs):
            for register in instr.defs():
                defs_of_reg.setdefault(register, set()).add(i)
        gen: list[set[int]] = [set() for _ in range(n)]
        kill: list[set[int]] = [set() for _ in range(n)]
        for i, instr in enumerate(self.proc.instrs):
            defined = instr.defs()
            if defined:
                gen[i] = {i}
                kill[i] = set().union(
                    *(defs_of_reg[r] for r in defined)
                ) - {i}
        self.reaching_in: list[set[int]] = [set() for _ in range(n)]
        reaching_out: list[set[int]] = [set() for _ in range(n)]
        changed = True
        while changed:
            changed = False
            for i in range(n):
                in_set = set()
                for p in cfg.preds[i]:
                    in_set |= reaching_out[p]
                out_set = gen[i] | (in_set - kill[i])
                if in_set != self.reaching_in[i] or out_set != reaching_out[i]:
                    self.reaching_in[i] = in_set
                    reaching_out[i] = out_set
                    changed = True

    def definitions_reaching(self, index: int, register: Register) -> set[int]:
        """Definitions of *register* that may reach instruction *index*."""
        return {
            d
            for d in self.reaching_in[index]
            if register in self.proc.instrs[d].defs()
        }


def def_use_graph(proc: Procedure) -> dict[int, set[int]]:
    """Edges definition-instruction -> using-instruction (within a
    procedure), via reaching definitions."""
    rd = ReachingDefinitions(proc)
    edges: dict[int, set[int]] = {i: set() for i in range(len(proc.instrs))}
    for i, instr in enumerate(proc.instrs):
        for register in instr.uses():
            for d in rd.definitions_reaching(i, register):
                edges[d].add(i)
    return edges
