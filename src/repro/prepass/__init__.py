"""Pre-pass (paper, §5.1): fast pointer analysis, recursive-type
identification, shape-relevance slicing, and register liveness."""

from repro.prepass.liveness import Liveness
from repro.prepass.reachingdefs import ReachingDefinitions, def_use_graph
from repro.prepass.rectypes import recursive_types, traversal_loads
from repro.prepass.slicing import SliceResult, slice_program
from repro.prepass.steensgaard import InferredType, PointerAnalysis

__all__ = [
    "InferredType",
    "Liveness",
    "PointerAnalysis",
    "ReachingDefinitions",
    "SliceResult",
    "def_use_graph",
    "recursive_types",
    "slice_program",
    "traversal_loads",
]
