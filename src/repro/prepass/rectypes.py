"""Identification of recursive data types (paper, §5.1).

"Recursive types are identified as those associated with load
instructions involved in traversing recursive data structures.  These
loads share the property that the destination register is used to
compute the load address, a recurrence that is easily detected by
computing strongly-connected components of the reaching-definition
graph."

We build the def-use graph of each procedure, extend it across call
boundaries (argument -> parameter, return -> call destination) so that
recursive-procedure traversals (``treeadd(t->left)``) are caught, and
take the inferred types of loads inside non-trivial SCCs.  Stores to a
recursive type mark it recursive as well (builders).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import Call, Load, Return, Store
from repro.ir.program import Program
from repro.ir.values import Register
from repro.prepass.reachingdefs import def_use_graph
from repro.prepass.steensgaard import InferredType, PointerAnalysis

__all__ = ["recursive_types", "traversal_loads"]

_Node = tuple[str, int]  # (procedure name, instruction index)


def _global_def_use(program: Program) -> dict[_Node, set[_Node]]:
    """Def-use edges across the whole program.

    Interprocedural flow is routed precisely: the *definitions of an
    argument* feed the uses of the corresponding parameter, and returns
    feed the call node (which defines the destination register).
    Routing argument flow through the call node itself would compose it
    spuriously with the return flow and make every value loaded inside
    a recursion look like it computes a load address.
    """
    from repro.prepass.reachingdefs import ReachingDefinitions

    edges: dict[_Node, set[_Node]] = {}
    param_uses: dict[tuple[str, Register], set[_Node]] = {}
    reaching: dict[str, ReachingDefinitions] = {}
    for name, proc in program.procedures.items():
        local = def_use_graph(proc)
        for d, uses in local.items():
            edges.setdefault((name, d), set()).update((name, u) for u in uses)
        # Uses of parameters with no local definition reaching them are
        # fed by call sites.
        rd = ReachingDefinitions(proc)
        reaching[name] = rd
        for i, instr in enumerate(proc.instrs):
            for register in instr.uses():
                if register in proc.params and not rd.definitions_reaching(
                    i, register
                ):
                    param_uses.setdefault((name, register), set()).add((name, i))
    for name, proc in program.procedures.items():
        rd = reaching[name]
        for i, instr in enumerate(proc.instrs):
            if isinstance(instr, Call) and instr.func in program.procedures:
                callee = program.procedures[instr.func]
                for formal, actual in zip(callee.params, instr.args):
                    if isinstance(actual, Register):
                        targets = param_uses.get((instr.func, formal), set())
                        if not targets:
                            continue
                        arg_defs = rd.definitions_reaching(i, actual)
                        if not arg_defs and actual in proc.params:
                            # The argument is itself an incoming
                            # parameter: chain through its use here.
                            param_uses.setdefault((name, actual), set()).update(
                                targets
                            )
                            continue
                        for d in arg_defs:
                            edges.setdefault((name, d), set()).update(targets)
                if instr.dst is not None:
                    for j, cin in enumerate(callee.instrs):
                        if isinstance(cin, Return) and cin.value is not None:
                            edges.setdefault((instr.func, j), set()).add((name, i))
    return edges


def _sccs(edges: dict[_Node, set[_Node]]) -> list[set[_Node]]:
    index: dict[_Node, int] = {}
    low: dict[_Node, int] = {}
    on_stack: set[_Node] = set()
    stack: list[_Node] = []
    counter = [0]
    result: list[set[_Node]] = []
    nodes = set(edges)
    for targets in edges.values():
        nodes.update(targets)

    def visit(v: _Node) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in edges.get(v, ()):
            if w not in index:
                visit(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            component = set()
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.add(w)
                if w == v:
                    break
            result.append(component)

    import sys

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 10000))
    try:
        for v in sorted(nodes):
            if v not in index:
                visit(v)
    finally:
        sys.setrecursionlimit(limit)
    return result


def traversal_loads(program: Program) -> set[_Node]:
    """Loads whose destination feeds back into a load address."""
    edges = _global_def_use(program)
    loads: set[_Node] = set()
    for component in _sccs(edges):
        nontrivial = len(component) > 1 or any(
            v in edges.get(v, ()) for v in component
        )
        if not nontrivial:
            continue
        for name, i in component:
            if isinstance(program.procedures[name].instrs[i], Load):
                loads.add((name, i))
    return loads


def recursive_types(
    program: Program, pointers: PointerAnalysis
) -> set[InferredType]:
    """The inferred types of the program's recursive data structures."""
    types: set[InferredType] = set()
    for name, i in traversal_loads(program):
        instr = program.procedures[name].instrs[i]
        assert isinstance(instr, Load)
        types.add(pointers.canonical(pointers.access_type(name, instr)))
    return types
