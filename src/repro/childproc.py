"""Shared child-process plumbing: spawn environment, exit
classification, chaos hooks, and the crash-record diagnostics.

Two subsystems put an OS process boundary around one analysis: the
batch runner (:mod:`repro.benchsuite.runner`, one short-lived child
per benchmark) and the serve supervisor
(:mod:`repro.serve.supervisor`, a pool of long-lived workers).  Both
need the same four pieces, extracted here so their crash records stay
byte-compatible:

* :func:`child_env` -- an environment in which ``python -m repro...``
  resolves the same ``repro`` package as the parent, wherever it was
  imported from;
* :func:`classify_exit` / :func:`signal_name` -- telling "killed by a
  signal" (segfault, OOM kill, external SIGKILL -- an infrastructure
  problem) apart from a Python-level crash (the child exits normally
  with a traceback) and from a parent-imposed timeout;
* :func:`apply_child_chaos` -- the :data:`CHILD_CHAOS_ENV` hook that
  lets tests and CI make *real* children die by signal or hang,
  instead of mocking the process layer;
* :func:`timeout_diagnostic` / :func:`worker_crash_diagnostic` -- the
  structured :class:`~repro.analysis.resilience.Diagnostic` records a
  parent attaches when the child itself could not produce one (it was
  killed, or it overran its isolation timeout), so batch JSON and
  serve responses share one crash-record shape with the partial trace
  path attached as evidence.
"""

from __future__ import annotations

import os
import signal as signal_module
import time
from pathlib import Path

from repro.analysis.resilience import (
    BUDGET_EXHAUSTED,
    WORKER_CRASHED,
    Diagnostic,
    SEVERITY_FATAL,
)

__all__ = [
    "CHILD_CHAOS_ENV",
    "apply_child_chaos",
    "child_env",
    "classify_exit",
    "signal_name",
    "surviving_trace",
    "timeout_diagnostic",
    "worker_crash_diagnostic",
]

#: Chaos hook for the process isolation boundary itself: when this
#: environment variable is set to ``kill:<signum>`` or
#: ``sleep:<seconds>``, a child performs that action before analyzing.
#: It rides through :func:`child_env`'s environment inheritance, which
#: is exactly what lets the tests simulate signal deaths and hangs
#: inside *real* children instead of mocking the subprocess layer.
CHILD_CHAOS_ENV = "REPRO_CHILD_CHAOS"


def apply_child_chaos() -> None:
    """Perform the :data:`CHILD_CHAOS_ENV` action, if any (called by
    child processes before they start real work)."""
    spec = os.environ.get(CHILD_CHAOS_ENV)
    if not spec:
        return
    action, _, value = spec.partition(":")
    if action == "kill":
        os.kill(os.getpid(), int(value))
    elif action == "sleep":
        time.sleep(float(value))


def child_env(extra: "dict[str, str] | None" = None) -> dict[str, str]:
    """The spawn environment: the parent's, with ``PYTHONPATH``
    prefixed so the child resolves the same ``repro`` package, plus
    any *extra* variables (supervisors use these to tag workers)."""
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    if extra:
        env.update(extra)
    return env


def signal_name(signum: int) -> str:
    """``9`` -> ``"SIGKILL"`` (or ``"signal 99"`` for unknown ones)."""
    try:
        return signal_module.Signals(signum).name
    except ValueError:
        return f"signal {signum}"


def classify_exit(returncode: "int | None") -> "str | None":
    """The killing signal's name when *returncode* says the process
    died by a signal (POSIX negative return codes), else None.

    A batch full of SIGKILLs is an infrastructure problem, not an
    analyzer bug; callers report the two separately.
    """
    if returncode is not None and returncode < 0:
        return signal_name(-returncode)
    return None


def surviving_trace(trace_path: "Path | str | None") -> "str | None":
    """A dead child's partial trace is still evidence -- return its
    path whenever the file made it to disk with at least one record
    (the tracer writes line-buffered JSONL, so everything up to the
    crash is readable; an empty file is no evidence at all)."""
    if trace_path is not None:
        path = Path(trace_path)
        if path.exists() and path.stat().st_size > 0:
            return str(trace_path)
    return None


def _trace_detail(trace: "str | None") -> "str | None":
    return f"partial trace: {trace}" if trace else None


def timeout_diagnostic(
    timeout: float, trace: "str | None" = None
) -> Diagnostic:
    """The structured record for a child that overran its isolation
    timeout: a ``budget-exhausted`` diagnostic (the wall-clock cap is
    a resource like any other), with the torn trace path attached so
    the batch JSON references the evidence that survived."""
    return Diagnostic(
        code=BUDGET_EXHAUSTED,
        message=f"run exceeded the {timeout}s isolation timeout",
        phase="shape",
        severity=SEVERITY_FATAL,
        recovered=False,
        detail=_trace_detail(trace),
    )


def worker_crash_diagnostic(
    message: str,
    signal: "str | None" = None,
    trace: "str | None" = None,
) -> Diagnostic:
    """The structured record for a child/worker process that died
    before producing a result (killed by a signal, OOM, or torn pipe):
    a ``worker-crashed`` diagnostic in the ``serve`` phase.  The
    supervisor returns this instead of silently losing the job."""
    detail_parts = []
    if signal:
        detail_parts.append(f"killed by {signal}")
    if trace:
        detail_parts.append(_trace_detail(trace))
    return Diagnostic(
        code=WORKER_CRASHED,
        message=message,
        phase="serve",
        severity=SEVERITY_FATAL,
        recovered=False,
        detail="; ".join(detail_parts) or None,
    )
