"""Canonical forms for abstract states (the entailment-cache key).

``canonicalize(state)`` computes a deterministic serialization of an
:class:`AbstractState` that is invariant under alpha-renaming of logic
variables and (in practice) under reordering of spatial atoms, plus
the renaming tables needed to translate a subsumption witness between
alpha-variants.  Two states with the same canonical key are
alpha-equivalent -- each one renames, through its own index table, onto
the state the key literally spells out -- so every name-independent
judgment (``subsumes``, ``equivalent``) is guaranteed to agree on
them.  That is the soundness contract the entailment cache relies on:
a key collision between *inequivalent* states is impossible by
construction, while a missed identification between equivalent states
merely costs a cache hit.

The construction:

1. registers are visited in sorted (program-fixed) name order and the
   logic-variable roots of their values are numbered first -- the
   register frame anchors the traversal exactly like the root
   parameters anchor the paper's access-path names;
2. spatial atoms are serialized greedily: at each step the atom with
   the lexicographically least *partial signature* (computed with the
   indices assigned so far, unassigned roots rendered as ``?``) is
   emitted and its fresh roots are numbered -- an iterative refinement
   that canonicalizes chains and trees hanging off the registers
   without a full graph-canonization pass;
3. pure atoms, arithmetic aliases and anchors follow, same discipline.

Global locations and opaque tags are serialized literally: globals are
program-level names that alpha-renaming never touches, and opaque
equality patterns are preserved by any bijective re-tagging, so
keeping tags literal is sound (it only forgoes hits between states
that differ in opaque provenance).

Keys are :func:`sys.intern`-ed strings: the analysis re-derives the
same canonical form thousands of times during a fixpoint, and interned
keys make every later cache-key comparison a pointer check.
"""

from __future__ import annotations

import heapq
import sys

from repro.logic.assertions import PointsTo, PredInstance, Raw, Region
from repro.logic.heapnames import FieldPath, GlobalLoc, HeapName, Var, path_of, root_of
from repro.logic.symvals import NULL_VAL, NullVal, OffsetVal, Opaque, SymVal

__all__ = [
    "CanonicalForm",
    "UntranslatableWitness",
    "canonical_key",
    "canonicalize",
    "decode_binding",
    "encode_binding",
    "parse_canonical_key",
]


class UntranslatableWitness(Exception):
    """A witness mentions a value outside the canonical index tables
    (should not happen for witnesses produced by ``subsumes``; raised
    defensively so callers can skip caching instead of mis-caching)."""


class CanonicalForm:
    """A state's canonical key plus its root-renaming tables."""

    __slots__ = ("key", "index", "roots")

    def __init__(self, key: str, index: dict, roots: dict):
        #: interned canonical serialization of the whole state
        self.key = key
        #: logic-variable root -> canonical index
        self.index = index
        #: canonical index -> logic-variable root (inverse of ``index``)
        self.roots = roots

    # -- encoding (state values -> canonical tokens) -------------------
    def _root_token(self, root) -> tuple:
        if isinstance(root, GlobalLoc):
            return ("g", root.name)
        idx = self.index.get(root)
        if idx is None:
            raise UntranslatableWitness(f"unindexed root {root!r}")
        return ("v", _idx(idx))

    def encode_name(self, name: HeapName) -> tuple:
        return ("nm", self._root_token(root_of(name)), path_of(name))

    def encode_value(self, value: SymVal) -> tuple:
        if isinstance(value, NullVal):
            return ("null",)
        if isinstance(value, Opaque):
            return ("?", value.tag)
        if isinstance(value, OffsetVal):
            return ("off", self.encode_name(value.base), str(value.delta))
        return self.encode_name(value)

    # -- decoding (canonical tokens -> this state's names) -------------
    def _decode_root(self, token: tuple):
        kind, payload = token
        if kind == "g":
            return GlobalLoc(payload)
        root = self.roots.get(int(payload))
        if root is None:
            raise UntranslatableWitness(f"unknown canonical index {payload}")
        return root

    def decode_name(self, token: tuple) -> HeapName:
        _, root_token, fields = token
        name: HeapName = self._decode_root(root_token)
        for field in fields:
            name = FieldPath(name, field)
        return name

    def decode_value(self, token: tuple) -> SymVal:
        if token[0] == "null":
            return NULL_VAL
        if token[0] == "?":
            return Opaque(token[1])
        if token[0] == "off":
            return OffsetVal(self.decode_name(token[1]), int(token[2]))
        return self.decode_name(token)


def _idx(i: int) -> str:
    # Fixed-width so canonical tokens stay homogeneous strings (tuple
    # comparison during the greedy pass must never compare str to int).
    return f"{i:08d}"


class _Indexer:
    """Mutable index table used while a canonical form is being built;
    unassigned roots render as ``?`` in partial signatures."""

    __slots__ = ("index",)

    def __init__(self):
        self.index: dict = {}

    def ensure(self, root) -> None:
        if not isinstance(root, GlobalLoc) and root not in self.index:
            self.index[root] = len(self.index)

    def root_token(self, root) -> tuple:
        if isinstance(root, GlobalLoc):
            return ("g", root.name)
        idx = self.index.get(root)
        return ("v", "?") if idx is None else ("v", _idx(idx))

    def name(self, name: HeapName) -> tuple:
        return ("nm", self.root_token(root_of(name)), path_of(name))

    def value(self, value: SymVal) -> tuple:
        if isinstance(value, NullVal):
            return ("null",)
        if isinstance(value, Opaque):
            return ("?", value.tag)
        if isinstance(value, OffsetVal):
            return ("off", self.name(value.base), str(value.delta))
        return self.name(value)


def _value_roots(value: SymVal) -> list:
    if isinstance(value, (NullVal, Opaque)):
        return []
    if isinstance(value, OffsetVal):
        return [root_of(value.base)]
    return [root_of(value)]


def _atom_roots(atom) -> list:
    """The atom's logic roots in its canonical intra-atom order."""
    if isinstance(atom, PointsTo):
        return [root_of(atom.src)] + _value_roots(atom.target)
    if isinstance(atom, PredInstance):
        roots = []
        for arg in atom.args:
            roots.extend(_value_roots(arg))
        roots.extend(root_of(t) for t in atom.truncs)
        return roots
    if isinstance(atom, Raw):
        return [root_of(atom.loc)]
    if isinstance(atom, Region):
        return [root_of(atom.base)]
    return []


def _atom_sig(atom, ix: _Indexer) -> tuple:
    if isinstance(atom, PointsTo):
        return ("pt", ix.name(atom.src), atom.field, ix.value(atom.target))
    if isinstance(atom, PredInstance):
        return (
            "pred",
            atom.pred,
            tuple(ix.value(a) for a in atom.args),
            tuple(ix.name(t) for t in atom.truncs),
        )
    if isinstance(atom, Raw):
        return ("raw", ix.name(atom.loc), tuple(sorted(atom.written)))
    if isinstance(atom, Region):
        return ("rgn", ix.name(atom.base), tuple(str(c) for c in sorted(atom.carved)))
    return ("atom", str(atom))


def _greedy(items: list, sig, roots, ix: _Indexer) -> tuple:
    """Emit *items* in least-partial-signature-first order, numbering
    each emitted item's fresh roots before moving on, and return the
    fully-indexed signatures in emission order.

    Implemented as a lazy priority queue: an item's partial signature
    only changes when one of its still-unindexed roots gets numbered,
    so signatures are recomputed for exactly the items that mention a
    newly-numbered root (stale heap entries are skipped on pop).  The
    naive re-minimize-everything loop this replaces recomputed all
    O(n^2) signatures and dominated cache overhead on large states.
    Ties on identical partial signatures break by input position, same
    as ``min`` did.
    """
    n = len(items)
    if n == 0:
        return ()
    index = ix.index
    pending: dict = {}  # unindexed root -> item positions mentioning it
    item_roots = []
    for i, item in enumerate(items):
        rs = roots(item)
        item_roots.append(rs)
        for root in rs:
            if not isinstance(root, GlobalLoc) and root not in index:
                pending.setdefault(root, []).append(i)
    current = [sig(item, ix) for item in items]
    heap = [(current[i], i) for i in range(n)]
    heapq.heapify(heap)
    emitted = [False] * n
    ordered_sigs = []
    while len(ordered_sigs) < n:
        s, i = heapq.heappop(heap)
        if emitted[i] or s != current[i]:
            continue  # stale entry: superseded by a recomputed signature
        emitted[i] = True
        dirty: set = set()
        for root in item_roots[i]:
            if not isinstance(root, GlobalLoc) and root not in index:
                index[root] = len(index)
                dirty.update(pending.pop(root, ()))
        ordered_sigs.append(sig(items[i], ix))
        for j in dirty:
            if not emitted[j]:
                current[j] = sig(items[j], ix)
                heapq.heappush(heap, (current[j], j))
    return tuple(ordered_sigs)


def _pure_sig(item, ix: _Indexer) -> tuple:
    kind, payload = item
    if kind == "pa":
        encoded = sorted((ix.value(payload.lhs), ix.value(payload.rhs)))
        return ("pa", payload.op, encoded[0], encoded[1])
    offset_val, name = payload
    return ("al", ix.value(offset_val), ix.name(name))


def _pure_roots(item) -> list:
    kind, payload = item
    if kind == "pa":
        return _value_roots(payload.lhs) + _value_roots(payload.rhs)
    offset_val, name = payload
    return _value_roots(offset_val) + [root_of(name)]


def canonicalize(state) -> CanonicalForm:
    """The canonical form of *state* (see the module docstring).

    Memoized on the state object: the hot entailment loops (invariant
    convergence, exit-state dedup) canonicalize the same unchanged
    state once per peer, so the form is cached under a cheap validity
    token -- the identity and revision counter of each formula (every
    mutating formula method bumps ``revision``), the register frame's
    sorted contents (``rho`` is the one component mutated without going
    through methods) and the anchor set.  Holding references to the
    formula objects in the token makes the identity check immune to
    ``id()`` reuse.
    """
    spatial, pure = state.spatial, state.pure
    rho_sig = tuple(
        sorted(
            ((r.name, v) for r, v in state.rho.items()),
            key=lambda kv: kv[0],
        )
    )
    memo = getattr(state, "_canon_memo", None)
    if (
        memo is not None
        and memo[0] is spatial
        and memo[1] == spatial.revision
        and memo[2] is pure
        and memo[3] == pure.revision
        and memo[4] == state.anchors
        and memo[5] == rho_sig
    ):
        return memo[6]
    ix = _Indexer()
    for register in sorted(state.rho, key=lambda r: r.name):
        for root in _value_roots(state.rho[register]):
            ix.ensure(root)
    spatial_sigs = _greedy(list(spatial), _atom_sig, _atom_roots, ix)
    pure_items = [("pa", atom) for atom in pure.atoms()]
    pure_items += [
        ("al", (offset_val, name))
        for offset_val, name in pure.aliases().items()
    ]
    pure_sigs = _greedy(pure_items, _pure_sig, _pure_roots, ix)
    anchors = _greedy(
        list(state.anchors),
        lambda a, i: i.name(a),
        lambda a: [root_of(a)],
        ix,
    )
    rho = tuple(
        (register.name, ix.value(state.rho[register]))
        for register in sorted(state.rho, key=lambda r: r.name)
    )
    key = sys.intern(
        repr(("rho", rho, "sp", spatial_sigs, "pure", pure_sigs, "anc", anchors))
    )
    roots = {idx: root for root, idx in ix.index.items()}
    form = CanonicalForm(key, ix.index, roots)
    state._canon_memo = (
        spatial, spatial.revision, pure, pure.revision,
        state.anchors, rho_sig, form,
    )
    return form


def canonical_key(state) -> str:
    """Just the interned canonical key of *state*."""
    return canonicalize(state).key


def parse_canonical_key(key: str) -> tuple:
    """Parse a canonical key back into its ``(rho, spatial, pure,
    anchors)`` token sections.

    The key is ``repr`` of a nested tuple of strings, so it is exactly
    ``ast.literal_eval``-able -- the canonical key doubles as the
    durable store's on-disk state serialization (see
    :mod:`repro.store.codec`, which materializes a fresh alpha-variant
    of the keyed state from these tokens).  Raises :class:`ValueError`
    on anything that does not parse to the expected shape, so corrupt
    store entries fail loudly at the decode step of validation-on-read.
    """
    import ast

    try:
        parsed = ast.literal_eval(key)
    except (ValueError, SyntaxError, MemoryError, RecursionError) as exc:
        raise ValueError(f"unparseable canonical key: {exc}") from exc
    if (
        not isinstance(parsed, tuple)
        or len(parsed) != 8
        or parsed[0::2] != ("rho", "sp", "pure", "anc")
    ):
        raise ValueError("canonical key has the wrong section structure")
    return parsed[1], parsed[3], parsed[5], parsed[7]


# ----------------------------------------------------------------------
# Witness translation (general-side names -> concrete-side values)
# ----------------------------------------------------------------------


def encode_binding(
    binding: dict, general: CanonicalForm, concrete: CanonicalForm
) -> tuple:
    """Re-express a subsumption witness in canonical coordinates, so it
    can be replayed against *any* pair of states with the same keys.
    Raises :class:`UntranslatableWitness` if the witness escapes the
    index tables (callers then skip caching that entry)."""
    items = []
    for key, value in binding.items():
        if isinstance(key, Opaque):
            encoded_key: tuple = ("?", key.tag)
        else:
            encoded_key = general.encode_name(key)
        items.append((encoded_key, concrete.encode_value(value)))
    return tuple(sorted(items))


def decode_binding(
    payload: tuple, general: CanonicalForm, concrete: CanonicalForm
) -> dict:
    """Inverse of :func:`encode_binding` against (possibly different)
    states sharing the stored canonical keys."""
    binding: dict = {}
    for encoded_key, encoded_value in payload:
        if encoded_key[0] == "?":
            key: SymVal = Opaque(encoded_key[1])
        else:
            key = general.decode_name(encoded_key)
        binding[key] = concrete.decode_value(encoded_value)
    return binding
