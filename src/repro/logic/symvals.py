"""Symbolic values: ``v ::= null | h | h + n`` (paper, Table 1).

A register holds either ``null``, a heap location (by name), a heap
location plus an element offset (pointer arithmetic into an array), or
an opaque non-pointer value (integers and other data the shape analysis
does not track; slicing removes most of them, the rest are ``Opaque``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.heapnames import HeapName, rename_name

__all__ = ["NullVal", "NULL_VAL", "OffsetVal", "Opaque", "SymVal", "rename_symval"]


@dataclass(frozen=True, slots=True)
class NullVal:
    """The symbolic ``null``."""

    def __str__(self) -> str:
        return "null"


NULL_VAL = NullVal()


@dataclass(frozen=True, slots=True)
class OffsetVal:
    """``h + n``: *n* array elements past the location named *h*.

    Offsets are element-granular (the paper works at byte granularity
    through its low-level pointer analysis; element granularity carries
    the same distinctions for the shape domain).  ``n`` may be negative
    (``node - 1`` in the 181.mcf builder).  ``OffsetVal(h, 0)`` is
    normalized to plain ``h`` by :func:`offset`.
    """

    base: HeapName
    delta: int

    def __str__(self) -> str:
        sign = "+" if self.delta >= 0 else "-"
        return f"{self.base}{sign}{abs(self.delta)}"


@dataclass(frozen=True, slots=True)
class Opaque:
    """A non-pointer value the analysis does not interpret.

    ``tag`` distinguishes independent opaque values so that equality
    conditions between them are neither assumed nor refuted.
    """

    tag: str

    def __str__(self) -> str:
        return f"?{self.tag}"


SymVal = NullVal | HeapName | OffsetVal | Opaque


def offset(base_val: SymVal, delta: int) -> SymVal:
    """Apply element-level pointer arithmetic to a symbolic value."""
    if isinstance(base_val, OffsetVal):
        total = base_val.delta + delta
        return base_val.base if total == 0 else OffsetVal(base_val.base, total)
    if isinstance(base_val, (NullVal, Opaque)):
        return Opaque(f"arith({base_val})")
    return base_val if delta == 0 else OffsetVal(base_val, delta)


def rename_symval(value: SymVal, old: HeapName, new: HeapName) -> SymVal:
    """Replace heap name *old* with *new* inside *value*."""
    if isinstance(value, (NullVal, Opaque)):
        return value
    if isinstance(value, OffsetVal):
        base = rename_name(value.base, old, new)
        return value if base is value.base else OffsetVal(base, value.delta)
    return rename_name(value, old, new)


__all__.append("offset")
