r"""Recursive predicate definitions and the global environment ``T``.

A definition has the shape the recursion synthesis algorithm produces
(and that covers every structure with a tree-like backbone plus
backward links, the paper's stated descriptive power)::

    A(x1, ..., xn) =  (x1 = null  /\  emp)
                   \/ (x1.f1 |-> e1 * ... * x1.fk |-> ek
                       * B1(b1, s1...) * ... * Bm(bm, sm...))

where each field target ``ei`` and each recursive-call argument is an
:class:`ArgExpr`: ``null``, a parameter ``xj``, the root of one of the
sub-structures (``RecTarget``), or an unconstrained existential
(``AnyArg``, for residual data fields).  Mutual and nested recursion is
supported because each :class:`RecCallSpec` names its own predicate.

The *recursion points* of Section 3.1.2 / Figure 6 are exactly the
``rec_calls`` entries whose predicate is ``A`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.assertions import PointsTo, PredInstance
from repro.logic.heapnames import HeapName, Var, fresh_var
from repro.logic.symvals import NULL_VAL, NullVal, SymVal

__all__ = [
    "ArgExpr",
    "NullArg",
    "ParamArg",
    "RecTarget",
    "AnyArg",
    "FieldSpec",
    "RecCallSpec",
    "PredicateDef",
    "PredicateEnv",
    "LIST_DEF",
    "TREE_DEF",
]


@dataclass(frozen=True, slots=True)
class NullArg:
    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True, slots=True)
class ParamArg:
    """The j-th parameter (0-based; 0 is the node itself, ``x1``)."""

    index: int

    def __str__(self) -> str:
        return f"x{self.index + 1}"


@dataclass(frozen=True, slots=True)
class RecTarget:
    """The root of the i-th sub-structure (the bound variable of
    ``rec_calls[i]``)."""

    index: int

    def __str__(self) -> str:
        return chr(ord("α") + self.index)  # alpha, beta, ...


@dataclass(frozen=True, slots=True)
class AnyArg:
    """An unconstrained existential (residual data field)."""

    def __str__(self) -> str:
        return "_"


ArgExpr = NullArg | ParamArg | RecTarget | AnyArg


@dataclass(frozen=True, slots=True)
class FieldSpec:
    """One conjunct ``x1.field |-> target`` of the definition body."""

    field: str
    target: ArgExpr


@dataclass(frozen=True, slots=True)
class RecCallSpec:
    """One recursive call ``pred(<bound var>, args...)`` in the body.

    ``args`` instantiate parameters 2..n of *pred* (the first parameter
    is always the bound variable introduced by the ``RecTarget`` field).
    """

    pred: str
    args: tuple[ArgExpr, ...] = ()


@dataclass(frozen=True)
class PredicateDef:
    """A recursive predicate definition."""

    name: str
    arity: int
    fields: tuple[FieldSpec, ...]
    rec_calls: tuple[RecCallSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.fields:
            if isinstance(spec.target, RecTarget) and not (
                0 <= spec.target.index < len(self.rec_calls)
            ):
                raise ValueError(f"{self.name}: dangling RecTarget {spec.target}")
        targets = [
            s.target.index for s in self.fields if isinstance(s.target, RecTarget)
        ]
        if sorted(targets) != list(range(len(self.rec_calls))):
            raise ValueError(
                f"{self.name}: rec_calls must be the targets of exactly one "
                "field each"
            )

    # ------------------------------------------------------------------
    @property
    def recursion_points(self) -> tuple[int, ...]:
        """Indices of rec_calls that recurse on this same predicate."""
        return tuple(
            i for i, call in enumerate(self.rec_calls) if call.pred == self.name
        )

    def field_of_rec_call(self, index: int) -> str:
        """The field whose target roots rec_calls[index]."""
        for spec in self.fields:
            if isinstance(spec.target, RecTarget) and spec.target.index == index:
                return spec.field
        raise ValueError(f"no field for rec call {index}")

    def backward_param_for_field(self, field_name: str) -> int | None:
        """If ``x1.field |-> xj`` for a parameter j >= 1, return j.

        These are the backward links: the paper's Figure 6 uses the
        correspondence between backward-link fields and predicate
        parameters to prune impossible truncation-point placements.
        """
        for spec in self.fields:
            if spec.field == field_name and isinstance(spec.target, ParamArg):
                return spec.target.index
        return None

    # ------------------------------------------------------------------
    def eval_arg(
        self, expr: ArgExpr, args: tuple[SymVal, ...], bound: list[Var]
    ) -> SymVal:
        """Evaluate an :class:`ArgExpr` under an instantiation."""
        if isinstance(expr, NullArg):
            return NULL_VAL
        if isinstance(expr, ParamArg):
            return args[expr.index]
        if isinstance(expr, RecTarget):
            return bound[expr.index]
        return fresh_var("d")

    def unfold_body(
        self, args: tuple[SymVal, ...]
    ) -> tuple[list[PointsTo], list[PredInstance], list[Var]]:
        """Instantiate the recursive case at *args*.

        Returns the points-to facts, the sub-structure instances (with
        fresh roots), and the fresh bound variables, in rec-call order.
        """
        if len(args) != self.arity:
            raise ValueError(
                f"{self.name} expects {self.arity} args, got {len(args)}"
            )
        root = args[0]
        if isinstance(root, NullVal):
            raise ValueError("cannot unfold the base case")
        bound = [fresh_var("b") for _ in self.rec_calls]
        points_to = [
            PointsTo(root, spec.field, self.eval_arg(spec.target, args, bound))
            for spec in self.fields
        ]
        instances = [
            PredInstance(
                call.pred,
                (bound[i],) + tuple(self.eval_arg(a, args, bound) for a in call.args),
            )
            for i, call in enumerate(self.rec_calls)
        ]
        return points_to, instances, bound

    # ------------------------------------------------------------------
    def structure_key(self) -> tuple:
        """A key identifying the definition up to renaming of the
        predicate itself (used to deduplicate synthesized predicates)."""
        calls = tuple(
            ("self" if c.pred == self.name else c.pred, c.args)
            for c in self.rec_calls
        )
        return (self.arity, self.fields, calls)

    def __str__(self) -> str:
        params = ", ".join(f"x{i + 1}" for i in range(self.arity))
        conjuncts = [f"x1.{s.field}|->{s.target}" for s in self.fields]
        for i, call in enumerate(self.rec_calls):
            call_args = ", ".join([str(RecTarget(i))] + [str(a) for a in call.args])
            conjuncts.append(f"{call.pred}({call_args})")
        body = " * ".join(conjuncts) if conjuncts else "emp"
        return f"{self.name}({params}) = (x1=null /\\ emp) \\/ ({body})"


class PredicateEnv:
    """The global environment ``T`` of predicate definitions.

    Structurally identical definitions are shared: :meth:`define`
    returns the existing definition when one matches, so repeated
    synthesis over the same data structure converges on one name.
    """

    def __init__(self) -> None:
        self._defs: dict[str, PredicateDef] = {}
        self._by_structure: dict[tuple, str] = {}
        self._by_fields: dict[tuple[str, ...], list[PredicateDef]] = {}
        self._counter = 0
        self._token: tuple | None = None
        #: (stronger, weaker) -> bool memo for ``pred_implies``;
        #: invalidated whenever a new definition is registered.
        self.implies_memo: dict[tuple[str, str], bool] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def __getitem__(self, name: str) -> PredicateDef:
        return self._defs[name]

    def __iter__(self):
        return iter(self._defs.values())

    def __len__(self) -> int:
        return len(self._defs)

    def fresh_name(self, hint: str = "P") -> str:
        self._counter += 1
        return f"{hint}{self._counter}"

    def add(self, definition: PredicateDef) -> PredicateDef:
        """Register *definition* (or return the structural duplicate)."""
        key = definition.structure_key()
        existing = self._by_structure.get(key)
        if existing is not None:
            return self._defs[existing]
        if definition.name in self._defs:
            raise ValueError(f"predicate {definition.name} already defined")
        self._defs[definition.name] = definition
        self._by_structure[key] = definition.name
        signature = tuple(sorted(spec.field for spec in definition.fields))
        self._by_fields.setdefault(signature, []).append(definition)
        self.implies_memo.clear()
        self._token = None
        return definition

    def cache_token(self) -> tuple:
        """A *structural* fingerprint of the environment: the sorted
        ``(name, structure_key)`` pairs, which fully determine every
        definition (and therefore every entailment judgment made under
        this environment).  Being structural rather than identity-based
        lets an entailment cache persist across analysis runs -- two
        runs that deterministically synthesize the same predicates get
        the same token and share verdicts.  Recomputed lazily, only
        after :meth:`add` grew the environment."""
        token = self._token
        if token is None:
            token = self._token = tuple(
                sorted(
                    ((name, d.structure_key()) for name, d in self._defs.items()),
                    key=lambda pair: pair[0],
                )
            )
        return token

    def define(
        self,
        fields: tuple[FieldSpec, ...],
        rec_calls: tuple[RecCallSpec, ...],
        arity: int,
        hint: str = "P",
    ) -> PredicateDef:
        """Create (or share) a definition with a fresh name."""
        name = self.fresh_name(hint)
        resolved_calls = tuple(
            RecCallSpec(name if c.pred == "self" else c.pred, c.args)
            for c in rec_calls
        )
        definition = PredicateDef(name, arity, fields, resolved_calls)
        shared = self.add(definition)
        if shared is not definition:
            self._counter -= 1
        return shared

    def candidates_for_fields(self, fields: tuple[str, ...]) -> list[PredicateDef]:
        """Definitions whose body covers exactly these fields (used by
        foldT to avoid scanning the whole environment)."""
        return list(self._by_fields.get(tuple(sorted(fields)), ()))

    def find_structural(self, definition: PredicateDef) -> "PredicateDef | None":
        """The registered definition structurally identical to
        *definition* (any name), or None.  The durable store uses this
        to detect *name drift*: a stored summary whose predicate exists
        here under a different name cannot be installed verbatim."""
        name = self._by_structure.get(definition.structure_key())
        return None if name is None else self._defs[name]

    @property
    def counter(self) -> int:
        """The fresh-name counter (snapshotted into store payloads)."""
        return self._counter

    def ensure_counter(self, value: int) -> None:
        """Raise the fresh-name counter to at least *value*.

        Installing stored definitions bypasses :meth:`fresh_name`, so
        the counter must be advanced past their numeric suffixes --
        otherwise a later synthesis would mint an already-taken name.
        This also keeps the store-on run's name sequence aligned with
        the run that recorded the entries (synthesis is deterministic,
        so that run advanced the counter to exactly this value)."""
        self._counter = max(self._counter, value)

    def describe(self) -> str:
        return "\n".join(str(d) for d in self._defs.values())


def _make_list_def() -> PredicateDef:
    return PredicateDef(
        "list",
        arity=1,
        fields=(FieldSpec("next", RecTarget(0)),),
        rec_calls=(RecCallSpec("list"),),
    )


def _make_tree_def() -> PredicateDef:
    return PredicateDef(
        "tree",
        arity=1,
        fields=(FieldSpec("left", RecTarget(0)), FieldSpec("right", RecTarget(1))),
        rec_calls=(RecCallSpec("tree"), RecCallSpec("tree")),
    )


#: The classic acyclic list predicate of the paper's introduction.
LIST_DEF = _make_list_def()

#: A plain binary tree.
TREE_DEF = _make_tree_def()
