"""State subsumption: the partial order on abstract states (§2.1).

``subsumes(general, concrete)`` decides whether *concrete* is an
instance of *general*: it searches for a mapping ``f`` from the heap
names of *general* to the symbolic values of *concrete* such that

(i)   live registers correspond through ``f`` (null to null);
(ii)  every spatial atom of *general*, mapped through ``f``, matches a
      distinct spatial atom of *concrete*, and every spatial atom of
      *concrete* is matched (the formulas describe the same heap) --
      with the semantic allowances that a predicate instance whose
      mapped root is null denotes ``emp`` (the base case) and that a
      truncation point mapped to null disappears
      (``emp --* A(..)  ==  A(..)``);
(iii) every pure *condition* atom of *general* is, mapped through
      ``f``, entailed by *concrete*'s pure formula.

Pointer-arithmetic aliases in the pure formulas are naming
infrastructure rather than constraints between states and are not
required to map (the register correspondence already compares values
*after* alias resolution).  This is the check the engine uses both for
loop convergence (state at loop entry subsumed by the invariant) and
for procedure-summary reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs, perf
from repro.ir.values import Register
from repro.logic import lemmas
from repro.logic.canonical import (
    UntranslatableWitness,
    canonicalize,
    decode_binding,
    encode_binding,
)
from repro.logic.implication import pred_implies
from repro.logic.assertions import (
    HeapAssertion,
    PointsTo,
    PredInstance,
    Raw,
    Region,
)
from repro.logic.heapnames import HeapName
from repro.logic.state import AbstractState
from repro.logic.symvals import NULL_VAL, NullVal, OffsetVal, Opaque, SymVal

__all__ = [
    "subsumes",
    "equivalent",
    "Mapping",
    "MATCH_STEP_LIMIT",
    "structural_signature",
    "signatures_compatible",
]

def structural_signature(state: AbstractState) -> tuple:
    """Cheap subsumption-invariant shape of *state*'s spatial formula.

    Returns ``(pointsto field multiset, raw count, region count, pred
    count)``, memoized on the formula's revision counter.  Used as a
    necessary-condition pre-filter: see :func:`signatures_compatible`.
    """
    return state.spatial.structural_signature()


def signatures_compatible(general: tuple, concrete: tuple) -> bool:
    """Can a state with signature *general* subsume one with *concrete*?

    Necessary condition only (cheap pre-filter): ``_match_atoms`` pairs
    spatial atoms bijectively, and the only atom allowed to "vanish" is
    a general ``PredInstance`` without truncations whose mapped root is
    null.  A successful match therefore forces equality of the PointsTo
    field multiset, the Raw count and the Region count, and requires
    the general side to carry at least as many predicate instances as
    the concrete side.  Root counts are deliberately not compared:
    ``Mapping.unify`` does not require an injective binding, so the
    number of distinct roots is not preserved by matching.

    With an active lemma engine the predicate-count requirement is
    relaxed: the merge lemma composes two concrete instances into one
    and the empty-segment lemma discharges an instance outright, so the
    concrete side may carry *more* predicate instances than the general
    side.  This ordering matters -- the fast-reject must not
    short-circuit before the lemma fallback gets a chance on
    recursive-predicate mismatches (every reject path, including the
    ``stateset`` bucket filters, routes through here) -- and is pinned
    by ``test_lemma_properties.py``.  PointsTo/Raw/Region equality is
    still required: no lemma changes those atoms.
    """
    if general[:3] != concrete[:3]:
        return False
    if general[3] >= concrete[3]:
        return True
    return lemmas.ACTIVE.enabled and concrete[3] >= 1


#: Cap on backtracking steps (atom-unification attempts) per query.
#: The search is worst-case exponential in the number of spatial atoms;
#: on malformed states (e.g. fuzzed programs that leak unlinked cells)
#: it can otherwise run unboundedly, outliving every cooperative budget
#: check.  Giving up is conservative: the query answers "not subsumed",
#: which at worst costs precision (another widening round, a recomputed
#: summary), never soundness.  Well-formed states match in well under a
#: thousand steps.
MATCH_STEP_LIMIT = 100_000


class _MatchBudget:
    __slots__ = ("steps", "limit")

    def __init__(self, limit: int):
        self.steps = 0
        self.limit = limit

    def charge(self) -> None:
        self.steps += 1
        if self.steps > self.limit:
            raise _MatchBudgetExceeded


class _MatchBudgetExceeded(Exception):
    pass


@dataclass
class Mapping:
    """A partial mapping from *general* names/opaques to *concrete* values.

    ``lemmas_used`` counts the lemma applications the witness relies on
    (0 for a purely structural match), so callers can tell an assisted
    verdict from a structural one."""

    binding: dict[SymVal, SymVal] = field(default_factory=dict)
    lemmas_used: int = 0

    def copy(self) -> "Mapping":
        return Mapping(dict(self.binding), self.lemmas_used)

    def unify(self, general: SymVal, concrete: SymVal) -> bool:
        """Extend the mapping so f(general) == concrete, if consistent."""
        if isinstance(general, NullVal):
            return isinstance(concrete, NullVal)
        if isinstance(general, OffsetVal):
            return (
                isinstance(concrete, OffsetVal)
                and general.delta == concrete.delta
                and self.unify(general.base, concrete.base)
            )
        # Heap names and opaque values bind atomically.
        bound = self.binding.get(general)
        if bound is not None:
            return bound == concrete
        self.binding[general] = concrete
        return True

    def apply(self, general: SymVal) -> SymVal | None:
        """f(general), or None when unbound."""
        if isinstance(general, NullVal):
            return NULL_VAL
        if isinstance(general, OffsetVal):
            base = self.apply(general.base)
            if base is None or isinstance(base, (OffsetVal, NullVal, Opaque)):
                return None
            return OffsetVal(base, general.delta)
        return self.binding.get(general)


def subsumes(
    general: AbstractState,
    concrete: AbstractState,
    live: set[Register] | None = None,
    env=None,
    step_limit: int = MATCH_STEP_LIMIT,
) -> Mapping | None:
    """Return a witness mapping if *concrete* <= *general*, else None.

    With a predicate environment, instances of *different* predicates
    match when the concrete one's definition implies the general one's
    (see :mod:`repro.logic.implication`).  A query exceeding
    *step_limit* backtracking steps conservatively answers None.

    Every query reports to the active observability instruments
    (``obs.METRICS`` counters, and a ``entailment.query`` trace event
    carrying the match steps consumed and the verdict); outside an
    active analysis run both are null and the cost is a no-op call.

    When an :class:`~repro.perf.cache.EntailmentCache` is active
    (``perf.CACHE``, installed per analysis run), the query is first
    looked up under the canonical (antecedent, consequent) key pair --
    see :mod:`repro.logic.canonical` for why equal keys guarantee the
    same verdict -- and a hit replays the stored witness translated
    into this query's names instead of re-running the search.  Each
    public query gets its *own* fresh match budget either way: budgets
    never leak between top-level calls (or between the two directions
    of :func:`equivalent`)."""
    if not signatures_compatible(
        structural_signature(general), structural_signature(concrete)
    ):
        # Incompatible spatial shapes cannot match; answer "not
        # subsumed" without searching (and without paying for a
        # canonical cache key -- the signatures are revision-memoized,
        # the verdict deterministic either way).
        _report_query(None, steps=0, capped=False, cached=False, sig=True)
        return None
    engine = lemmas.ACTIVE
    cache = perf.CACHE
    general_form = concrete_form = cache_key = None
    if cache.enabled:
        general_form = canonicalize(general)
        concrete_form = canonicalize(concrete)
        cache_key = (
            general_form.key,
            concrete_form.key,
            None if live is None else tuple(sorted(r.name for r in live)),
            None if env is None else env.cache_token(),
            step_limit,
            # Verdicts reached with lemma allowances must never replay
            # for a lemma-free query (and vice versa).
            engine.token(),
        )
        found = cache.lookup(cache_key)
        if found is not None:
            payload = found[0]
            if payload is None:
                result = None
            else:
                encoded, lemmas_used = payload
                try:
                    result = Mapping(
                        decode_binding(encoded, general_form, concrete_form),
                        lemmas_used,
                    )
                except UntranslatableWitness:
                    result = None
                    found = None  # fall through to a real search
            if found is not None:
                _report_query(result, steps=0, capped=False, cached=True)
                return result
    budget = _MatchBudget(step_limit)
    capped = False
    attempts_before = engine.enabled and engine.attempts or 0
    try:
        result = _subsumes(general, concrete, live, env, budget)
    except _MatchBudgetExceeded:
        result = None
        capped = True
    if cache_key is not None:
        try:
            payload = (
                None
                if result is None
                else (
                    encode_binding(
                        result.binding, general_form, concrete_form
                    ),
                    result.lemmas_used,
                )
            )
        except UntranslatableWitness:
            pass  # uncacheable witness; the verdict itself is still valid
        else:
            if cache.store(cache_key, payload) and obs.METRICS.enabled:
                obs.METRICS.inc("entailment.cache.evictions")
    _report_query(
        result,
        steps=budget.steps,
        capped=capped,
        cached=False,
        attempts=(engine.enabled and engine.attempts or 0) - attempts_before,
    )
    return result


def _report_query(
    result,
    steps: int,
    capped: bool,
    cached: bool,
    sig: bool = False,
    attempts: int = 0,
) -> None:
    assisted = result is not None and result.lemmas_used > 0
    metrics = obs.METRICS
    if metrics.enabled:
        metrics.inc("entailment.queries")
        metrics.inc("entailment.match_steps", steps)
        # Per-query distribution alongside the summed counter: the
        # counter says how much total work, the histogram says whether
        # one pathological query or many cheap ones produced it.
        metrics.observe("entailment.match_steps.dist", steps)
        metrics.inc(
            "entailment.subsumed" if result is not None
            else "entailment.rejected"
        )
        if sig:
            # Signature pre-filter rejections never consult the cache,
            # so they stay out of the hit/miss accounting.
            metrics.inc("entailment.sig_rejects")
        if capped:
            metrics.inc("entailment.step_limit_hits")
        if perf.CACHE.enabled and not sig:
            metrics.inc(
                "entailment.cache.hits" if cached
                else "entailment.cache.misses"
            )
        if assisted:
            metrics.inc("entailment.lemma.applied")
        if lemmas.ACTIVE.enabled and not cached and not sig:
            # Same counter-plus-distribution pairing as match_steps:
            # how many synthesis attempts this one query triggered.
            metrics.observe("entailment.lemma.attempts.dist", attempts)
    tracer = obs.TRACER
    if tracer.enabled:
        tracer.event(
            "entailment.query",
            steps=steps,
            subsumed=result is not None,
            step_limit_hit=capped,
            cached=cached,
            lemmas=result.lemmas_used if result is not None else 0,
        )


def _subsumes(
    general: AbstractState,
    concrete: AbstractState,
    live: set[Register] | None,
    env,
    budget: _MatchBudget,
) -> Mapping | None:
    mapping = Mapping()
    registers = set(general.rho) & set(concrete.rho)
    if live is not None:
        registers &= live
    for register in sorted(registers, key=lambda r: r.name):
        general_val = general.resolve(general.rho[register])
        concrete_val = concrete.resolve(concrete.rho[register])
        if isinstance(general_val, Opaque) and isinstance(concrete_val, Opaque):
            continue  # untracked data; any value matches any value
        if not mapping.unify(general_val, concrete_val):
            return None
    general_atoms = sorted(_spatial_atoms(general), key=_match_priority)
    concrete_atoms = _spatial_atoms(concrete)
    engine = lemmas.ACTIVE
    if engine.enabled and env is not None:
        # Empty-segment lemma, concrete side: an instance whose single
        # truncation point resolves equal to its root denotes emp (for
        # a verified unary predicate) and constrains nothing -- drop it
        # before the bijective search rather than forcing it to match.
        kept = []
        for candidate in concrete_atoms:
            if (
                isinstance(candidate, PredInstance)
                and len(candidate.truncs) == 1
                and concrete.resolve(candidate.args[0])
                == concrete.resolve(candidate.truncs[0])
                and engine.empty_lemma(env, candidate.pred) is not None
            ):
                mapping.lemmas_used += 1
                continue
            kept.append(candidate)
        concrete_atoms = kept
    result = _match_atoms(
        general_atoms,
        concrete_atoms,
        mapping,
        concrete,
        env,
        budget,
    )
    if result is None:
        return None
    if not _pure_atoms_hold(general, concrete, result):
        return None
    return result


def equivalent(
    a: AbstractState,
    b: AbstractState,
    env=None,
    step_limit: int = MATCH_STEP_LIMIT,
) -> bool:
    """Mutual subsumption (used for summary-context equivalence).

    Each direction is a full public :func:`subsumes` query with its own
    fresh match budget of *step_limit* steps: a first direction that
    burns most of its budget cannot starve (and thereby flip) the
    second.  Regression-pinned by ``test_logic_entailment.py``."""
    return (
        subsumes(a, b, env=env, step_limit=step_limit) is not None
        and subsumes(b, a, env=env, step_limit=step_limit) is not None
    )


def _spatial_atoms(state: AbstractState) -> list[HeapAssertion]:
    return list(state.spatial)


def _match_priority(atom: HeapAssertion) -> int:
    """Match the most constrained atoms first (points-to before
    predicate instances before regions)."""
    if isinstance(atom, PointsTo):
        return 0
    if isinstance(atom, Raw):
        return 1
    if isinstance(atom, PredInstance):
        return 2
    return 3


def _match_atoms(
    general_atoms: list[HeapAssertion],
    concrete_atoms: list[HeapAssertion],
    mapping: Mapping,
    concrete_state: AbstractState,
    env=None,
    budget: "_MatchBudget | None" = None,
) -> Mapping | None:
    """Backtracking search for a bijective spatial match."""
    if not general_atoms:
        return mapping if not concrete_atoms else None
    atom, rest = general_atoms[0], general_atoms[1:]

    if isinstance(atom, PredInstance):
        # Semantic allowance: root mapped to null means the base case,
        # which is emp and consumes no concrete atom.
        root_image = mapping.apply(atom.args[0])
        if isinstance(root_image, NullVal) and not atom.truncs:
            # The base case constrains nothing beyond the root.
            result = _match_atoms(
                rest, concrete_atoms, mapping.copy(), concrete_state, env, budget
            )
            if result is not None:
                return result
        elif root_image is not None and len(atom.truncs) == 1:
            # Empty-segment lemma, general side: a segment whose
            # truncation point can map to the same value as its root
            # denotes emp and consumes no concrete atom.  The trunc may
            # still be unbound here (its image is *chosen* to equal the
            # root's), so this is one more backtracking branch.
            engine = lemmas.ACTIVE
            if (
                engine.enabled
                and env is not None
                and engine.empty_lemma(env, atom.pred) is not None
            ):
                trial = mapping.copy()
                if trial.unify(atom.truncs[0], root_image):
                    trial.lemmas_used += 1
                    result = _match_atoms(
                        rest, concrete_atoms, trial, concrete_state, env, budget
                    )
                    if result is not None:
                        return result

    for index, candidate in enumerate(concrete_atoms):
        if budget is not None:
            budget.charge()
        trial = mapping.copy()
        if _unify_atom(atom, candidate, trial, env):
            remaining = concrete_atoms[:index] + concrete_atoms[index + 1:]
            result = _match_atoms(
                rest, remaining, trial, concrete_state, env, budget
            )
            if result is not None:
                return result

    engine = lemmas.ACTIVE
    if (
        engine.enabled
        and env is not None
        and isinstance(atom, PredInstance)
        and len(concrete_atoms) >= 2
    ):
        return _match_with_merges(
            general_atoms, concrete_atoms, mapping, concrete_state, env, budget
        )
    return None


def _match_with_merges(
    general_atoms: list[HeapAssertion],
    concrete_atoms: list[HeapAssertion],
    mapping: Mapping,
    concrete_state: AbstractState,
    env,
    budget: "_MatchBudget | None",
) -> Mapping | None:
    """Merge-lemma fallback: rewrite the *concrete* atom list by wand
    modus ponens -- an instance rooted at another instance's truncation
    point discharges that hole -- and retry the match.

    Each merge removes one concrete atom, so the rewriting terminates;
    every attempt is charged to the match budget.  A piece carrying its
    own truncation points only composes with a host of the *same*
    predicate (the hole a truncation leaves is typed by the instance's
    own predicate, so a cross-predicate piece must be complete)."""
    engine = lemmas.ACTIVE
    for i, host in enumerate(concrete_atoms):
        if not (isinstance(host, PredInstance) and host.truncs):
            continue
        for t_index, trunc in enumerate(host.truncs):
            cut = concrete_state.resolve(trunc)
            for j, piece in enumerate(concrete_atoms):
                if j == i or not isinstance(piece, PredInstance):
                    continue
                if piece.truncs and piece.pred != host.pred:
                    continue
                if concrete_state.resolve(piece.args[0]) != cut:
                    continue
                if budget is not None:
                    budget.charge()
                if engine.merge_lemma(env, piece.pred, host.pred) is None:
                    continue
                merged = PredInstance(
                    host.pred,
                    host.args,
                    truncs=host.truncs[:t_index]
                    + host.truncs[t_index + 1:]
                    + piece.truncs,
                )
                remaining = [
                    a for k, a in enumerate(concrete_atoms) if k not in (i, j)
                ]
                remaining.append(merged)
                trial = mapping.copy()
                trial.lemmas_used += 1
                result = _match_atoms(
                    general_atoms, remaining, trial, concrete_state, env, budget
                )
                if result is not None:
                    return result
    return None


def _unify_atom(
    general: HeapAssertion, concrete: HeapAssertion, m: Mapping, env=None
) -> bool:
    if isinstance(general, PointsTo):
        return (
            isinstance(concrete, PointsTo)
            and general.field == concrete.field
            and m.unify(general.src, concrete.src)
            and m.unify(general.target, concrete.target)
        )
    if isinstance(general, PredInstance):
        if not isinstance(concrete, PredInstance):
            return False
        preds_compatible = general.pred == concrete.pred or (
            env is not None
            and pred_implies(env, concrete.pred, general.pred)
        )
        if preds_compatible and len(general.args) == len(concrete.args):
            # Truncation points mapped to null disappear; to keep
            # matching syntactic we require equal truncation-point
            # counts here and let callers normalize null truncation
            # points away beforehand.
            if len(general.truncs) != len(concrete.truncs):
                return False
            return all(
                m.unify(ga, ca) for ga, ca in zip(general.args, concrete.args)
            ) and all(
                m.unify(gt, ct)
                for gt, ct in zip(general.truncs, concrete.truncs)
            )
        return _unify_bridged(general, concrete, m, env)
    if isinstance(general, Raw):
        return isinstance(concrete, Raw) and m.unify(general.loc, concrete.loc)
    if isinstance(general, Region):
        return isinstance(concrete, Region) and m.unify(general.base, concrete.base)
    return False


def _unify_bridged(
    general: PredInstance, concrete: PredInstance, m: Mapping, env
) -> bool:
    """Bridge-lemma fallback for a structurally incompatible instance
    pair: a verified ``concrete(b..) |= general(s(b..))`` lemma lets the
    pair unify through the lemma's parameter map instead of positionally.

    Restricted to complete instances -- a bridge is proved for whole
    predicates, and nothing relates the two sides' cut sub-structures."""
    engine = lemmas.ACTIVE
    if (
        not engine.enabled
        or env is None
        or general.pred == concrete.pred
        or general.truncs
        or concrete.truncs
    ):
        return False
    lemma = engine.bridge_lemma(env, concrete.pred, general.pred)
    if lemma is None or len(lemma.param_map) != len(general.args):
        return False
    for general_arg, entry in zip(general.args, lemma.param_map):
        if entry == ("null",):
            if not m.unify(general_arg, NULL_VAL):
                return False
        else:
            position = entry[1]
            if position >= len(concrete.args):
                return False
            if not m.unify(general_arg, concrete.args[position]):
                return False
    m.lemmas_used += 1
    return True


def _pure_atoms_hold(
    general: AbstractState, concrete: AbstractState, mapping: Mapping
) -> bool:
    """Condition (iii): mapped eq/ne atoms of *general* must be entailed."""
    for atom in general.pure.atoms():
        lhs = mapping.apply(general.resolve(atom.lhs))
        rhs = mapping.apply(general.resolve(atom.rhs))
        if lhs is None or rhs is None:
            continue  # mentions names outside the matched heap; vacuous
        if isinstance(lhs, Opaque) or isinstance(rhs, Opaque):
            continue  # untracked data
        if atom.op == "eq" and not concrete.pure.entails_eq(lhs, rhs):
            return False
        if atom.op == "ne":
            if not concrete.pure.entails_ne(lhs, rhs) and not _structurally_ne(
                concrete, lhs, rhs
            ):
                return False
    return True


def _structurally_ne(state: AbstractState, lhs: SymVal, rhs: SymVal) -> bool:
    """Disequality implied by the heap: an allocated location is not null,
    and two separately-asserted locations are distinct."""
    if isinstance(rhs, NullVal):
        lhs, rhs = rhs, lhs
    if isinstance(lhs, NullVal):
        return not isinstance(rhs, (NullVal, Opaque, OffsetVal)) and (
            state.spatial.is_allocated(rhs)
        )
    if isinstance(lhs, (Opaque, OffsetVal)) or isinstance(rhs, (Opaque, OffsetVal)):
        return False
    return (
        state.spatial.is_allocated(lhs)
        and state.spatial.is_allocated(rhs)
        and lhs != rhs
    )
