"""Lemma synthesis for the entailment fallback (split / merge / bridge).

Structural subsumption (:mod:`repro.logic.entailment`) pairs spatial
atoms one-to-one, so two states that describe the same heap through
*different decompositions* of the same recursive predicates are
rejected outright: a single segment ``P(h; c)`` never matches the
composition ``P(h; m) * P(m; c)``, and an instance whose truncation
point coincides with its root (``P(x; x)`` -- the empty segment) never
matches ``emp``.  Following the lemma-synthesis line of work (Ta et
al., arXiv 1710.09635; Le, arXiv 1710.06515), this module synthesizes
and *verifies* exactly the bridging lemmas those gaps need, so the
matcher can consult them as additional semantic allowances:

**split** (empty-segment collapse)
    ``emp |= P(x; x)`` for a unary predicate ``P``.  Sound by the wand
    reading of truncation points documented in
    :mod:`repro.logic.assertions`: ``P(x; x)`` is
    ``(exists b. P(x, b..)) --* P(x)``, which the empty heap satisfies
    whenever the predicate has no parameters beyond its root (for a
    wider arity the wand's existentially chosen arguments could
    disagree with the instance's fixed ones, so the lemma is restricted
    to arity 1).  This is the base case of the classic segment-split
    lemma ``P(x) |= P(x; y) * P(y)``.

**merge** (wand modus ponens)
    ``Q(t, q..) * P(v..; t, u..) |= P(v..; u..)`` -- a complete
    instance rooted at a truncation point discharges that hole.  Sound
    when ``Q(t, q..)`` entails the existential closure of the cut
    sub-structure (:func:`repro.logic.implication.implies_existential`)
    and ``Q`` is reachable from ``P``'s recursive calls; this is the
    same rewrite :func:`repro.analysis.fold.fold_state` applies
    bottom-up to dead cut points, re-used here for the entailment
    direction where the cut point is live.

**bridge** (cross-predicate reroot)
    ``Q(b1..bn) |= P(s(b1..bn))`` for structurally compatible
    predicates whose parameter lists differ (a re-rooted or
    re-parameterized definition of the same shape).  The parameter map
    ``s`` is *proposed* by anti-unification over the two definitions'
    one-step unfoldings (:func:`repro.synthesis.antiunify.anti_unify`)
    and *verified* by the coinductive argument-sensitive implication
    check before use.

Every candidate is verified by **self-derivation** before it is ever
consulted -- the same discipline as the store's validation-on-read: the
participating definitions must re-derive themselves (bounded unfold
then fold in a scratch environment), and merge candidates must
additionally *materialize*: folding ``P(r; t) * Q(t)`` in a scratch
state must actually produce ``P(r)``.  A candidate that fails any
check is recorded as *refuted* under the same key, so the negative
verdict is cached exactly like the positive one.  A wrong or refuted
lemma therefore degrades to a structural miss (the matcher simply
lacks an allowance), never to a wrong verdict; DESIGN.md §11 gives the
full argument.

Verified and refuted lemmas are cached under a **canonical pair key**
-- a structural, discovery-order serialization of the participating
definitions that is invariant under renaming of predicates and
parameters -- in a :class:`repro.perf.cache.LemmaCache`, and persisted
through the durable store (``SummaryStore.consult_lemma`` /
``record_lemma``) where validation-on-read re-verifies them from
scratch.

Like the tracer/metrics and the entailment cache, the *active* engine
is module-level (``lemmas.ACTIVE``) because ``subsumes`` sits too deep
to thread an engine through every call site; outside
:func:`activate_lemmas` the null engine is installed and every hook is
one attribute check.  ``ShapeAnalysis`` activates an engine per run
(``--no-lemmas`` / ``enable_lemmas=False`` keeps the null engine, which
restores the purely structural matcher bit-for-bit).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro import obs
from repro.logic.heapnames import fresh_var
from repro.logic.implication import implies_existential
from repro.logic.assertions import PredInstance
from repro.logic.predicates import (
    AnyArg,
    NullArg,
    ParamArg,
    PredicateEnv,
    RecTarget,
)

__all__ = [
    "ACTIVE",
    "Lemma",
    "LemmaEngine",
    "NULL_ENGINE",
    "NullLemmaEngine",
    "activate_lemmas",
    "pair_key",
    "structural_serial",
]

#: Bump when lemma *semantics* change: part of every pair key and of the
#: entailment-cache token, so stale cached verdicts can never replay.
LEMMA_SCHEMA = 1

#: Cap on (synthesize + verify) attempts per engine; beyond it the
#: engine answers "no lemma" without searching.  Misses are cached, so
#: a converging analysis asks about few distinct pairs -- the cap only
#: guards pathological environments that mint unbounded definitions.
MAX_ATTEMPTS = 256


# ----------------------------------------------------------------------
# Canonical pair keys
# ----------------------------------------------------------------------

def structural_serial(env: PredicateEnv, root: str) -> tuple:
    """Alpha-invariant serialization of *root*'s definition cluster.

    Definitions are visited depth-first from *root* (fields in name
    order, recursive calls in index order) and named by discovery
    index, so two environments holding the same structures under
    different predicate names serialize identically.  Predicate names
    never appear in the output -- only discovery indices -- which is
    what makes the pair key invariant under alpha-renaming (pinned by
    ``test_lemma_properties.py``).
    """
    order: dict[str, int] = {}
    defs: list[tuple] = []

    def visit(name: str) -> int:
        if name in order:
            return order[name]
        index = len(order)
        order[name] = index
        slot = len(defs)
        defs.append(())  # reserve; filled after children resolve
        if name not in env:
            defs[slot] = ("undef", index)
            return index
        d = env[name]
        fields = tuple(
            (spec.field, _serial_arg(spec.target))
            for spec in sorted(d.fields, key=lambda s: s.field)
        )
        calls = tuple(
            (visit(call.pred), tuple(_serial_arg(a) for a in call.args))
            for call in d.rec_calls
        )
        defs[slot] = ("def", index, d.arity, fields, calls)
        return index

    visit(root)
    return tuple(defs)


def _serial_arg(arg) -> tuple:
    if isinstance(arg, NullArg):
        return ("null",)
    if isinstance(arg, ParamArg):
        return ("param", arg.index)
    if isinstance(arg, RecTarget):
        return ("rec", arg.index)
    if isinstance(arg, AnyArg):
        return ("any",)
    return ("?", repr(arg))


def pair_key(env: PredicateEnv, kind: str, concrete: str, general: str) -> str:
    """Canonical cache/store key for a lemma about (*concrete*, *general*).

    Built from the two definitions' structural serializations -- never
    their names -- plus the lemma kind and schema, so alpha-renaming
    either side (or both) keys identically.
    """
    return repr(
        (
            "lemma",
            LEMMA_SCHEMA,
            kind,
            structural_serial(env, concrete),
            structural_serial(env, general),
        )
    )


# ----------------------------------------------------------------------
# Lemmas
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Lemma:
    """One verified bridging lemma.

    ``param_map`` is only meaningful for ``bridge`` lemmas: position
    ``i`` of the *general* instance's arguments is obtained from the
    *concrete* instance as ``("param", j)`` (its ``j``-th argument) or
    ``("null",)``.
    """

    kind: str  # "empty" | "merge" | "bridge"
    concrete_pred: str
    general_pred: str
    key: str
    param_map: tuple = ()

    def to_payload(self) -> dict:
        return {
            "schema": LEMMA_SCHEMA,
            "kind": self.kind,
            "concrete": self.concrete_pred,
            "general": self.general_pred,
            "param_map": [list(entry) for entry in self.param_map],
        }


def _report(name: str, amount: int = 1) -> None:
    metrics = obs.METRICS
    if metrics.enabled:
        metrics.inc(name, amount)


# ----------------------------------------------------------------------
# Verification (self-derivation discipline)
# ----------------------------------------------------------------------

def _scratch_env(env: PredicateEnv, names: "tuple[str, ...]") -> PredicateEnv:
    """A scratch environment holding the definition clusters of *names*."""
    # Imported lazily: fold lives above logic in the layer order.
    from repro.analysis.fold import _reachable_preds

    scratch = PredicateEnv()
    for name in names:
        for reachable in sorted(_reachable_preds(env, name)):
            if reachable in env and reachable not in scratch:
                scratch.add(env[reachable])
    return scratch


def _well_formed(env: PredicateEnv, name: str) -> bool:
    """Store-style self-derivation: unfolding *name* at fresh arguments
    and folding back in a scratch environment must yield exactly one
    complete instance at the unfold root.  A definition that cannot
    re-derive itself supports no lemma."""
    from repro.analysis.fold import fold_state
    from repro.logic.state import AbstractState, AnalysisStuck

    if name not in env:
        return False
    definition = env[name]
    scratch = _scratch_env(env, (name,))
    try:
        args = tuple(
            fresh_var("r" if i == 0 else "a") for i in range(definition.arity)
        )
        points_to, instances, _bound = definition.unfold_body(args)
        state = AbstractState()
        for atom in points_to:
            state.spatial.add(atom)
        for instance in instances:
            state.spatial.add(instance)
        fold_state(state, scratch, keep_registers=True)
    except (ValueError, AnalysisStuck):
        return False
    atoms = list(state.spatial)
    return (
        len(atoms) == 1
        and isinstance(atoms[0], PredInstance)
        and atoms[0].pred == definition.name
        and atoms[0].args[0] == args[0]
        and not atoms[0].truncs
    )


def _verify_empty(env: PredicateEnv, pred: str) -> bool:
    """``emp |= P(x; x)``: sound for a unary, well-formed ``P`` by the
    wand reading of truncation points (module docstring)."""
    return pred in env and env[pred].arity == 1 and _well_formed(env, pred)


def _verify_merge(env: PredicateEnv, piece: str, host: str) -> bool:
    """``piece(t, ..) * host(v..; t, u..) |= host(v..; u..)``.

    Three gates, mirroring fold's bottom-up absorption: *piece* must be
    reachable from *host*'s recursive calls (the hole a truncation
    point leaves is typed by those calls), *piece* must entail the
    existential closure of *host*'s cut sub-structure, and the rewrite
    must **materialize** -- folding ``host(r; t) * piece(t)`` in a
    scratch state must actually produce the complete ``host(r)``."""
    from repro.analysis.fold import _reachable_preds, fold_state
    from repro.logic.state import AbstractState, AnalysisStuck

    if piece not in env or host not in env:
        return False
    if piece not in _reachable_preds(env, host):
        return False
    if not implies_existential(env, piece, host):
        return False
    if not (_well_formed(env, piece) and _well_formed(env, host)):
        return False
    scratch = _scratch_env(env, (piece, host))
    root = fresh_var("r")
    cut = fresh_var("t")
    host_args = (root,) + tuple(
        fresh_var("a") for _ in range(env[host].arity - 1)
    )
    piece_args = (cut,) + tuple(
        fresh_var("a") for _ in range(env[piece].arity - 1)
    )
    state = AbstractState()
    state.spatial.add(PredInstance(host, host_args, truncs=(cut,)))
    state.spatial.add(PredInstance(piece, piece_args))
    try:
        fold_state(state, scratch, keep_registers=True)
    except (ValueError, AnalysisStuck):
        return False
    atoms = list(state.spatial)
    return (
        len(atoms) == 1
        and isinstance(atoms[0], PredInstance)
        and atoms[0].pred == host
        and atoms[0].args[0] == root
        and not atoms[0].truncs
    )


# ----------------------------------------------------------------------
# Bridge proposal (anti-unification) and verification
# ----------------------------------------------------------------------

def _unfold_term(env: PredicateEnv, pred: str):
    """One-step unfolding of *pred* as a synthesis term: a ``StarTerm``
    whose field targets encode the definition's argument expressions
    (parameters as ``VarTerm``, recursive calls as ``PredTerm``)."""
    from repro.synthesis.terms import (
        HOLE,
        NULL_TERM,
        PredTerm,
        StarTerm,
        VarTerm,
    )

    definition = env[pred]

    def arg_term(arg):
        if isinstance(arg, NullArg):
            return NULL_TERM
        if isinstance(arg, ParamArg):
            return VarTerm(arg.index)
        if isinstance(arg, RecTarget):
            call = definition.rec_calls[arg.index]
            return PredTerm(
                call.pred,
                tuple(arg_term(a) for a in call.args),
                loc=None,
            )
        return HOLE

    specs = sorted(definition.fields, key=lambda s: s.field)
    return StarTerm(
        tuple(s.field for s in specs),
        tuple(arg_term(s.target) for s in specs),
        loc=None,
    )


def _propose_bridge_map(
    env: PredicateEnv, concrete: str, general: str
) -> "tuple | None":
    """Anti-unify the two one-step unfoldings; read the parameter map
    off the anti-unifier's variable table.

    Where the generalization introduced a variable over the pair
    ``(general side, concrete side)``, a ``VarTerm(i)`` against a
    ``VarTerm(j)`` proposes ``general param i := concrete param j`` and
    a ``VarTerm(i)`` against ``NullTerm`` proposes ``:= null``.  Any
    unmapped general parameter (beyond the shared root) defeats the
    proposal."""
    from repro.synthesis.antiunify import anti_unify
    from repro.synthesis.terms import NullTerm, VarTerm

    general_term = _unfold_term(env, general)
    concrete_term = _unfold_term(env, concrete)
    if general_term.fields != concrete_term.fields:
        return None
    au = anti_unify([general_term, concrete_term])
    if au is None:
        return None
    mapping: dict[int, tuple] = {0: ("param", 0)}
    for values in au.var_values.values():
        general_side, concrete_side = values[0], values[1]
        if not isinstance(general_side, VarTerm):
            continue
        if isinstance(concrete_side, VarTerm):
            proposal = ("param", concrete_side.index)
        elif isinstance(concrete_side, NullTerm):
            proposal = ("null",)
        else:
            return None  # parameter against structure: no finite map
        existing = mapping.get(general_side.index)
        if existing is not None and existing != proposal:
            return None
        mapping[general_side.index] = proposal
    arity = env[general].arity
    if set(mapping) != set(range(arity)):
        return None
    return tuple(mapping[i] for i in range(arity))


def _verify_bridge(
    env: PredicateEnv, concrete: str, general: str, param_map: tuple
) -> bool:
    """Coinductive check that ``concrete(b..)`` entails
    ``general(param_map(b..))`` -- the argument-sensitive analogue of
    :func:`repro.logic.implication.pred_implies`."""
    if concrete not in env or general not in env:
        return False
    if not (_well_formed(env, concrete) and _well_formed(env, general)):
        return False
    return _bridge_implies(env, concrete, general, param_map, frozenset())


def _bridge_implies(
    env: PredicateEnv,
    concrete: str,
    general: str,
    param_map: tuple,
    assumed: frozenset,
) -> bool:
    key = (concrete, general, param_map)
    if key in assumed:
        return True  # coinductive hypothesis
    assumed = assumed | {key}
    c, g = env[concrete], env[general]
    if len(param_map) != g.arity or not param_map or param_map[0] != ("param", 0):
        return False
    c_fields = {spec.field: spec.target for spec in c.fields}
    g_fields = {spec.field: spec.target for spec in g.fields}
    if set(c_fields) != set(g_fields):
        return False
    for field_name, g_target in g_fields.items():
        c_target = c_fields[field_name]
        if isinstance(g_target, AnyArg):
            continue
        if isinstance(g_target, NullArg):
            if not isinstance(c_target, NullArg):
                return False
            continue
        if isinstance(g_target, ParamArg):
            expected = param_map[g_target.index]
            if expected == ("null",):
                if not isinstance(c_target, NullArg):
                    return False
            elif not (
                isinstance(c_target, ParamArg)
                and expected == ("param", c_target.index)
            ):
                return False
            continue
        # g_target is a RecTarget: null satisfies any base case;
        # otherwise align the recursive calls and recurse with the
        # argument map induced on the callees.
        if isinstance(c_target, NullArg):
            continue
        if not isinstance(c_target, RecTarget):
            return False
        g_call = g.rec_calls[g_target.index]
        c_call = c.rec_calls[c_target.index]
        callee_map = _induced_callee_map(
            g_call, c_call, param_map, env[g_call.pred].arity
            if g_call.pred in env else None,
        )
        if callee_map is None:
            return False
        if not _bridge_implies(
            env, c_call.pred, g_call.pred, callee_map, assumed
        ):
            return False
    return True


def _induced_callee_map(g_call, c_call, param_map, callee_arity):
    """The parameter map the outer *param_map* induces on an aligned
    pair of recursive calls, or None when the arguments cannot be made
    to correspond.

    Position 0 (both callees' roots) is the shared fresh field target.
    The fragment is index-aligned: the general callee's position ``p``
    is fed from the concrete callee's position ``p``, which is accepted
    only when the two call-argument expressions denote the same value
    under the outer map (the concrete call may pass *extra* trailing
    arguments -- the general side never looks at them)."""
    if callee_arity is None or len(g_call.args) != callee_arity - 1:
        return None
    induced: list = [("param", 0)]
    for position in range(1, callee_arity):
        g_arg = g_call.args[position - 1]
        c_arg = (
            c_call.args[position - 1]
            if position - 1 < len(c_call.args)
            else None
        )
        if isinstance(g_arg, NullArg):
            if not isinstance(c_arg, NullArg):
                return None
            induced.append(("null",))
            continue
        if isinstance(g_arg, ParamArg):
            expected = param_map[g_arg.index]
            if expected == ("null",):
                if not isinstance(c_arg, NullArg):
                    return None
                induced.append(("null",))
                continue
            if (
                isinstance(c_arg, ParamArg)
                and expected == ("param", c_arg.index)
            ):
                induced.append(("param", position))
                continue
            return None
        # AnyArg / RecTarget call arguments: outside this fragment (an
        # AnyArg existential cannot be tied consistently across uses).
        return None
    return tuple(induced)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class LemmaEngine:
    """Budgeted synthesize-verify-cache pipeline consulted by the
    entailment matcher.  One instance per analysis run."""

    enabled = True

    def __init__(self, cache=None, store=None, max_attempts: int = MAX_ATTEMPTS):
        if cache is None:
            from repro.perf.cache import LemmaCache

            cache = LemmaCache()
        self.cache = cache
        self.store = store
        self.max_attempts = max_attempts
        self.attempts = 0
        self.verified = 0
        self.refuted = 0
        self._busy = 0  # re-entrancy guard around verification

    def token(self) -> tuple:
        """Entailment-cache key component: verdicts reached with lemmas
        must never collide with verdicts reached without."""
        return ("lemmas", LEMMA_SCHEMA)

    # -- public lookups -------------------------------------------------
    def empty_lemma(self, env, pred: str) -> "Lemma | None":
        """Verified ``emp |= pred(x; x)`` lemma, or None."""
        if env is None or self._busy:
            return None
        return self._lookup(
            env, "empty", pred, pred,
            lambda: _verify_empty(env, pred) and Lemma(
                "empty", pred, pred, pair_key(env, "empty", pred, pred)
            ) or None,
        )

    def merge_lemma(self, env, piece: str, host: str) -> "Lemma | None":
        """Verified merge of a *piece* instance into a *host* hole."""
        if env is None or self._busy:
            return None
        return self._lookup(
            env, "merge", piece, host,
            lambda: _verify_merge(env, piece, host) and Lemma(
                "merge", piece, host, pair_key(env, "merge", piece, host)
            ) or None,
        )

    def bridge_lemma(self, env, concrete: str, general: str) -> "Lemma | None":
        """Verified cross-predicate ``concrete(b..) |= general(s(b..))``."""
        if env is None or self._busy:
            return None

        def synthesize():
            param_map = _propose_bridge_map(env, concrete, general)
            if param_map is None:
                return None
            if not _verify_bridge(env, concrete, general, param_map):
                return None
            return Lemma(
                "bridge", concrete, general,
                pair_key(env, "bridge", concrete, general), param_map,
            )

        return self._lookup(env, "bridge", concrete, general, synthesize)

    # -- pipeline -------------------------------------------------------
    def _lookup(self, env, kind, concrete, general, synthesize):
        key = pair_key(env, kind, concrete, general)
        found = self.cache.lookup(key)
        if found is not None:
            _report("entailment.lemma.cache.hits")
            return found[0]
        _report("entailment.lemma.cache.misses")
        lemma = self._consult_store(env, kind, key, concrete, general)
        if lemma is None:
            if self.attempts >= self.max_attempts:
                return None  # budget exhausted; deliberately uncached
            self.attempts += 1
            _report("entailment.lemma.attempts")
            self._busy += 1
            try:
                lemma = synthesize() or None
            finally:
                self._busy -= 1
            tracer = obs.TRACER
            if tracer.enabled:
                tracer.event(
                    "entailment.lemma.synthesize",
                    kind=kind,
                    concrete=concrete,
                    general=general,
                    verified=lemma is not None,
                )
        if lemma is not None:
            self.verified += 1
            _report("entailment.lemma.verified")
        else:
            self.refuted += 1
            _report("entailment.lemma.refuted")
        self.cache.store(key, lemma)
        if lemma is not None:
            self._record_store(key, lemma)
        return lemma

    # -- durable store --------------------------------------------------
    def _consult_store(self, env, kind, key, concrete, general):
        """Durable-store lookup; every hit is re-verified from scratch
        (validation-on-read) before it is trusted."""
        if self.store is None:
            return None
        payload = self.store.consult_lemma(key)
        if payload is None:
            return None
        if (
            payload.get("schema") != LEMMA_SCHEMA
            or payload.get("kind") != kind
        ):
            self.store.reject_lemma(key, "schema/kind mismatch")
            return None
        param_map = tuple(
            tuple(entry) for entry in payload.get("param_map", [])
        )
        self._busy += 1
        try:
            if kind == "empty":
                ok = _verify_empty(env, general)
            elif kind == "merge":
                ok = _verify_merge(env, concrete, general)
            elif kind == "bridge":
                ok = _verify_bridge(env, concrete, general, param_map)
            else:
                ok = False
        finally:
            self._busy -= 1
        if not ok:
            self.store.reject_lemma(key, "failed re-verification")
            return None
        return Lemma(kind, concrete, general, key, param_map)

    def _record_store(self, key, lemma: Lemma) -> None:
        if self.store is not None:
            self.store.record_lemma(key, lemma.to_payload())

    def stats(self) -> dict:
        return {
            "attempts": self.attempts,
            "verified": self.verified,
            "refuted": self.refuted,
            **{f"cache_{k}": v for k, v in self.cache.stats().items()},
        }


class NullLemmaEngine:
    """Disabled engine: the hot-path guard is one attribute load."""

    enabled = False

    def token(self) -> None:
        return None

    def empty_lemma(self, env, pred) -> None:
        return None

    def merge_lemma(self, env, piece, host) -> None:
        return None

    def bridge_lemma(self, env, concrete, general) -> None:
        return None

    def stats(self) -> dict:
        return {}


NULL_ENGINE = NullLemmaEngine()

#: The active engine, swapped per analysis run by :func:`activate_lemmas`.
ACTIVE: "LemmaEngine | NullLemmaEngine" = NULL_ENGINE


@contextmanager
def activate_lemmas(engine):
    """Install *engine* as the active lemma engine for the duration of
    the block (restored on exit, exception or not)."""
    global ACTIVE
    saved = ACTIVE
    ACTIVE = engine if engine is not None else NULL_ENGINE
    try:
        yield
    finally:
        ACTIVE = saved
