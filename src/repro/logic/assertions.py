"""Atomic heap assertions (paper, Table 1).

``H ::= h1.n |-> h2  |  A(h1, ..., hn[; h'1, ..., h'm])``

plus two bookkeeping assertions needed to model the paper's treatment
of allocation:

* :class:`Raw` -- ``a.? |-> ?``: a freshly allocated cell whose fields
  have not been written yet (the MALLOC rule of Table 2 "simply
  registers a as an allocated heap node whose content is unknown").
* :class:`Region` -- an array allocation used for application-level
  memory management (the ``nodes = malloc(MAX_NODES)`` idiom of
  181.mcf).  Individual slots ``base + k`` materialize as :class:`Raw`
  cells on first use; aliasing between the pointer arithmetic and the
  access-path name given by ``rearrange_names`` is recorded in the pure
  formula.

:class:`PredInstance` carries the optional *truncation points* of
Section 2.1: ``A(h1..hn; t1..tm)`` denotes the structure rooted at
``h1`` with the (mutually disjoint) sub-structures rooted at the ``ti``
cut out -- formally ``(*_i exists b. A(ti, b...)) --* A(h1..hn)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.logic.heapnames import HeapName, rename_name
from repro.logic.symvals import SymVal, rename_symval

__all__ = ["PointsTo", "PredInstance", "Raw", "Region", "HeapAssertion"]


@dataclass(frozen=True, slots=True)
class PointsTo:
    """``src.field |-> target``."""

    src: HeapName
    field: str
    target: SymVal

    def rename(self, old: HeapName, new: HeapName) -> "PointsTo":
        return PointsTo(
            rename_name(self.src, old, new),
            self.field,
            rename_symval(self.target, old, new),
        )

    def __str__(self) -> str:
        return f"{self.src}.{self.field}|->{self.target}"


@dataclass(frozen=True, slots=True)
class PredInstance:
    """``pred(args...; truncs...)`` -- an instance of a recursive predicate.

    ``args[0]`` is the root of the structure; the remaining args are the
    targets of the structure's backward links.  ``truncs`` lists the
    truncation points (may be empty).
    """

    pred: str
    args: tuple[SymVal, ...]
    truncs: tuple[HeapName, ...] = ()

    @property
    def root(self) -> SymVal:
        return self.args[0]

    def with_truncs(self, truncs: tuple[HeapName, ...]) -> "PredInstance":
        return replace(self, truncs=tuple(truncs))

    def rename(self, old: HeapName, new: HeapName) -> "PredInstance":
        return PredInstance(
            self.pred,
            tuple(rename_symval(a, old, new) for a in self.args),
            tuple(rename_name(t, old, new) for t in self.truncs),
        )

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        if self.truncs:
            args += "; " + ", ".join(str(t) for t in self.truncs)
        return f"{self.pred}({args})"


@dataclass(frozen=True, slots=True)
class Raw:
    """``loc.? |-> ?``: allocated, contents unknown.

    ``written`` records which fields have since been given explicit
    points-to assertions (those fields are no longer covered by the raw
    cell, keeping the spatial conjunction disjoint).
    """

    loc: HeapName
    written: frozenset[str] = frozenset()

    def with_field(self, field: str) -> "Raw":
        return Raw(self.loc, self.written | {field})

    def rename(self, old: HeapName, new: HeapName) -> "Raw":
        return Raw(rename_name(self.loc, old, new), self.written)

    def __str__(self) -> str:
        return f"{self.loc}.?|->?"


@dataclass(frozen=True, slots=True)
class Region:
    """An array allocation rooted at *base*.

    ``carved`` records the element offsets whose cells have been
    materialized out of the region (offset 0 is the base cell itself).
    Symbolically-indexed slots collapse; the paper's low-level pointer
    analysis treatment ("indistinguishable array elements are collapsed
    into one element") corresponds to materializing at most one cell per
    distinguishable offset.
    """

    base: HeapName
    carved: frozenset[int] = frozenset()

    def with_carved(self, delta: int) -> "Region":
        return Region(self.base, self.carved | {delta})

    def rename(self, old: HeapName, new: HeapName) -> "Region":
        return Region(rename_name(self.base, old, new), self.carved)

    def __str__(self) -> str:
        return f"region({self.base})"


HeapAssertion = PointsTo | PredInstance | Raw | Region
