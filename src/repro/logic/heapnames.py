"""Heap names: ``h ::= g | a | h.n`` (paper, Table 1).

Heap locations are named by *access paths*: a root (a global ``g`` or a
logic variable ``a``) followed by a chain of field selections.  The
paper's central trick (Section 2.2, ``rearrange_names``) is that these
names are not arbitrary: the analysis renames locations so that the
access path of each name spells out the acyclic backbone of the
recursive data structure the location belongs to, and the recursion
synthesis algorithm (Section 3) reads the recursive pattern straight
out of the names.

Names are immutable; renaming produces new names.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "HeapName",
    "GlobalLoc",
    "Var",
    "FieldPath",
    "fresh_var",
    "reset_fresh_counter",
    "fresh_counter_value",
    "advance_fresh_counter",
    "root_of",
    "path_of",
    "is_prefix",
    "rename_name",
]


@dataclass(frozen=True, slots=True)
class GlobalLoc:
    """Heap location allocated for a global variable ``g``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Var:
    """A logic variable ``a`` naming an anonymous heap location."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FieldPath:
    """An access-path name ``h.n``."""

    base: "HeapName"
    field: str

    def __str__(self) -> str:
        return f"{self.base}.{self.field}"


HeapName = GlobalLoc | Var | FieldPath

_counter = 0


def fresh_var(hint: str = "a") -> Var:
    """A globally fresh logic variable.

    Freshness is process-global so that names never collide across
    states, frames and procedure summaries.
    """
    global _counter
    _counter += 1
    return Var(f"{hint}{_counter}")


def reset_fresh_counter() -> None:
    """Reset the fresh-name counter (tests only, for stable output)."""
    global _counter
    _counter = 0


def fresh_counter_value() -> int:
    """The number of fresh variables minted so far.

    The unfold memo records the counter window a cached rearrangement
    consumed so a replay can re-advance the counter identically; both
    sides of the cache-on/off differential then mint the same names for
    everything downstream.
    """
    return _counter


def advance_fresh_counter(count: int) -> int:
    """Consume *count* fresh numbers without minting variables.

    Returns the counter value before advancing.  Used when replaying a
    memoized unfold: the cached case analysis originally consumed a
    window of the counter, and the replay must consume a window of the
    same width to keep later fresh names aligned with an uncached run.
    """
    global _counter
    before = _counter
    _counter += count
    return before


def root_of(name: HeapName) -> GlobalLoc | Var:
    """The root of an access path (``root_of(a.f.g) == a``)."""
    while isinstance(name, FieldPath):
        name = name.base
    return name


def path_of(name: HeapName) -> tuple[str, ...]:
    """The field chain of an access path, outermost last."""
    fields: list[str] = []
    while isinstance(name, FieldPath):
        fields.append(name.field)
        name = name.base
    fields.reverse()
    return tuple(fields)


def is_prefix(short: HeapName, long: HeapName) -> bool:
    """Is *short* a (non-strict) prefix of the access path *long*?

    ``rearrange_names`` uses this to refuse cyclic renamings: a store
    creating a link whose target is a prefix of the source's access path
    is a backward link, and the target keeps its existing name.
    """
    node: HeapName = long
    while True:
        if node == short:
            return True
        if not isinstance(node, FieldPath):
            return False
        node = node.base


def rename_name(name: HeapName, old: HeapName, new: HeapName) -> HeapName:
    """Replace *old* with *new* everywhere inside *name* (prefix-aware)."""
    if name == old:
        return new
    if isinstance(name, FieldPath):
        base = rename_name(name.base, old, new)
        if base is not name.base:
            return FieldPath(base, name.field)
    return name
