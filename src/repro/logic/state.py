"""Abstract states ``rho | S | F`` (paper, Section 2.1).

``rho`` maps registers to symbolic values, ``S`` is the spatial formula
and ``F`` the pure formula.  The semantic bracket ``[.]_{rho,F}``
evaluating operands to heap names (or null) follows the paper: pointer
arithmetic resolves through recorded aliases, and an unaliased ``h + n``
is given a fresh name (materialized out of the array region it indexes,
when one is present).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.values import Global, IntConst, Null, Operand, Register
from repro.logic.assertions import PointsTo, PredInstance, Raw, Region
from repro.logic.formula import PureFormula, SpatialFormula
from repro.logic.heapnames import GlobalLoc, HeapName, Var, fresh_var
from repro.logic.symvals import (
    NULL_VAL,
    NullVal,
    OffsetVal,
    Opaque,
    SymVal,
    offset,
    rename_symval,
)

__all__ = ["AbstractState", "AnalysisStuck"]


class AnalysisStuck(Exception):
    """The abstract execution cannot proceed (e.g. a store through a
    pointer the heap formula does not cover).  The paper's analysis
    "gets stuck" in the same situations; the engine reports failure."""


@dataclass
class AbstractState:
    """One abstract state ``rho | S | F``.

    ``anchors`` marks heap locations that pre-exist the current
    procedure activation (the roots passed in as parameters, and
    globals); ``rearrange_names`` treats them as already linked to a
    parent in the caller's world and never renames them into a local
    access path.
    """

    rho: dict[Register, SymVal] = field(default_factory=dict)
    spatial: SpatialFormula = field(default_factory=SpatialFormula)
    pure: PureFormula = field(default_factory=PureFormula)
    anchors: frozenset[HeapName] = frozenset()

    def copy(self) -> "AbstractState":
        return AbstractState(
            dict(self.rho), self.spatial.copy(), self.pure.copy(), self.anchors
        )

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------
    def eval_operand(self, operand: Operand) -> SymVal:
        """Symbolic value of an instruction operand."""
        if isinstance(operand, Null):
            return NULL_VAL
        if isinstance(operand, Global):
            return GlobalLoc(operand.name)
        if isinstance(operand, IntConst):
            return Opaque(f"int{operand.value}")
        value = self.rho.get(operand)
        if value is None:
            value = Opaque(f"reg:{operand.name}")
            self.rho[operand] = value
        return value

    def resolve(self, value: SymVal) -> SymVal:
        """Resolve pointer arithmetic through aliases (no materialization)."""
        return self.pure.resolve(value)

    def eval_to_location(self, operand: Operand) -> HeapName:
        """The paper's ``[.]_{rho,F}`` restricted to locations.

        Resolves aliases; an unaliased ``h + n`` gets a fresh variable
        name (recorded as an alias, and carved out of ``h``'s region
        when one exists).  Raises :class:`AnalysisStuck` on null or
        opaque values used as addresses.
        """
        value = self.resolve(self.eval_operand(operand))
        if isinstance(value, NullVal):
            raise AnalysisStuck("null dereference in abstract execution")
        if isinstance(value, Opaque):
            raise AnalysisStuck(f"address is not a tracked pointer: {value}")
        if isinstance(value, OffsetVal):
            name = fresh_var()
            self.pure.record_alias(value, name)
            self._carve_from_region(value.base, name)
            return name
        return value

    def _carve_from_region(self, base: HeapName, name: HeapName) -> None:
        region = self.spatial.region_at(base)
        if region is not None:
            self.spatial.add(Raw(name))

    def materialize_cell(self, name: HeapName) -> None:
        """Ensure a cell exists at *name* if it indexes into a region.

        Used when a store targets a region slot whose name was created
        earlier (e.g. as the dangling target of a previous store) but
        whose cell has not been carved yet.
        """
        if self.spatial.is_allocated(name):
            return
        for offset_val, alias in self.pure.aliases().items():
            if alias == name and self.spatial.region_at(offset_val.base) is not None:
                self.spatial.add(Raw(name))
                return

    # ------------------------------------------------------------------
    # Assumptions (the paper's filter(c))
    # ------------------------------------------------------------------
    def assume_eq(self, lhs: SymVal, rhs: SymVal) -> bool:
        """Assume ``lhs == rhs``; False means the state is infeasible."""
        lhs, rhs = self.resolve(lhs), self.resolve(rhs)
        if lhs == rhs:
            return True
        if self.pure.entails_ne(lhs, rhs):
            return False
        if isinstance(rhs, NullVal):
            lhs, rhs = rhs, lhs
        if isinstance(lhs, NullVal):
            return self._assume_null(rhs)
        if isinstance(lhs, Opaque) or isinstance(rhs, Opaque):
            self.pure.assume("eq", lhs, rhs)
            return True
        # Two location values: distinct allocated cells cannot alias.
        lhs_alloc = not isinstance(lhs, OffsetVal) and self.spatial.is_allocated(lhs)
        rhs_alloc = not isinstance(rhs, OffsetVal) and self.spatial.is_allocated(rhs)
        if lhs_alloc and rhs_alloc:
            return False
        self.pure.assume("eq", lhs, rhs)
        return True

    def _assume_null(self, value: SymVal) -> bool:
        """Assume a location value is null."""
        if isinstance(value, OffsetVal):
            # A strictly-interior array pointer is never null.
            return False
        if self.pure.entails_ne(value, NULL_VAL):
            return False
        if self.spatial.points_to_from(value) or self.spatial.raw_at(value):
            return False
        if self.spatial.region_at(value) is not None:
            return False
        instance = self.spatial.instance_rooted_at(value)
        if instance is not None:
            if instance.truncs:
                # A truncated structure has at least the cells between the
                # root and its truncation points; the root is not null.
                return False
            self.spatial.remove(instance)
        # Truncation point equal to null: the cut-out sub-structure is
        # empty, so the truncation point just disappears
        # ((emp --* A(..)) == A(..)).
        for inst in self.spatial.instances_truncated_at(value):
            remaining = tuple(t for t in inst.truncs if t != value)
            self.spatial.replace(inst, inst.with_truncs(remaining))
        self.substitute_value(value, NULL_VAL)
        return True

    def assume_ne(self, lhs: SymVal, rhs: SymVal) -> bool:
        """Assume ``lhs != rhs``; False means the state is infeasible."""
        lhs, rhs = self.resolve(lhs), self.resolve(rhs)
        if lhs == rhs:
            return False
        if self.pure.entails_eq(lhs, rhs):
            return False
        self.pure.assume("ne", lhs, rhs)
        return True

    # ------------------------------------------------------------------
    # Renaming / substitution
    # ------------------------------------------------------------------
    def rename(self, old: HeapName, new: HeapName) -> None:
        """Replace heap name *old* with *new* throughout the state."""
        self.rho = {r: rename_symval(v, old, new) for r, v in self.rho.items()}
        self.spatial.rename(old, new)
        self.pure.rename(old, new)
        if old in self.anchors:
            self.anchors = (self.anchors - {old}) | {new}

    def substitute_value(self, old: SymVal, new: SymVal) -> None:
        """Replace symbolic value *old* with *new* (used when a dangling
        variable is discovered to be null)."""
        self.rho = {r: (new if v == old else v) for r, v in self.rho.items()}
        if not isinstance(old, (NullVal, Opaque, OffsetVal)) and not isinstance(
            new, (Opaque, OffsetVal)
        ):
            if isinstance(new, NullVal):
                for atom in list(self.spatial):
                    if isinstance(atom, PointsTo) and atom.target == old:
                        self.spatial.replace(
                            atom, PointsTo(atom.src, atom.field, NULL_VAL)
                        )
                    elif isinstance(atom, PredInstance) and old in atom.args:
                        self.spatial.replace(
                            atom,
                            PredInstance(
                                atom.pred,
                                tuple(
                                    NULL_VAL if a == old else a for a in atom.args
                                ),
                                atom.truncs,
                            ),
                        )
            else:
                self.spatial.rename(old, new)
        self.pure.substitute_value(old, new)

    # ------------------------------------------------------------------
    def heap_names(self) -> set[HeapName]:
        names = self.spatial.heap_names()
        for value in self.rho.values():
            if isinstance(value, OffsetVal):
                names.add(value.base)
            elif not isinstance(value, (NullVal, Opaque)):
                names.add(value)
        return names

    def fresh_like(self) -> Var:
        return fresh_var()

    def __str__(self) -> str:
        regs = ", ".join(
            f"{r}={v}" for r, v in sorted(self.rho.items(), key=lambda kv: kv[0].name)
        )
        return f"[{regs}] | {self.spatial} | {self.pure}"
