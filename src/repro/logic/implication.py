"""Implication between recursive predicate definitions.

``pred_implies(env, a, b)`` decides (soundly, incompletely) whether
every heap satisfying ``a(v1..vn)`` also satisfies ``b(v1..vn)`` -- the
coinductive comparison of the two definitions.  The interesting case is
a *specialized* definition implying a general one: a predicate whose
``items`` field is always null implies the predicate whose ``items``
field carries a (possibly empty) sub-structure, because null satisfies
the sub-structure's base case.

This is what lets the engine's subsumption check recognize that a loop
lineage which happened to build only degenerate sub-structures is an
instance of the general invariant synthesized from a richer lineage.
"""

from __future__ import annotations

from repro.logic.predicates import (
    AnyArg,
    ArgExpr,
    NullArg,
    ParamArg,
    PredicateDef,
    PredicateEnv,
    RecTarget,
)

__all__ = ["pred_implies", "implies_existential"]


def pred_implies(
    env: PredicateEnv,
    stronger: str,
    weaker: str,
    _assumed: frozenset[tuple[str, str]] = frozenset(),
) -> bool:
    """Does ``stronger(args)`` entail ``weaker(args)`` for all args?

    Top-level queries (empty coinductive context) are memoized on the
    environment; the memo is invalidated whenever a definition is
    added, so it never answers for a stale ``T``."""
    if stronger == weaker:
        return True
    if stronger not in env or weaker not in env:
        return False
    if not _assumed:
        memo = env.implies_memo
        cached = memo.get((stronger, weaker))
        if cached is not None:
            return cached
        result = _pred_implies_uncached(env, stronger, weaker, _assumed)
        memo[(stronger, weaker)] = result
        return result
    return _pred_implies_uncached(env, stronger, weaker, _assumed)


def _pred_implies_uncached(
    env: PredicateEnv,
    stronger: str,
    weaker: str,
    _assumed: frozenset[tuple[str, str]],
) -> bool:
    a, b = env[stronger], env[weaker]
    if a.arity != b.arity:
        return False
    key = (stronger, weaker)
    if key in _assumed:
        return True  # coinductive hypothesis
    assumed = _assumed | {key}
    a_fields = {spec.field: spec.target for spec in a.fields}
    b_fields = {spec.field: spec.target for spec in b.fields}
    if set(a_fields) != set(b_fields):
        return False
    # Align recursive calls through their fields.
    a_call_field = {i: a.field_of_rec_call(i) for i in range(len(a.rec_calls))}
    b_call_by_field = {
        b.field_of_rec_call(i): i for i in range(len(b.rec_calls))
    }
    for field_name, a_target in a_fields.items():
        b_target = b_fields[field_name]
        if not _target_implies(
            env, a, b, a_target, b_target, a_call_field, b_call_by_field,
            field_name, assumed,
        ):
            return False
    return True


def _target_implies(
    env: PredicateEnv,
    a: PredicateDef,
    b: PredicateDef,
    a_target: ArgExpr,
    b_target: ArgExpr,
    a_call_field: dict[int, str],
    b_call_by_field: dict[str, int],
    field_name: str,
    assumed: frozenset[tuple[str, str]],
) -> bool:
    if isinstance(b_target, AnyArg):
        return True
    if a_target == b_target and not isinstance(a_target, RecTarget):
        return True
    if isinstance(a_target, NullArg) and isinstance(b_target, RecTarget):
        # null satisfies the base case of any sub-structure, whatever
        # its arguments.
        return True
    if isinstance(a_target, RecTarget) and isinstance(b_target, RecTarget):
        a_call = a.rec_calls[a_target.index]
        b_call = b.rec_calls[b_target.index]
        if len(a_call.args) != len(b_call.args):
            return False
        if not pred_implies(env, a_call.pred, b_call.pred, assumed):
            return False
        for a_arg, b_arg in zip(a_call.args, b_call.args):
            if not _arg_corresponds(
                a_arg, b_arg, a_call_field, b_call_by_field
            ):
                return False
        return True
    return False


def implies_existential(
    env: PredicateEnv,
    stronger: str,
    weaker: str,
    _assumed: frozenset[tuple[str, str]] = frozenset(),
) -> bool:
    """Does ``stronger(v, s..)`` entail ``exists w...  weaker(v, w..)``?

    The existential variant :func:`pred_implies` cannot express: only
    the shared root is fixed, every further parameter of *weaker* is
    existentially chosen.  This is the side condition of the merge
    lemma (wand modus ponens, see :mod:`repro.logic.lemmas`): an
    instance of *stronger* rooted at a truncation point discharges a
    hole whose cut sub-structure was an instance of *weaker*, because
    the truncation semantics quantify the cut instance's non-root
    arguments existentially.

    Sound and incomplete, coinductive like :func:`pred_implies`; the
    arities may differ (the existential absorbs the mismatch).  The
    witness for an existential is chosen *once* for the whole
    derivation, so a ``weaker``-side parameter target is only accepted
    when both sides keep the tied value unfolding-invariant: *weaker*
    must pass every parameter through its recursive self-calls
    unchanged (:func:`_params_invariant`), and the ``stronger``-side
    value it is tied to must itself be a constant of the unfolding
    (null, or a parameter *stronger* passes through invariantly).  An
    ``AnyArg`` target needs no such care -- it instantiates to a fresh
    value at every occurrence, so anything matches.
    """
    if stronger == weaker:
        return True
    if stronger not in env or weaker not in env:
        return False
    key = (stronger, weaker)
    if key in _assumed:
        return True  # coinductive hypothesis
    assumed = _assumed | {key}
    a, b = env[stronger], env[weaker]
    a_fields = {spec.field: spec.target for spec in a.fields}
    b_fields = {spec.field: spec.target for spec in b.fields}
    if set(a_fields) != set(b_fields):
        return False
    if not _params_invariant(b):
        return False
    witness: dict[int, tuple] = {}
    for field_name, b_target in sorted(b_fields.items()):
        a_target = a_fields[field_name]
        if isinstance(b_target, AnyArg):
            continue  # fresh at every occurrence: any value fits
        if isinstance(b_target, NullArg):
            if not isinstance(a_target, NullArg):
                return False
            continue
        if isinstance(b_target, ParamArg):
            if isinstance(a_target, NullArg):
                choice = ("null",)
            elif isinstance(a_target, ParamArg) and _param_invariant(
                a, a_target.index
            ):
                choice = ("param", a_target.index)
            else:
                return False  # tied to a value that varies per level
            prior = witness.setdefault(b_target.index, choice)
            if prior != choice:
                return False  # one existential, two different witnesses
            continue
        # b_target is a RecTarget: null still satisfies the base case.
        if isinstance(a_target, NullArg):
            continue
        if not isinstance(a_target, RecTarget):
            return False
        a_call = a.rec_calls[a_target.index]
        b_call = b.rec_calls[b_target.index]
        if not implies_existential(env, a_call.pred, b_call.pred, assumed):
            return False
    return True


def _param_invariant(d: PredicateDef, index: int) -> bool:
    """Is parameter *index* passed through every recursive call at its
    own position (same value at every unfolding level)?  Calls to other
    predicates cannot preserve it, so they defeat the invariant."""
    for call in d.rec_calls:
        if call.pred != d.name:
            return False
        if index - 1 >= len(call.args):
            return False
        arg = call.args[index - 1]
        if not (isinstance(arg, ParamArg) and arg.index == index):
            return False
    return True


def _params_invariant(d: PredicateDef) -> bool:
    return all(_param_invariant(d, i) for i in range(1, d.arity))


def _arg_corresponds(
    a_arg: ArgExpr,
    b_arg: ArgExpr,
    a_call_field: dict[int, str],
    b_call_by_field: dict[str, int],
) -> bool:
    """Same value under both definitions (RecTargets align by field)."""
    if isinstance(a_arg, RecTarget) and isinstance(b_arg, RecTarget):
        field_name = a_call_field.get(a_arg.index)
        return (
            field_name is not None
            and b_call_by_field.get(field_name) == b_arg.index
        )
    return a_arg == b_arg
