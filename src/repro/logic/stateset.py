"""Canonically indexed sets of abstract states.

Every join point in the fixpoint engine maintains "a set of states with
no member subsuming another" -- exit-state dedup, loop-header invariant
lists, contract exit accumulation.  The naive representation is a flat
list scanned pairwise with ``subsumes``, which PR 4's profiling showed
to be quadratic in disjunct count (``interproc.py`` said as much in a
comment).  ``StateSet`` replaces the flat list with two indexes built
on the PR-4 canonical machinery:

* an **exact index** keyed by :func:`content_key` -- the state's exact
  content (revision-memoized tokens, see
  ``SpatialFormula.content_token``): equal keys mean identical states,
  which trivially subsume each other in both directions, so an arriving
  duplicate is dropped in O(1) with *zero* entailment queries.  The
  index was first keyed on the PR-4 ``canonical_key``, which also drops
  alpha-variant duplicates, but profiling showed its greedy ordering
  costing more per insert than the pairwise queries it replaced on
  typical (2-5 disjunct) exit sets; duplicates in practice arrive as
  *copies* -- identical names -- so the exact-content index keeps
  nearly all the drops at a fraction of the key cost.  Alpha-variant
  duplicates that do differ in names fall through to the bucket scan
  below, whose ``subsumes`` verdicts the entailment cache memoizes on
  canonical keys anyway;
* **signature buckets** keyed by a cheap structural signature; the
  pairwise ``subsumes`` dedup only runs against members of compatible
  buckets, because incompatible signatures provably cannot subsume.

The signature must be *subsumption-invariant*: if ``subsumes(g, c)``
can succeed, ``g`` and ``c`` must land in compatible buckets.  The
signature and its compatibility relation live in
:mod:`repro.logic.entailment` (:func:`structural_signature` /
:func:`signatures_compatible`, re-exported here), where ``subsumes``
itself also applies them as a per-query fast-reject; the bucket index
additionally saves the call overhead for members it never visits.

Order independence: ``insert_maximal`` keeps the maximal elements of
the subsumption preorder, and the set of maximal *equivalence
classes* is independent of arrival order.  (That makes the *dedup*
order-independent; the fixpoint as a whole is not, because invariant
synthesis generalizes whichever state reaches the unroll threshold
first -- different worklist schedules may legitimately reach the same
verdict through differently granular abstractions.)
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro import obs
from repro.logic.entailment import (
    signatures_compatible,
    structural_signature,
    subsumes,
)
from repro.logic.state import AbstractState

__all__ = ["StateSet", "content_key", "structural_signature", "any_subsumes"]

Signature = tuple


def content_key(state: AbstractState) -> tuple:
    """Hashable exact-content key: equal keys mean identical states.

    Built from the formulas' revision-memoized content tokens plus the
    register frame and anchors, so computing it for a state that has
    not mutated since the last call is three integer compares and one
    small dict freeze."""
    return (
        state.spatial.content_token(),
        state.pure.content_token(),
        frozenset(state.rho.items()),
        state.anchors,
    )


def _report(name: str, value: int = 1) -> None:
    metrics = obs.METRICS
    if metrics.enabled:
        metrics.inc(name, value)


class StateSet:
    """A deduplicated set of abstract states at one join point.

    Not a drop-in ``set``: insertion (``insert_maximal``) enforces the
    "no member subsumes another" invariant, dropping the newcomer when
    covered and evicting members the newcomer covers.  Iteration order
    is insertion order of the surviving members (deterministic).
    """

    def __init__(
        self,
        env=None,
        *,
        live: frozenset | None = None,
        deadline_poll: Callable[[], None] | None = None,
    ):
        self._env = env
        self._live = live
        self._poll = deadline_poll
        self._order: list[AbstractState] = []
        self._exact: dict = {}  # content key -> state
        self._buckets: dict[Signature, list[AbstractState]] = {}

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[AbstractState]:
        return iter(self._order)

    def states(self) -> list[AbstractState]:
        return list(self._order)

    # ------------------------------------------------------------------
    def covers(self, state: AbstractState) -> bool:
        """Is *state* subsumed by some member (without inserting it)?"""
        key = content_key(state)
        if key in self._exact:
            _report("engine.dedup.exact_drops")
            return True
        sig = structural_signature(state)
        for member in self._candidates_over(sig):
            if self._poll is not None:
                self._poll()
            _report("engine.dedup.checks")
            if subsumes(member, state, live=self._live, env=self._env) is not None:
                return True
        return False

    def insert_maximal(self, state: AbstractState) -> bool:
        """Insert *state* unless covered; evict members it covers.

        Returns True when the state was kept.
        """
        key = content_key(state)
        if key in self._exact:
            _report("engine.dedup.exact_drops")
            return False
        sig = structural_signature(state)
        for member in self._candidates_over(sig):
            if self._poll is not None:
                self._poll()
            _report("engine.dedup.checks")
            if subsumes(member, state, live=self._live, env=self._env) is not None:
                _report("engine.dedup.dropped")
                return False
        evicted = [
            member
            for member in self._candidates_under(sig)
            if self._check(state, member)
        ]
        for member in evicted:
            self._remove(member)
            _report("engine.dedup.dropped")
        self._order.append(state)
        self._exact[key] = state
        self._buckets.setdefault(sig, []).append(state)
        return True

    def _check(self, general: AbstractState, concrete: AbstractState) -> bool:
        if self._poll is not None:
            self._poll()
        _report("engine.dedup.checks")
        return subsumes(general, concrete, live=self._live, env=self._env) is not None

    # ------------------------------------------------------------------
    def _candidates_over(self, sig: Signature) -> Iterable[AbstractState]:
        """Members whose signature could subsume signature *sig*."""
        matched = 0
        for member_sig, members in self._buckets.items():
            if signatures_compatible(member_sig, sig):
                matched += len(members)
                yield from members
        _report("engine.dedup.bucket_skips", len(self._order) - matched)

    def _candidates_under(self, sig: Signature) -> list[AbstractState]:
        """Members whose signature signature *sig* could subsume."""
        out: list[AbstractState] = []
        matched = 0
        for member_sig, members in self._buckets.items():
            if signatures_compatible(sig, member_sig):
                matched += len(members)
                out.extend(members)
        _report("engine.dedup.bucket_skips", len(self._order) - matched)
        return out

    def _remove(self, state: AbstractState) -> None:
        self._order.remove(state)
        sig = structural_signature(state)
        bucket = self._buckets.get(sig, [])
        if state in bucket:
            bucket.remove(state)
            if not bucket:
                del self._buckets[sig]
        key = content_key(state)
        if self._exact.get(key) is state:
            del self._exact[key]


def any_subsumes(
    candidates: Iterable[AbstractState],
    state: AbstractState,
    *,
    env=None,
    live: frozenset | None = None,
    deadline_poll: Callable[[], None] | None = None,
) -> bool:
    """Does any candidate subsume *state*?  Signature-prefiltered scan.

    A StateSet-free helper for call sites that keep their own list but
    want the same exact-key / bucket short-circuits on a single query.
    """
    state_key = content_key(state)
    state_sig = structural_signature(state)
    for candidate in candidates:
        if deadline_poll is not None:
            deadline_poll()
        if content_key(candidate) == state_key:
            _report("engine.dedup.exact_drops")
            return True
        if not signatures_compatible(structural_signature(candidate), state_sig):
            _report("engine.dedup.bucket_skips")
            continue
        _report("engine.dedup.checks")
        if subsumes(candidate, state, live=live, env=env) is not None:
            return True
    return False
