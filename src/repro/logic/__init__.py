"""Separation-logic substrate: heap names, symbolic values, formulas,
abstract states, recursive predicates, subsumption and the concrete
model relation.
"""

from repro.logic.assertions import (
    HeapAssertion,
    PointsTo,
    PredInstance,
    Raw,
    Region,
)
from repro.logic.canonical import CanonicalForm, canonical_key, canonicalize
from repro.logic.entailment import Mapping, equivalent, subsumes
from repro.logic.formula import PureAtom, PureFormula, SpatialFormula
from repro.logic.heapnames import (
    FieldPath,
    GlobalLoc,
    HeapName,
    Var,
    fresh_var,
    is_prefix,
    path_of,
    rename_name,
    reset_fresh_counter,
    root_of,
)
from repro.logic.model import ModelError, satisfies, satisfies_truncated
from repro.logic.predicates import (
    LIST_DEF,
    TREE_DEF,
    AnyArg,
    ArgExpr,
    FieldSpec,
    NullArg,
    ParamArg,
    PredicateDef,
    PredicateEnv,
    RecCallSpec,
    RecTarget,
)
from repro.logic.state import AbstractState, AnalysisStuck
from repro.logic.symvals import (
    NULL_VAL,
    NullVal,
    OffsetVal,
    Opaque,
    SymVal,
    offset,
    rename_symval,
)

__all__ = [
    "AbstractState",
    "AnalysisStuck",
    "AnyArg",
    "ArgExpr",
    "CanonicalForm",
    "FieldPath",
    "FieldSpec",
    "GlobalLoc",
    "HeapAssertion",
    "HeapName",
    "LIST_DEF",
    "Mapping",
    "ModelError",
    "NULL_VAL",
    "NullArg",
    "NullVal",
    "OffsetVal",
    "Opaque",
    "ParamArg",
    "PointsTo",
    "PredInstance",
    "PredicateDef",
    "PredicateEnv",
    "PureAtom",
    "PureFormula",
    "Raw",
    "RecCallSpec",
    "RecTarget",
    "Region",
    "SpatialFormula",
    "SymVal",
    "TREE_DEF",
    "Var",
    "canonical_key",
    "canonicalize",
    "equivalent",
    "fresh_var",
    "is_prefix",
    "offset",
    "path_of",
    "rename_name",
    "rename_symval",
    "reset_fresh_counter",
    "root_of",
    "satisfies",
    "satisfies_truncated",
    "subsumes",
]
