"""Satisfaction of recursive predicates on *concrete* heaps.

This is the semantic oracle used by the test suite: after the concrete
interpreter (:mod:`repro.concrete`) runs a program, we check that the
predicate the analysis synthesized actually holds of the heap the run
produced.  Because the paper's predicates are *precise* (each
unambiguously identifies a piece of heap), satisfaction computes the
exact footprint (set of node addresses) or fails.

A concrete heap is any mapping ``addr -> {field: value}`` with address
``0`` playing the role of null.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.logic.predicates import (
    AnyArg,
    NullArg,
    ParamArg,
    PredicateDef,
    PredicateEnv,
    RecTarget,
)

__all__ = ["satisfies", "satisfies_truncated", "ModelError"]


class ModelError(Exception):
    """Raised on malformed checks (unknown predicate, bad arity)."""


def satisfies(
    env: PredicateEnv,
    pred: str,
    args: tuple[int, ...],
    cells: Mapping[int, Mapping[str, int]],
) -> set[int] | None:
    """Footprint of ``pred(args)`` on the concrete heap, or None.

    The footprint is the set of node addresses the predicate instance
    covers; callers typically assert it equals the set of all allocated
    nodes of the structure under test.
    """
    return _check(env, pred, args, cells, truncs=frozenset(), hit=set(), seen=set())


def satisfies_truncated(
    env: PredicateEnv,
    pred: str,
    args: tuple[int, ...],
    truncs: frozenset[int],
    cells: Mapping[int, Mapping[str, int]],
) -> set[int] | None:
    """Footprint of the truncated instance ``pred(args; truncs)``.

    Every truncation point must actually be reached (the sub-structures
    are cut out, so their nodes are *not* in the footprint), and the
    sub-structures must be mutually disjoint -- each truncation point is
    reached exactly once.
    """
    hit: set[int] = set()
    footprint = _check(env, pred, args, cells, truncs=truncs, hit=hit, seen=set())
    if footprint is None:
        return None
    if hit != set(truncs):
        return None
    return footprint


def _check(
    env: PredicateEnv,
    pred: str,
    args: tuple[int, ...],
    cells: Mapping[int, Mapping[str, int]],
    truncs: frozenset[int],
    hit: set[int],
    seen: set[int],
) -> set[int] | None:
    if pred not in env:
        raise ModelError(f"unknown predicate {pred!r}")
    definition: PredicateDef = env[pred]
    if len(args) != definition.arity:
        raise ModelError(f"{pred} expects {definition.arity} args, got {len(args)}")
    root = args[0]
    if root in truncs:
        if root in hit:
            return None  # truncation sub-structures must be disjoint
        hit.add(root)
        return set()
    if root == 0:
        return set()
    if root not in cells or root in seen:
        return None
    node = cells[root]
    bound: dict[int, int] = {}
    for spec in definition.fields:
        value = node.get(spec.field, 0)
        target = spec.target
        if isinstance(target, NullArg):
            if value != 0:
                return None
        elif isinstance(target, ParamArg):
            if value != args[target.index]:
                return None
        elif isinstance(target, RecTarget):
            bound[target.index] = value
        elif isinstance(target, AnyArg):
            pass
    footprint = {root}
    seen = seen | {root}
    for i, call in enumerate(definition.rec_calls):
        sub_args = [bound[i]]
        for expr in call.args:
            if isinstance(expr, NullArg):
                sub_args.append(0)
            elif isinstance(expr, ParamArg):
                sub_args.append(args[expr.index])
            elif isinstance(expr, RecTarget):
                sub_args.append(bound[expr.index])
            else:
                raise ModelError("AnyArg not allowed in recursive-call arguments")
        sub = _check(env, call.pred, tuple(sub_args), cells, truncs, hit, seen)
        if sub is None:
            return None
        if sub & footprint:
            return None  # spatial conjunction demands disjointness
        footprint |= sub
    return footprint
