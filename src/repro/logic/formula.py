"""Spatial and pure formulae.

``S`` is a spatial conjunction of atomic heap assertions (Table 1); we
keep it as an ordered collection with lookup indexes.  ``F`` records
true branch conditions along the execution path and the aliasing
between pointer arithmetic and heap names produced by
``rearrange_names`` (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.assertions import (
    HeapAssertion,
    PointsTo,
    PredInstance,
    Raw,
    Region,
)
from repro.logic.heapnames import HeapName, rename_name
from repro.logic.symvals import (
    NULL_VAL,
    NullVal,
    OffsetVal,
    Opaque,
    SymVal,
    rename_symval,
)

__all__ = ["SpatialFormula", "PureFormula", "PureAtom"]


class SpatialFormula:
    """A finite spatial conjunction of atomic heap assertions.

    ``revision`` counts mutations; together with the formula object's
    identity it lets :func:`repro.logic.canonical.canonicalize` reuse a
    memoized canonical form exactly as long as the formula has not
    changed.  Every mutating method must bump it.
    """

    __slots__ = ("_atoms", "revision", "_token", "_token_rev", "_sig", "_sig_rev")

    def __init__(self, atoms: list[HeapAssertion] | None = None):
        self._atoms: list[HeapAssertion] = list(atoms or [])
        self.revision = 0
        self._token = None
        self._token_rev = -1
        self._sig = None
        self._sig_rev = -1

    def copy(self) -> "SpatialFormula":
        copied = SpatialFormula(self._atoms)
        if self._token_rev == self.revision:
            # Same content, so the token transfers (against the copy's
            # fresh revision counter).
            copied._token = self._token
            copied._token_rev = copied.revision
        if self._sig_rev == self.revision:
            copied._sig = self._sig
            copied._sig_rev = copied.revision
        return copied

    def structural_signature(self) -> tuple:
        """``(pointsto field multiset, raw count, region count, pred
        count)`` -- the subsumption-invariant shape of the conjunction
        (see ``repro.logic.entailment.signatures_compatible`` for what
        it may be used to conclude).  Memoized on ``revision``."""
        if self._sig_rev != self.revision:
            fields: dict[str, int] = {}
            raws = regions = preds = 0
            for atom in self._atoms:
                if isinstance(atom, PointsTo):
                    fields[atom.field] = fields.get(atom.field, 0) + 1
                elif isinstance(atom, Raw):
                    raws += 1
                elif isinstance(atom, Region):
                    regions += 1
                elif isinstance(atom, PredInstance):
                    preds += 1
            self._sig = (tuple(sorted(fields.items())), raws, regions, preds)
            self._sig_rev = self.revision
        return self._sig

    def content_token(self) -> tuple:
        """A hashable snapshot of the conjunction's exact content,
        order-insensitive and multiplicity-exact (atoms are frozen
        dataclasses).  Memoized on ``revision``, so rebuilding the token
        for an unchanged formula is one integer compare -- cheap enough
        to key the fold memo on every call (unlike the canonical form,
        whose greedy ordering costs more than an identity fold; see
        ``repro.analysis.memo``)."""
        if self._token_rev != self.revision:
            counts: dict = {}
            for atom in self._atoms:
                counts[atom] = counts.get(atom, 0) + 1
            self._token = frozenset(counts.items())
            self._token_rev = self.revision
        return self._token

    def __iter__(self):
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: HeapAssertion) -> bool:
        return atom in self._atoms

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, atom: HeapAssertion) -> None:
        self.revision += 1
        self._atoms.append(atom)

    def remove(self, atom: HeapAssertion) -> None:
        self.revision += 1
        self._atoms.remove(atom)

    def replace(self, old: HeapAssertion, new: HeapAssertion) -> None:
        self.revision += 1
        self._atoms[self._atoms.index(old)] = new

    def rename(self, old: HeapName, new: HeapName) -> None:
        """Replace heap name *old* with *new* in every atom."""
        self.revision += 1
        self._atoms = [atom.rename(old, new) for atom in self._atoms]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def points_to(self, src: HeapName, field_name: str) -> PointsTo | None:
        for atom in self._atoms:
            if (
                isinstance(atom, PointsTo)
                and atom.src == src
                and atom.field == field_name
            ):
                return atom
        return None

    def points_to_from(self, src: HeapName) -> list[PointsTo]:
        return [
            a for a in self._atoms if isinstance(a, PointsTo) and a.src == src
        ]

    def points_to_atoms(self) -> list[PointsTo]:
        return [a for a in self._atoms if isinstance(a, PointsTo)]

    def pred_instances(self, pred: str | None = None) -> list[PredInstance]:
        return [
            a
            for a in self._atoms
            if isinstance(a, PredInstance) and (pred is None or a.pred == pred)
        ]

    def instance_rooted_at(self, loc: SymVal) -> PredInstance | None:
        for atom in self._atoms:
            if isinstance(atom, PredInstance) and atom.root == loc:
                return atom
        return None

    def instances_truncated_at(self, loc: HeapName) -> list[PredInstance]:
        return [
            a
            for a in self._atoms
            if isinstance(a, PredInstance) and loc in a.truncs
        ]

    def raw_at(self, loc: HeapName) -> Raw | None:
        for atom in self._atoms:
            if isinstance(atom, Raw) and atom.loc == loc:
                return atom
        return None

    def region_at(self, base: HeapName) -> Region | None:
        for atom in self._atoms:
            if isinstance(atom, Region) and atom.base == base:
                return atom
        return None

    def regions(self) -> list[Region]:
        return [a for a in self._atoms if isinstance(a, Region)]

    def is_allocated(self, loc: HeapName) -> bool:
        """Does the formula assert cells at *loc* (points-to, raw, or a
        predicate instance rooted there)?"""
        for atom in self._atoms:
            if isinstance(atom, PointsTo) and atom.src == loc:
                return True
            if isinstance(atom, Raw) and atom.loc == loc:
                return True
            if isinstance(atom, PredInstance) and atom.root == loc:
                return True
        return False

    def heap_names(self) -> set[HeapName]:
        """Every heap name mentioned anywhere in the formula."""
        names: set[HeapName] = set()
        for atom in self._atoms:
            if isinstance(atom, PointsTo):
                names.add(atom.src)
                names.update(_names_of(atom.target))
            elif isinstance(atom, PredInstance):
                for arg in atom.args:
                    names.update(_names_of(arg))
                names.update(atom.truncs)
            elif isinstance(atom, Raw):
                names.add(atom.loc)
            elif isinstance(atom, Region):
                names.add(atom.base)
        return names

    def __str__(self) -> str:
        if not self._atoms:
            return "emp"
        return " * ".join(str(a) for a in self._atoms)


def _names_of(value: SymVal) -> set[HeapName]:
    if isinstance(value, (NullVal, Opaque)):
        return set()
    if isinstance(value, OffsetVal):
        return {value.base}
    return {value}


@dataclass(frozen=True, slots=True)
class PureAtom:
    """``lhs == rhs`` (op 'eq') or ``lhs != rhs`` (op 'ne')."""

    op: str
    lhs: SymVal
    rhs: SymVal

    def rename(self, old: HeapName, new: HeapName) -> "PureAtom":
        return PureAtom(
            self.op, rename_symval(self.lhs, old, new), rename_symval(self.rhs, old, new)
        )

    def normalized(self) -> "PureAtom":
        if str(self.lhs) > str(self.rhs):
            return PureAtom(self.op, self.rhs, self.lhs)
        return self

    def __str__(self) -> str:
        sym = "==" if self.op == "eq" else "!="
        return f"{self.lhs}{sym}{self.rhs}"


class PureFormula:
    """Branch conditions plus pointer-arithmetic aliases.

    Aliases map an :class:`OffsetVal` ``h + n`` to the access-path heap
    name that ``rearrange_names`` chose for the same location; register
    evaluation (Table 1's semantic bracket) consults them.
    """

    __slots__ = ("_aliases", "_atoms", "revision", "_token", "_token_rev")

    def __init__(
        self,
        aliases: dict[OffsetVal, HeapName] | None = None,
        atoms: set[PureAtom] | None = None,
    ):
        self._aliases: dict[OffsetVal, HeapName] = dict(aliases or {})
        self._atoms: set[PureAtom] = set(atoms or set())
        #: mutation counter, same contract as ``SpatialFormula.revision``
        self.revision = 0
        self._token = None
        self._token_rev = -1

    def copy(self) -> "PureFormula":
        copied = PureFormula(self._aliases, self._atoms)
        if self._token_rev == self.revision:
            copied._token = self._token
            copied._token_rev = copied.revision
        return copied

    def content_token(self) -> tuple:
        """Hashable exact-content snapshot (same contract and caching
        discipline as :meth:`SpatialFormula.content_token`)."""
        if self._token_rev != self.revision:
            self._token = (
                frozenset(self._atoms),
                frozenset(self._aliases.items()),
            )
            self._token_rev = self.revision
        return self._token

    # ------------------------------------------------------------------
    # Aliases
    # ------------------------------------------------------------------
    def record_alias(self, offset_val: OffsetVal, name: HeapName) -> None:
        self.revision += 1
        self._aliases[offset_val] = name

    def alias_of(self, offset_val: OffsetVal) -> HeapName | None:
        return self._aliases.get(offset_val)

    def aliases(self) -> dict[OffsetVal, HeapName]:
        return dict(self._aliases)

    def resolve(self, value: SymVal) -> SymVal:
        """Resolve pointer arithmetic through recorded aliases."""
        while isinstance(value, OffsetVal):
            name = self._aliases.get(value)
            if name is None:
                return value
            value = name
        return value

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def assume(self, op: str, lhs: SymVal, rhs: SymVal) -> None:
        self.revision += 1
        self._atoms.add(PureAtom(op, lhs, rhs).normalized())

    def atoms(self) -> set[PureAtom]:
        return set(self._atoms)

    def discard(self, atom: PureAtom) -> None:
        self.revision += 1
        self._atoms.discard(atom)

    def holds(self, op: str, lhs: SymVal, rhs: SymVal) -> bool:
        if op == "eq" and lhs == rhs:
            return True
        return PureAtom(op, lhs, rhs).normalized() in self._atoms

    def entails_eq(self, lhs: SymVal, rhs: SymVal) -> bool:
        return lhs == rhs or self.holds("eq", lhs, rhs)

    def entails_ne(self, lhs: SymVal, rhs: SymVal) -> bool:
        return self.holds("ne", lhs, rhs)

    # ------------------------------------------------------------------
    def rename(self, old: HeapName, new: HeapName) -> None:
        self.revision += 1
        self._aliases = {
            OffsetVal(rename_name(k.base, old, new), k.delta): rename_name(
                v, old, new
            )
            for k, v in self._aliases.items()
        }
        self._atoms = {a.rename(old, new).normalized() for a in self._atoms}

    def substitute_value(self, old: SymVal, new: SymVal) -> None:
        """Replace *old* by *new* in condition atoms (e.g. assuming a
        dangling variable is null)."""

        def swap(v: SymVal) -> SymVal:
            return new if v == old else v

        self.revision += 1
        self._atoms = {
            PureAtom(a.op, swap(a.lhs), swap(a.rhs)).normalized()
            for a in self._atoms
        }

    def __str__(self) -> str:
        parts = [f"{k}=={v}" for k, v in sorted(self._aliases.items(), key=str)]
        parts.extend(str(a) for a in sorted(self._atoms, key=str))
        return " /\\ ".join(parts) if parts else "true"
