"""Regression scenarios admitted by the lemma-synthesis fallback.

Three scenario classes that purely structural entailment cannot
converge on (each fails with ``too many invariant candidates`` when
lemmas are disabled) and that the lemma fallback in
:mod:`repro.logic.entailment` admits:

* **mid-list re-fold** -- two marker cursors parked mid-list while a
  third cursor traverses the whole list, with a marker's cell re-read
  after the traversal.  Loop-header states where the traversal cursor
  coincides with a marker need the empty-segment lemma to be instances
  of the zone invariants (``P(m; c)`` with ``m == c`` is ``emp``).
* **different-root reachability** -- same shape, but the traversal
  starts one ``next`` hop past the list head, so every header state
  decomposes the heap from a root the invariant does not name.
* **shared tail** -- two heads pushed onto one tail list, both markers
  walked down the shared tail, one head and both marker cells consumed
  after the traversal.

Each program is deliberately at the cliff edge: the marker walks are
bounded (``%k`` countdowns) so the abstract marker positions multiply
loop-header shape classes past the engine's invariant-candidate budget
unless the empty-segment/merge lemmas let more general zone invariants
supersede the boundary classes.  The verdict differential
(``fail`` without lemmas, ``pass`` with) is pinned by
``tests/test_lemma_golden.py`` and cross-checked against the concrete
interpreter by the crucible gate.
"""

from __future__ import annotations

from repro.ir import Program, parse_program

__all__ = [
    "REFOLD_SRC",
    "DIFFROOT_SRC",
    "SHAREDTAIL_SRC",
    "refold_program",
    "diffroot_program",
    "sharedtail_program",
]

_BUILD = """
proc build(%n):
    %head = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %head
    %head = %p
    %n = sub %n, 1
    goto L
done:
    return %head
"""

_MARKERS = """
    %m1 = {src}
    %k1 = 2
A1:
    if %k1 <= 0 goto f1
    if %m1 == null goto out
    %m1 = [%m1.next]
    %k1 = sub %k1, 1
    goto A1
f1:
    if %m1 == null goto out
    %m2 = %m1
    %k2 = 2
A2:
    if %k2 <= 0 goto f2
    if %m2 == null goto out
    %m2 = [%m2.next]
    %k2 = sub %k2, 1
    goto A2
f2:
    if %m2 == null goto out
"""

#: Mid-list re-fold: markers parked, full traversal, marker cell
#: re-read afterwards.
REFOLD_SRC = _BUILD + f"""
proc main():
    %head = call build(12)
{_MARKERS.format(src="%head")}
    %c = %head
T:
    if %c == null goto fin
    %c = [%c.next]
    goto T
fin:
    %d1 = [%m1.next]
out:
    return %m2
"""

#: Different-root reachability: the traversal starts one hop past the
#: head the invariant names.
DIFFROOT_SRC = _BUILD + f"""
proc main():
    %head = call build(12)
    if %head == null goto out
{_MARKERS.format(src="%head")}
    %c = [%head.next]
T:
    if %c == null goto fin
    %c = [%c.next]
    goto T
fin:
    %d1 = [%m1.next]
out:
    return %m2
"""

#: Shared tail: two heads over one tail, markers down the shared part,
#: both marker cells consumed after the traversal while a head stays
#: live.
SHAREDTAIL_SRC = _BUILD + f"""
proc main():
    %t = call build(10)
    if %t == null goto out
    %x = malloc()
    [%x.next] = %t
    %y = malloc()
    [%y.next] = %t
{_MARKERS.format(src="%t")}
    %c = %t
T:
    if %c == null goto fin
    %c = [%c.next]
    goto T
fin:
    %d1 = [%m1.next]
    %d2 = [%m2.next]
out:
    return %y
"""


def refold_program() -> Program:
    return parse_program(REFOLD_SRC)


def diffroot_program() -> Program:
    return parse_program(DIFFROOT_SRC)


def sharedtail_program() -> Program:
    return parse_program(SHAREDTAIL_SRC)
