"""Olden *bisort*: binary tree with in-place child swaps (Table 4).

Bitonic sort builds a balanced binary tree and then repeatedly swaps
left/right subtrees while sorting -- the shape-relevant skeleton is the
recursive build plus a recursive walk that detaches both subtrees,
conditionally swaps them, and re-attaches.  The swap is the local
update that exercises unfold (to detach) and fold (to restore the tree
invariant on return).
"""

from __future__ import annotations

from repro.ir import Program, parse_program

__all__ = ["SRC", "program"]

SRC = """
proc build(%n):
    if %n > 0 goto rec
    return null
rec:
    %t = malloc()
    [%t.val] = %n
    %m = sub %n, 1
    %l = call build(%m)
    [%t.left] = %l
    %r = call build(%m)
    [%t.right] = %r
    return %t

proc bimerge(%t, %dir):
    if %t != null goto rec
    return null
rec:
    %l = [%t.left]
    %r = [%t.right]
    if %dir == 0 goto noswap
    [%t.left] = %r
    [%t.right] = %l
noswap:
    %l = [%t.left]
    %x = call bimerge(%l, %dir)
    %r = [%t.right]
    %y = call bimerge(%r, %dir)
    return %t

proc main():
    %root = call build(10)
    %sorted = call bimerge(%root, 1)
    return %sorted
"""


def program() -> Program:
    return parse_program(SRC)
