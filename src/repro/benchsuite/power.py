"""Olden *power*: hierarchy of linked lists (Table 4).

The power-system optimizer's data structure is a root holding a list
of laterals, each lateral holding a list of branches with per-node
demand payload -- "lists" in the paper's table.  The shape-relevant
skeleton is nested list construction through procedure calls plus
traversals that accumulate demand.
"""

from __future__ import annotations

from repro.ir import Program, parse_program

__all__ = ["SRC", "program"]

SRC = """
proc build_branches(%n):
    %h = null
L:
    if %n <= 0 goto done
    %b = malloc()
    [%b.next] = %h
    [%b.demand] = 1
    %h = %b
    %n = sub %n, 1
    goto L
done:
    return %h

proc build_laterals(%n):
    %h = null
L:
    if %n <= 0 goto done
    %l = malloc()
    [%l.next] = %h
    %bs = call build_branches(5)
    [%l.branches] = %bs
    %h = %l
    %n = sub %n, 1
    goto L
done:
    return %h

proc compute_branch(%b):
    if %b != null goto rec
    return 0
rec:
    %n = [%b.next]
    %s = call compute_branch(%n)
    %d = [%b.demand]
    %s = add %s, %d
    return %s

proc compute_lateral(%l):
    if %l != null goto rec
    return 0
rec:
    %n = [%l.next]
    %s = call compute_lateral(%n)
    %bs = [%l.branches]
    %d = call compute_branch(%bs)
    %s = add %s, %d
    return %s

proc main():
    %root = call build_laterals(10)
    %total = call compute_lateral(%root)
    return %root
"""


def program() -> Program:
    return parse_program(SRC)
