"""181.mcf kernels (paper, Figures 1, 4 and 7).

The SPEC2000 benchmark 181.mcf builds a left-child right-sibling tree
with two kinds of backward links -- a ``parent`` link and a
``sib_prev`` link -- over an array of nodes it manages itself
(``nodes = malloc(MAX_NODES)``, new tree nodes requested by pointer
arithmetic).  We reproduce the three shape-relevant kernels:

* :func:`build_program` -- the Figure 4(a) loop: array allocation,
  root initialization, and the iterative builder whose trace drives
  the synthesis of ``mcf_tree``;
* :func:`update_program` -- the Figure 7 fragment: cut the subtree
  rooted at ``t`` out from under its parent ``p`` and re-graft it as
  the first child of ``q`` (the unfold/fold exercise of Table 3);
* :func:`full_program` -- build, then traverse child/sibling chains,
  mirroring how mcf walks the basis tree.

The kernels also carry representative *non-shape* computation (cost
and flow arithmetic on the nodes) so that the slicing pre-pass has
something real to prune, as in the paper's Table 4.
"""

from __future__ import annotations

from repro.ir import Program, parse_program

__all__ = [
    "BUILD_SRC",
    "UPDATE_SRC",
    "FULL_SRC",
    "build_program",
    "update_program",
    "full_program",
]

#: Figure 4(a): the loop in 181.mcf that builds its tree.  ``potential``
#: and ``flow`` are non-pointer fields standing in for mcf's arc-cost
#: bookkeeping; the slicing pre-pass removes them.
BUILD_SRC = """
proc main():
    %nodes = malloc(500)
    %root = %nodes
    %node = add %nodes, 1
    [%root.parent] = null
    [%root.child] = %node
    [%root.sib] = null
    [%root.sib_prev] = null
    [%root.potential] = 0
    %i = 1
loop:
    if %i >= 499 goto last
    [%node.parent] = %root
    [%node.child] = null
    %next = add %node, 1
    [%node.sib] = %next
    %prev = sub %node, 1
    [%node.sib_prev] = %prev
    %cost = mul %i, 30
    [%node.potential] = %cost
    [%node.flow] = 0
    %node = add %node, 1
    %i = add %i, 1
    goto loop
last:
    [%node.parent] = %root
    [%node.child] = null
    [%node.sib] = null
    %prev = sub %node, 1
    [%node.sib_prev] = %prev
    return %root
"""

#: Figure 7: local modification to the tree.  The caller materializes a
#: small concrete tree so that registers q, t, p address real interior
#: nodes, then runs the l0..l5 fragment: remove the subtree rooted at t
#: from under p, shift t's right sibling left, and graft t as the new
#: first child of q.
UPDATE_SRC = """
proc graft(%q, %t):
    %p = [%t.parent]
    %tsib = [%t.sib]
    if %tsib == null goto l1
    %tprev = [%t.sib_prev]
    [%tsib.sib_prev] = %tprev
l1:
    %tprev = [%t.sib_prev]
    if %tprev == null goto l1else
    %tsib = [%t.sib]
    [%tprev.sib] = %tsib
    goto l2
l1else:
    %tsib = [%t.sib]
    [%p.child] = %tsib
l2:
    [%t.parent] = %q
    %qchild = [%q.child]
    [%t.sib] = %qchild
    %tsib = [%t.sib]
    if %tsib == null goto l4
    [%tsib.sib_prev] = %t
l4:
    [%q.child] = %t
    [%t.sib_prev] = null
    return %t

proc main():
    %r = malloc()
    %q = malloc()
    %p = malloc()
    %t = malloc()
    %u = malloc()
    [%r.parent] = null
    [%r.sib] = null
    [%r.sib_prev] = null
    [%r.child] = %q
    [%q.parent] = %r
    [%q.sib] = %p
    [%q.sib_prev] = null
    [%q.child] = null
    [%p.parent] = %r
    [%p.sib] = null
    [%p.sib_prev] = %q
    [%p.child] = %t
    [%t.parent] = %p
    [%t.sib] = %u
    [%t.sib_prev] = null
    [%t.child] = null
    [%u.parent] = %p
    [%u.sib] = null
    [%u.sib_prev] = %t
    [%u.child] = null
    %g = call graft(%q, %t)
    return %r
"""

#: Build, then traverse the first-child chain and each sibling chain --
#: the access pattern of mcf's tree walks.
FULL_SRC = """
proc main():
    %nodes = malloc(500)
    %root = %nodes
    %node = add %nodes, 1
    [%root.parent] = null
    [%root.child] = %node
    [%root.sib] = null
    [%root.sib_prev] = null
    %i = 1
loop:
    if %i >= 499 goto last
    [%node.parent] = %root
    [%node.child] = null
    %next = add %node, 1
    [%node.sib] = %next
    %prev = sub %node, 1
    [%node.sib_prev] = %prev
    %cost = mul %i, 30
    [%node.potential] = %cost
    %node = add %node, 1
    %i = add %i, 1
    goto loop
last:
    [%node.parent] = %root
    [%node.child] = null
    [%node.sib] = null
    %prev = sub %node, 1
    [%node.sib_prev] = %prev
    %c = [%root.child]
walk:
    if %c == null goto out
    %c = [%c.sib]
    goto walk
out:
    return %root
"""


def build_program() -> Program:
    """The Figure 4(a) builder."""
    return parse_program(BUILD_SRC)


def update_program() -> Program:
    """The Figure 7 local-update fragment (with a concrete driver)."""
    return parse_program(UPDATE_SRC)


def full_program() -> Program:
    """Build + traversal (Table 4's 181.mcf row)."""
    return parse_program(FULL_SRC)
