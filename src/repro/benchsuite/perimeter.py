"""Olden *perimeter*: quaternary tree with parent links (Table 4).

The quadtree builder allocates a node, recursively builds the four
quadrant subtrees, attaches them, and sets each node's ``parent``
backward link -- "quaternary tree w/ parent links" in the paper's
table.  The recursive ``perimeter`` walk reads children and the parent
link (neighbour finding in the original uses parent chains).
"""

from __future__ import annotations

from repro.ir import Program, parse_program

__all__ = ["SRC", "program"]

SRC = """
proc build(%n, %parent):
    if %n > 0 goto rec
    return null
rec:
    %t = malloc()
    [%t.color] = 0
    %m = sub %n, 1
    %c1 = call build(%m, %t)
    %c2 = call build(%m, %t)
    %c3 = call build(%m, %t)
    %c4 = call build(%m, %t)
    [%t.nw] = %c1
    [%t.ne] = %c2
    [%t.sw] = %c3
    [%t.se] = %c4
    [%t.parent] = %parent
    return %t

proc perimeter(%t):
    if %t != null goto rec
    return 0
rec:
    %a = [%t.nw]
    %p1 = call perimeter(%a)
    %b = [%t.ne]
    %p2 = call perimeter(%b)
    %c = [%t.sw]
    %p3 = call perimeter(%c)
    %d = [%t.se]
    %p4 = call perimeter(%d)
    %up = [%t.parent]
    %s = add %p1, %p2
    %s = add %s, %p3
    %s = add %s, %p4
    return %s

proc main():
    %root = call build(4, null)
    %total = call perimeter(%root)
    return %root
"""


def program() -> Program:
    return parse_program(SRC)
