"""List-processing micro-programs.

The staples of the separation-logic shape-analysis literature
(Distefano/O'Hearn/Yang's and Magill et al.'s list analyses, which the
paper generalizes): build, traverse, append-build via an array, insert,
delete, reverse, and a doubly-linked variant.  These exercise the
synthesized ``list`` predicate, truncated instances as traversal
cursors, and the unfold/fold rules on the simplest structure.
"""

from __future__ import annotations

from repro.ir import Program, parse_program

__all__ = [
    "BUILD_SRC",
    "TRAVERSE_SRC",
    "REVERSE_SRC",
    "DELETE_SRC",
    "DOUBLY_SRC",
    "build_program",
    "traverse_program",
    "reverse_program",
    "delete_program",
    "doubly_program",
]

#: Push-front list builder.
BUILD_SRC = """
proc main():
    %n = 10
    %head = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %head
    %head = %p
    %n = sub %n, 1
    goto L
done:
    return %head
"""

#: Build then walk to the end.
TRAVERSE_SRC = """
proc build(%n):
    %head = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %head
    %head = %p
    %n = sub %n, 1
    goto L
done:
    return %head

proc main():
    %head = call build(10)
    %c = %head
T:
    if %c == null goto out
    %c = [%c.next]
    goto T
out:
    return %head
"""

#: In-place reversal (the classic strong-update workout).
REVERSE_SRC = """
proc build(%n):
    %head = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %head
    %head = %p
    %n = sub %n, 1
    goto L
done:
    return %head

proc main():
    %head = call build(10)
    %prev = null
R:
    if %head == null goto out
    %next = [%head.next]
    [%head.next] = %prev
    %prev = %head
    %head = %next
    goto R
out:
    return %prev
"""

#: Delete the node after the head (unfold two cells, fold back).
DELETE_SRC = """
proc build(%n):
    %head = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %head
    %head = %p
    %n = sub %n, 1
    goto L
done:
    return %head

proc main():
    %head = call build(10)
    if %head == null goto out
    %victim = [%head.next]
    if %victim == null goto out
    %rest = [%victim.next]
    [%head.next] = %rest
    free(%victim)
out:
    return %head
"""

#: Doubly-linked list built front-to-back (backward ``prev`` links).
DOUBLY_SRC = """
proc main():
    %n = 10
    %head = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %head
    [%p.prev] = null
    if %head == null goto skip
    [%head.prev] = %p
skip:
    %head = %p
    %n = sub %n, 1
    goto L
done:
    return %head
"""


def build_program() -> Program:
    return parse_program(BUILD_SRC)


def traverse_program() -> Program:
    return parse_program(TRAVERSE_SRC)


def reverse_program() -> Program:
    return parse_program(REVERSE_SRC)


def delete_program() -> Program:
    return parse_program(DELETE_SRC)


def doubly_program() -> Program:
    return parse_program(DOUBLY_SRC)
