"""Crash-isolating batch runner for the benchmark suite.

Runs each benchmark as its *own subprocess* with a per-run wall-clock
timeout, so that one pathological input -- an analysis that hangs, a
``RecursionError`` deep in fold/unfold, even an interpreter crash --
cannot take down the whole batch.  Each child prints a single JSON
record; the parent aggregates them into a :class:`BatchReport` with
pass/degraded/failed/crashed/timeout counts, the shape a CI job or a
perf-trajectory tracker consumes.

Usage::

    python -m repro.benchsuite.runner                 # all benchmarks
    python -m repro.benchsuite.runner treeadd power   # a subset
    python -m repro.benchsuite.runner --json out.json --mode strict
    python -m repro --batch                           # same, via the CLI

In-process mode (``--no-isolate``) skips the subprocess boundary: runs
are faster and still exception-contained (``ShapeAnalysis.run`` never
raises), but a hard hang or interpreter crash would stop the batch;
use it only where subprocesses are unavailable.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import ShapeAnalysis
from repro.benchsuite import TABLE4_PROGRAMS, entailstress, lemmaprogs, listprogs
from repro.childproc import (
    CHILD_CHAOS_ENV,
    apply_child_chaos,
    child_env,
    classify_exit,
    surviving_trace,
    timeout_diagnostic,
    worker_crash_diagnostic,
)
from repro.ir import Program
from repro.obs import merge_stat_dicts
from repro.reporting import render_batch_report

__all__ = [
    "CHILD_CHAOS_ENV",
    "CRUCIBLE_PREFIX",
    "EDIT_PREFIX",
    "OUTCOMES",
    "BatchReport",
    "RunRecord",
    "benchmark_factories",
    "crucible_names",
    "run_batch",
    "run_one",
    "trace_file_for",
    "main",
]

#: The coarse outcome classes a batch aggregates on.  ``pass``,
#: ``degraded`` and ``failed`` come from the analysis itself
#: (:attr:`AnalysisResult.outcome`); ``crashed`` and ``timeout`` are
#: assigned by the parent when the child process died or overran.  A
#: crash caused by the child being *killed by a signal* (segfault, OOM
#: kill, external SIGKILL) additionally records the signal name -- a
#: batch full of SIGKILLs is an infrastructure problem, not an analyzer
#: bug, and the report separates the two.
OUTCOMES = ("pass", "degraded", "failed", "crashed", "timeout")

#: Prefix for generated fuzz workloads: ``crucible:<seed>`` resolves to
#: the crucible generator's deterministic program for that seed, so fuzz
#: programs run under the same crash isolation as the curated suite.
CRUCIBLE_PREFIX = "crucible:"

#: Prefix for edited variants: ``edit:<base>@<seed>`` resolves *base*
#: (any resolvable benchmark name, including ``crucible:<seed>``) and
#: applies one deterministic crucible mutation driven by *seed* --
#: the "developer changed one procedure" workload behind incremental
#: re-analysis benchmarks and gates.  An optional ``+<count>`` suffix
#: applies that many mutations (``edit:treeadd@7+3``).
EDIT_PREFIX = "edit:"

# CHILD_CHAOS_ENV and the process-boundary helpers now live in
# :mod:`repro.childproc`, shared with the serve supervisor; the
# re-export keeps this module's historical public surface.


def benchmark_factories() -> dict[str, "callable[[], Program]"]:
    """Name -> fresh-program factory for every batch-runnable workload:
    the Table 4 suite plus the list staples."""
    factories: dict[str, "callable[[], Program]"] = {
        name: (lambda n=name: TABLE4_PROGRAMS()[n]) for name in TABLE4_PROGRAMS()
    }
    factories.update(
        {
            "list-build": listprogs.build_program,
            "list-traverse": listprogs.traverse_program,
            "list-reverse": listprogs.reverse_program,
            "list-delete": listprogs.delete_program,
            "list-doubly": listprogs.doubly_program,
            "entail-stress": entailstress.program,
            "lemma-refold": lemmaprogs.refold_program,
            "lemma-diffroot": lemmaprogs.diffroot_program,
            "lemma-sharedtail": lemmaprogs.sharedtail_program,
        }
    )
    return factories


@dataclass
class RunRecord:
    """One benchmark's outcome, JSON-round-trippable."""

    name: str
    outcome: str
    seconds: float = 0.0
    mode: str = "degrade"
    error: str | None = None
    #: signal name (``"SIGKILL"``...) when the child was killed by a
    #: signal; None for every other outcome, including ordinary crashes.
    signal: str | None = None
    diagnostics: list[dict] = field(default_factory=list)
    #: the full :meth:`AnalysisResult.to_record` payload when the
    #: analysis produced a result at all.
    result: dict | None = None
    #: path of the span trace the run wrote (``--trace DIR`` batches);
    #: survives the isolation boundary because the *parent* names the
    #: file and the child just writes to it.
    trace: str | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "outcome": self.outcome,
            "seconds": round(self.seconds, 6),
            "mode": self.mode,
            "error": self.error,
            "signal": self.signal,
            "diagnostics": self.diagnostics,
            "result": self.result,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: dict) -> RunRecord:
        return cls(
            name=data["name"],
            outcome=data["outcome"],
            seconds=data.get("seconds", 0.0),
            mode=data.get("mode", "degrade"),
            error=data.get("error"),
            signal=data.get("signal"),
            diagnostics=data.get("diagnostics", []),
            result=data.get("result"),
            trace=data.get("trace"),
        )


@dataclass
class BatchReport:
    """Aggregated outcomes of one batch run."""

    records: list[RunRecord]
    mode: str = "degrade"
    isolated: bool = True

    @property
    def counts(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        """True when every benchmark completed (possibly degraded)."""
        counts = self.counts
        return counts["failed"] == counts["crashed"] == counts["timeout"] == 0

    @property
    def signals(self) -> dict[str, int]:
        """Signal name -> how many children that signal killed."""
        signals: dict[str, int] = {}
        for record in self.records:
            if record.signal:
                signals[record.signal] = signals.get(record.signal, 0) + 1
        return signals

    def metrics_by_outcome(self) -> dict[str, dict]:
        """Canonical engine metrics aggregated per outcome class, merged
        across runs (and across the isolation boundary -- each child's
        metrics ride home inside its result record).  Counters sum;
        ``phase.*.seconds`` gauges sum (total phase time across the
        batch); other gauges keep their maximum; flattened histogram
        components (``*.dist.count``, ``*.dist.bucket.N``, ...) merge
        bucket-wise with the percentiles recomputed from the merged
        buckets, so per-outcome latency distributions stay honest
        across parallel children."""
        merged: dict[str, dict] = {}
        for record in self.records:
            if not record.result:
                continue
            stats = record.result.get("stats") or {}
            bucket = merged.setdefault(record.outcome, {})
            merge_stat_dicts(bucket, stats)
        return merged

    def budget_totals(self) -> dict:
        """Summed budget accounting across all runs that produced one
        -- the robustness numbers the perf trajectory tracks."""
        states = depth = 0
        contained = 0
        for record in self.records:
            if record.result:
                budget = record.result.get("budget", {})
                states += budget.get("states", 0)
                depth = max(depth, budget.get("peak_depth", 0))
            contained += sum(
                d.get("count", 1)
                for d in record.diagnostics
                if d.get("recovered")
            )
        return {
            "states": states,
            "peak_depth": depth,
            "contained_failures": contained,
            "total_seconds": round(
                sum(r.seconds for r in self.records), 6
            ),
        }

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "isolated": self.isolated,
            "counts": self.counts,
            "signals": self.signals,
            "budget": self.budget_totals(),
            "metrics": self.metrics_by_outcome(),
            "runs": [record.to_dict() for record in self.records],
        }

    def render(self) -> str:
        return render_batch_report(self.to_dict())


# ----------------------------------------------------------------------
# Single benchmark (the child side of the isolation boundary)
# ----------------------------------------------------------------------


def run_one(
    name: str,
    mode: str = "degrade",
    deadline: float | None = None,
    unroll: int = 2,
    state_budget: int = 20000,
    trace_path: "str | Path | None" = None,
    cache: bool = True,
    lemmas: bool = True,
) -> RunRecord:
    """Run one benchmark in-process.  ``ShapeAnalysis.run`` already
    contains analysis failures and internal errors; the extra guard
    here catches factory bugs and truly unexpected escapes so a batch
    record is always produced."""
    start = time.perf_counter()
    try:
        program = _resolve_benchmark(name)
        result = ShapeAnalysis(
            program,
            name=name,
            mode=mode,
            deadline_seconds=deadline,
            max_unroll=unroll,
            state_budget=state_budget,
            trace_path=trace_path,
            enable_cache=cache,
            enable_lemmas=lemmas,
        ).run()
    except Exception as exc:
        return RunRecord(
            name=name,
            outcome="crashed",
            seconds=time.perf_counter() - start,
            mode=mode,
            error=f"{type(exc).__name__}: {exc}",
            trace=str(trace_path) if trace_path else None,
        )
    record = result.to_record()
    return RunRecord(
        name=name,
        outcome=result.outcome,
        seconds=time.perf_counter() - start,
        mode=mode,
        error=result.failure,
        diagnostics=record["diagnostics"],
        result=record,
        trace=str(trace_path) if trace_path else None,
    )


def trace_file_for(trace_dir: "str | Path", name: str) -> Path:
    """Where a benchmark's trace goes under *trace_dir*.  Benchmark
    names can contain characters hostile to filenames
    (``crucible:7+2``); everything outside a conservative set becomes
    ``_``."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", name)
    return Path(trace_dir) / f"{safe}.trace.jsonl"


def _resolve_benchmark(name: str) -> Program:
    """Curated benchmarks come from the factory table;
    ``crucible:<seed>[+<mutations>]`` names regenerate the fuzz
    program deterministically from its seed -- which also works across
    the subprocess boundary, since the child re-derives the same
    program from the name alone."""
    if name.startswith(EDIT_PREFIX):
        from repro.crucible.generator import edit_program

        spec = name[len(EDIT_PREFIX):]
        base, sep, edit_spec = spec.rpartition("@")
        if not sep:
            raise KeyError(
                f"malformed edit benchmark {name!r}; expected "
                "edit:<base>@<seed>[+<count>]"
            )
        seed_text, _, count_text = edit_spec.partition("+")
        edited, _notes = edit_program(
            _resolve_benchmark(base),
            int(seed_text),
            count=int(count_text or 1),
        )
        return edited
    if name.startswith(CRUCIBLE_PREFIX):
        from repro.crucible.generator import generate_program

        spec = name[len(CRUCIBLE_PREFIX):]
        seed_text, _, mutation_text = spec.partition("+")
        return generate_program(
            int(seed_text), mutations=int(mutation_text or 0)
        ).program
    factories = benchmark_factories()
    if name not in factories:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(factories)}"
        )
    return factories[name]()


def crucible_names(seeds: int, base_seed: int = 1, mutations: int = 0) -> list[str]:
    """The batch names for a crucible seed range."""
    suffix = f"+{mutations}" if mutations else ""
    return [
        f"{CRUCIBLE_PREFIX}{seed}{suffix}"
        for seed in range(base_seed, base_seed + seeds)
    ]


# ----------------------------------------------------------------------
# Batch (the parent side)
# ----------------------------------------------------------------------


def _run_isolated(
    name: str,
    mode: str,
    timeout: float,
    deadline: float | None,
    unroll: int,
    state_budget: int,
    trace_path: "Path | None" = None,
    cache: bool = True,
    lemmas: bool = True,
) -> RunRecord:
    command = [
        sys.executable,
        "-m",
        "repro.benchsuite.runner",
        "--child",
        name,
        "--mode",
        mode,
        "--unroll",
        str(unroll),
        "--state-budget",
        str(state_budget),
    ]
    if deadline is not None:
        command += ["--deadline", str(deadline)]
    if trace_path is not None:
        command += ["--trace", str(trace_path)]
    if not cache:
        command += ["--no-cache"]
    if not lemmas:
        command += ["--no-lemmas"]
    start = time.perf_counter()
    try:
        proc = subprocess.run(
            command,
            capture_output=True,
            text=True,
            timeout=timeout,
            env=child_env(),
        )
    except subprocess.TimeoutExpired:
        trace = surviving_trace(trace_path)
        diagnostic = timeout_diagnostic(timeout, trace=trace)
        return RunRecord(
            name=name,
            outcome="timeout",
            seconds=time.perf_counter() - start,
            mode=mode,
            error=diagnostic.message,
            diagnostics=[diagnostic.to_dict()],
            trace=trace,
        )
    seconds = time.perf_counter() - start
    # A negative return code means the child was killed by a signal --
    # a different failure class from both a Python-level crash (the
    # child exits normally with a traceback) and a timeout (the parent
    # killed it): segfaults and OOM kills point at the platform, not
    # the analyzer, so the signal is classified and reported separately.
    killed_by = classify_exit(proc.returncode)
    if killed_by is not None:
        trace = surviving_trace(trace_path)
        diagnostic = worker_crash_diagnostic(
            f"child killed by {killed_by} (exit code {proc.returncode})",
            signal=killed_by,
            trace=trace,
        )
        return RunRecord(
            name=name,
            outcome="crashed",
            seconds=seconds,
            mode=mode,
            signal=killed_by,
            error=diagnostic.message,
            diagnostics=[diagnostic.to_dict()],
            trace=trace,
        )
    # The child prints exactly one JSON record on success; anything
    # else (nonzero exit, garbage stdout) is a crash of the child.
    try:
        payload = json.loads(proc.stdout.strip().splitlines()[-1])
        record = RunRecord.from_dict(payload)
    except (json.JSONDecodeError, IndexError, KeyError):
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()[-3:]
        return RunRecord(
            name=name,
            outcome="crashed",
            seconds=seconds,
            mode=mode,
            error=(
                f"child exited with code {proc.returncode}: "
                + (" | ".join(tail) or "no output")
            ),
            trace=surviving_trace(trace_path),
        )
    record.seconds = seconds
    return record


def run_batch(
    names: "list[str] | None" = None,
    mode: str = "degrade",
    timeout: float = 120.0,
    deadline: float | None = None,
    unroll: int = 2,
    state_budget: int = 20000,
    isolate: bool = True,
    trace_dir: "str | Path | None" = None,
    jobs: int = 1,
    cache: bool = True,
    lemmas: bool = True,
) -> BatchReport:
    """Run *names* (default: every known benchmark), one isolated
    subprocess each, and aggregate the outcomes.  With *trace_dir*,
    every run writes a span trace to
    ``<trace_dir>/<name>.trace.jsonl`` (the parent names the file, the
    child writes it, so traces survive the isolation boundary and even
    child death).

    ``jobs > 1`` runs up to that many *child processes* concurrently
    (a thread per in-flight child blocks on its subprocess, so the
    parallelism is real OS processes and crash isolation is exactly
    the serial path's).  Records land in input order regardless of
    completion order, so the batch JSON is byte-identical to a serial
    run modulo the timing fields; per-child trace files keep their
    parent-assigned names.  Parallelism requires the subprocess
    boundary: ``jobs > 1`` with ``isolate=False`` is rejected."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs > 1 and not isolate:
        raise ValueError(
            "parallel batch mode needs crash isolation; "
            "drop --no-isolate or use --jobs 1"
        )
    if names is None or not names:
        names = sorted(benchmark_factories())
    if trace_dir is not None:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)

    def run_at(name: str) -> RunRecord:
        trace_path = (
            trace_file_for(trace_dir, name) if trace_dir is not None else None
        )
        if isolate:
            return _run_isolated(
                name, mode, timeout, deadline, unroll, state_budget,
                trace_path=trace_path, cache=cache, lemmas=lemmas,
            )
        return run_one(
            name, mode, deadline, unroll, state_budget,
            trace_path=trace_path, cache=cache, lemmas=lemmas,
        )

    if jobs > 1 and len(names) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            records = list(pool.map(run_at, names))
    else:
        records = [run_at(name) for name in names]
    return BatchReport(records, mode=mode, isolated=isolate)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.benchsuite.runner",
        description="crash-isolating batch runner for the benchmark suite",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="benchmarks to run (default: all known)",
    )
    parser.add_argument("--child", metavar="NAME", help=argparse.SUPPRESS)
    parser.add_argument(
        "--mode",
        choices=("strict", "degrade"),
        default="degrade",
        help="analysis failure semantics (default degrade)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="per-benchmark isolation timeout in seconds (default 120)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-benchmark analysis deadline in seconds (cooperative)",
    )
    parser.add_argument(
        "--unroll", type=int, default=2, metavar="N",
        help="symbolic iterations before synthesis (default 2)",
    )
    parser.add_argument(
        "--state-budget", type=int, default=20000, metavar="N",
        help="worklist state budget per procedure (default 20000)",
    )
    parser.add_argument(
        "--no-isolate",
        action="store_true",
        help="run in-process instead of one subprocess per benchmark",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run up to N isolated child processes concurrently "
            "(default 1; requires isolation, output order stays "
            "deterministic)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-run entailment cache in every child",
    )
    parser.add_argument(
        "--no-lemmas",
        action="store_true",
        help="disable the lemma-synthesis entailment fallback in every "
        "child (lemmas only add passes; see tests/test_lemma_golden.py)",
    )
    parser.add_argument(
        "--crucible-seeds",
        type=int,
        default=0,
        metavar="N",
        help="also run crucible fuzz programs for seeds 1..N",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the structured batch report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        help=(
            "write one span trace per benchmark under DIR "
            "(<name>.trace.jsonl); in --child mode this is the exact "
            "trace FILE instead"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list known benchmarks and exit"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in sorted(benchmark_factories()):
            print(name)
        return 0
    if args.child:
        apply_child_chaos()
        record = run_one(
            args.child,
            mode=args.mode,
            deadline=args.deadline,
            unroll=args.unroll,
            state_budget=args.state_budget,
            trace_path=args.trace,
            cache=not args.no_cache,
            lemmas=not args.no_lemmas,
        )
        print(json.dumps(record.to_dict()))
        return 0
    if args.jobs > 1 and args.no_isolate:
        print(
            "repro.benchsuite.runner: --jobs needs the subprocess "
            "boundary; drop --no-isolate",
            file=sys.stderr,
        )
        return 2
    names = list(args.names)
    if args.crucible_seeds:
        if not names:
            names = sorted(benchmark_factories())
        names += crucible_names(args.crucible_seeds)
    report = run_batch(
        names,
        mode=args.mode,
        timeout=args.timeout,
        deadline=args.deadline,
        unroll=args.unroll,
        state_budget=args.state_budget,
        isolate=not args.no_isolate,
        trace_dir=args.trace,
        jobs=args.jobs,
        cache=not args.no_cache,
        lemmas=not args.no_lemmas,
    )
    print(report.render())
    if args.json:
        payload = json.dumps(report.to_dict(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
            print(f"report written to {args.json}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
