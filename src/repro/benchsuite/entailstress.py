"""An entailment-bound stress workload for the perf bench.

The curated Table 4 programs spend their time in folding, renaming and
synthesis; ``subsumes`` is a rounding error there, so they cannot show
what the entailment cache buys.  This program is the opposite extreme
by construction: one loop grows *K* independent lists at once (so every
abstract state carries K predicate instances plus the loop-carried
frontier cells), and *B* branch diamonds inside the body multiply the
states that meet -- and must be pairwise ``subsumes``-deduplicated --
at every join.  The resulting match searches over many
structurally-identical atoms dominate the analysis wall time, which is
exactly the workload the entailment cache exists for.

The program is ordinary, valid IR: the analysis must still converge on
the ``list`` predicate for each of the K chains and produce a passing
verdict.  ``K = 8`` / ``B = 2`` keeps a cold run under a second while
leaving enough search for cache effects to be measured reliably.
"""

from __future__ import annotations

from repro.ir import Program, parse_program

__all__ = ["STRESS_SRC", "program", "source"]


def source(lists: int = 8, diamonds: int = 2, iterations: int = 9) -> str:
    """The stress program's IR text for *lists* parallel chains and
    *diamonds* branch joins per loop body."""
    inits = "\n".join(f"    %h{i} = null" for i in range(lists))
    grow = []
    for i in range(lists):
        grow.append(f"    %p{i} = malloc()")
        grow.append(f"    [%p{i}.next] = %h{i}")
        grow.append(f"    %h{i} = %p{i}")
    forks = []
    for b in range(diamonds):
        forks.append(
            f"""
    %c{b} = [%p0.data]
    if %c{b} == null goto T{b}
    [%p{b}.mark] = null
    goto J{b}
T{b}:
    [%p{b}.mark] = %p0
J{b}:"""
        )
    return f"""
proc main():
    %n = {iterations}
{inits}
L:
    if %n <= 0 goto done
{chr(10).join(grow)}{''.join(forks)}
    %n = sub %n, 1
    goto L
done:
    return %h0
"""


#: The default stress program's source (K=8 lists, B=2 diamonds).
STRESS_SRC = source()


def program() -> Program:
    """Fresh copy of the default entailment-stress program."""
    return parse_program(STRESS_SRC)
