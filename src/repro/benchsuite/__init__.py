"""The benchmark programs of the paper's Table 4 (plus list staples):
181.mcf kernels and the Olden benchmarks treeadd, bisort, perimeter
and power, written in the textual IR.

:mod:`repro.benchsuite.runner` (imported lazily to avoid a cycle)
drives the whole suite through a crash-isolating batch runner with
per-run timeouts and structured pass/degraded/failed/crashed reports.
"""

from repro.benchsuite import (
    bisort,
    csources,
    entailstress,
    extensions,
    lemmaprogs,
    listprogs,
    mcf,
    perimeter,
    power,
    treeadd,
)
from repro.ir import Program

__all__ = [
    "TABLE4_PROGRAMS",
    "bisort",
    "csources",
    "entailstress",
    "extensions",
    "lemmaprogs",
    "listprogs",
    "mcf",
    "perimeter",
    "power",
    "treeadd",
]


def TABLE4_PROGRAMS() -> dict[str, Program]:
    """Fresh copies of the five Table 4 benchmark programs."""
    return {
        "181.mcf": mcf.full_program(),
        "treeadd": treeadd.program(),
        "bisort": bisort.program(),
        "perimeter": perimeter.program(),
        "power": power.program(),
    }


def __getattr__(name: str):
    # Lazy: runner imports TABLE4_PROGRAMS from this module.
    if name == "runner":
        from repro.benchsuite import runner

        return runner
    raise AttributeError(name)
