"""Olden *treeadd*: recursive binary-tree build and sum (Table 4).

The kernel allocates a balanced binary tree recursively and then sums
the node values with a recursive walk -- the simplest of the paper's
Olden rows ("binary tree", 162 instructions in their compiler's IR).
The ``val`` arithmetic is non-shape payload for the slicer.
"""

from __future__ import annotations

from repro.ir import Program, parse_program

__all__ = ["SRC", "program"]

SRC = """
proc build(%n):
    if %n > 0 goto rec
    return null
rec:
    %t = malloc()
    [%t.val] = %n
    %m = sub %n, 1
    %l = call build(%m)
    [%t.left] = %l
    %r = call build(%m)
    [%t.right] = %r
    return %t

proc treeadd(%t):
    if %t != null goto rec
    return 0
rec:
    %l = [%t.left]
    %a = call treeadd(%l)
    %r = [%t.right]
    %b = call treeadd(%r)
    %v = [%t.val]
    %s = add %a, %b
    %s = add %s, %v
    return %s

proc main():
    %root = call build(10)
    %total = call treeadd(%root)
    return %root
"""


def program() -> Program:
    return parse_program(SRC)
