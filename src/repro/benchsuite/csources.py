"""Mini-C source for the benchmark kernels.

The same workloads as the textual-IR modules, written in the C subset
and lowered through :mod:`repro.frontend` -- exercising the frontend
path end to end, the way the paper's analysis consumes output of its
C compiler.
"""

from __future__ import annotations

from repro.frontend import compile_c
from repro.ir import Program

__all__ = [
    "MCF_C",
    "TREEADD_C",
    "PERIMETER_C",
    "POWER_C",
    "mcf_c_program",
    "treeadd_c_program",
    "perimeter_c_program",
    "power_c_program",
]

MCF_C = """
struct node {
    struct node *child;
    struct node *parent;
    struct node *sib;
    struct node *sib_prev;
    int potential;
};

struct node *build() {
    struct node *nodes = malloc(500 * sizeof(struct node));
    struct node *root = nodes;
    struct node *node = nodes + 1;
    root->parent = NULL;
    root->child = node;
    root->sib = NULL;
    root->sib_prev = NULL;
    int i = 1;
    while (i < 499) {
        node->parent = root;
        node->child = NULL;
        node->sib = node + 1;
        node->sib_prev = node - 1;
        node->potential = i * 30;
        node = node + 1;
        i = i + 1;
    }
    node->parent = root;
    node->child = NULL;
    node->sib = NULL;
    node->sib_prev = node - 1;
    return root;
}

int main() {
    struct node *root = build();
    struct node *c = root->child;
    while (c != NULL) {
        c = c->sib;
    }
    return 0;
}
"""

TREEADD_C = """
struct tree { struct tree *left; struct tree *right; int val; };

struct tree *build(int n) {
    if (n <= 0) {
        return NULL;
    }
    struct tree *t = malloc(sizeof(struct tree));
    t->val = n;
    t->left = build(n - 1);
    t->right = build(n - 1);
    return t;
}

int treeadd(struct tree *t) {
    if (t == NULL) {
        return 0;
    }
    int a = treeadd(t->left);
    int b = treeadd(t->right);
    return a + b + t->val;
}

int main() {
    struct tree *root = build(10);
    int total = treeadd(root);
    return total;
}
"""

PERIMETER_C = """
struct quad {
    struct quad *nw;
    struct quad *ne;
    struct quad *sw;
    struct quad *se;
    struct quad *parent;
    int color;
};

struct quad *build(int n, struct quad *parent) {
    if (n <= 0) {
        return NULL;
    }
    struct quad *t = malloc(sizeof(struct quad));
    t->color = 0;
    struct quad *c1 = build(n - 1, t);
    struct quad *c2 = build(n - 1, t);
    struct quad *c3 = build(n - 1, t);
    struct quad *c4 = build(n - 1, t);
    t->nw = c1;
    t->ne = c2;
    t->sw = c3;
    t->se = c4;
    t->parent = parent;
    return t;
}

int perimeter(struct quad *t) {
    if (t == NULL) {
        return 0;
    }
    int s = perimeter(t->nw) + perimeter(t->ne)
          + perimeter(t->sw) + perimeter(t->se);
    return s + 1;
}

int main() {
    struct quad *root = build(4, NULL);
    int p = perimeter(root);
    return p;
}
"""

POWER_C = """
struct branch { struct branch *next; int demand; };
struct lateral { struct lateral *next; struct branch *branches; };

struct branch *build_branches(int n) {
    struct branch *h = NULL;
    while (n > 0) {
        struct branch *b = malloc(sizeof(struct branch));
        b->next = h;
        b->demand = 1;
        h = b;
        n = n - 1;
    }
    return h;
}

struct lateral *build_laterals(int n) {
    struct lateral *h = NULL;
    while (n > 0) {
        struct lateral *l = malloc(sizeof(struct lateral));
        l->next = h;
        l->branches = build_branches(5);
        h = l;
        n = n - 1;
    }
    return h;
}

int compute_branch(struct branch *b) {
    if (b == NULL) {
        return 0;
    }
    return compute_branch(b->next) + b->demand;
}

int compute_lateral(struct lateral *l) {
    if (l == NULL) {
        return 0;
    }
    return compute_lateral(l->next) + compute_branch(l->branches);
}

int main() {
    struct lateral *root = build_laterals(10);
    int total = compute_lateral(root);
    return total;
}
"""


def mcf_c_program() -> Program:
    return compile_c(MCF_C)


def treeadd_c_program() -> Program:
    return compile_c(TREEADD_C)


def perimeter_c_program() -> Program:
    return compile_c(PERIMETER_C)


def power_c_program() -> Program:
    return compile_c(POWER_C)
