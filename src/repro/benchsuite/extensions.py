"""Extension workloads beyond the paper's Table 4.

The paper evaluated 181.mcf and four Olden benchmarks; Olden has more.
These kernels probe the analysis past the published envelope:

* :func:`health_program` -- Olden *health*: a 4-ary tree of villages,
  each holding a patient waiting list; nested structures two levels
  deep (tree of lists), exactly the §3.2 "nested recursion" claim.
* :func:`em3d_program` -- Olden *em3d*: two node lists (E and H) where
  every node also points at a node of the *other* list.  The cross
  pointers are data-dependent, which puts the structure outside the
  tree-backbone class; the analysis must degrade to a *reported*
  failure or a sound result, never a wrong predicate.
* :func:`tsp_program` -- Olden *tsp* builds a cyclic doubly-linked
  tour.  A cyclic *backbone* (as opposed to backward links into an
  acyclic backbone) is outside the paper's descriptive class (§1: "any
  data type with a tree-like backbone"); again the required behaviour
  is a clean failure.
"""

from __future__ import annotations

from repro.ir import Program, parse_program

__all__ = [
    "HEALTH_SRC",
    "EM3D_SRC",
    "TSP_SRC",
    "health_program",
    "em3d_program",
    "tsp_program",
]

HEALTH_SRC = """
proc mkpatients(%n):
    %h = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %h
    [%p.time] = 0
    %h = %p
    %n = sub %n, 1
    goto L
done:
    return %h

proc mkvillage(%level, %parent):
    if %level > 0 goto rec
    return null
rec:
    %v = malloc()
    %m = sub %level, 1
    %c1 = call mkvillage(%m, %v)
    %c2 = call mkvillage(%m, %v)
    %c3 = call mkvillage(%m, %v)
    %c4 = call mkvillage(%m, %v)
    [%v.forward] = %c1
    [%v.back] = %c2
    [%v.left] = %c3
    [%v.right] = %c4
    [%v.parent] = %parent
    %ps = call mkpatients(3)
    [%v.waiting] = %ps
    return %v

proc countwait(%v):
    if %v != null goto rec
    return 0
rec:
    %a = [%v.forward]
    %c1 = call countwait(%a)
    %b = [%v.back]
    %c2 = call countwait(%b)
    %c = [%v.left]
    %c3 = call countwait(%c)
    %d = [%v.right]
    %c4 = call countwait(%d)
    %p = [%v.waiting]
    %n = 0
W:
    if %p == null goto out
    %n = add %n, 1
    %p = [%p.next]
    goto W
out:
    %s = add %c1, %c2
    %s = add %s, %c3
    %s = add %s, %c4
    %s = add %s, %n
    return %s

proc main():
    %root = call mkvillage(3, null)
    %total = call countwait(%root)
    return %root
"""

EM3D_SRC = """
proc mknodes(%n):
    %h = null
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.next] = %h
    %h = %p
    %n = sub %n, 1
    goto L
done:
    return %h

proc crosslink(%from, %to):
F:
    if %from == null goto done
    [%from.dep] = %to
    %from = [%from.next]
    if %to == null goto F
    %to = [%to.next]
    goto F
done:
    return null

proc main():
    %e = call mknodes(8)
    %h = call mknodes(8)
    %x = call crosslink(%e, %h)
    %y = call crosslink(%h, %e)
    return %e
"""

TSP_SRC = """
proc main():
    %n = 8
    %first = malloc()
    [%first.prev] = %first
    [%first.nxt] = %first
    %cur = %first
L:
    if %n <= 0 goto done
    %p = malloc()
    [%p.nxt] = %first
    [%p.prev] = %cur
    [%cur.nxt] = %p
    [%first.prev] = %p
    %cur = %p
    %n = sub %n, 1
    goto L
done:
    return %first
"""


def health_program() -> Program:
    return parse_program(HEALTH_SRC)


def em3d_program() -> Program:
    return parse_program(EM3D_SRC)


def tsp_program() -> Program:
    return parse_program(TSP_SRC)
