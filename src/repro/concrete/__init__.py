"""Concrete reference interpreter: runs the same IR the analysis sees;
the oracle for validating synthesized predicates against real heaps."""

from repro.concrete.heap import ConcreteHeap, MemoryError_
from repro.concrete.interp import (
    ExecutionResult,
    FuelExhausted,
    Interpreter,
    InterpreterError,
)

__all__ = [
    "ConcreteHeap",
    "ExecutionResult",
    "FuelExhausted",
    "Interpreter",
    "InterpreterError",
    "MemoryError_",
]
