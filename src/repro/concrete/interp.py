"""Concrete reference interpreter for the IR.

Runs the same programs the shape analysis consumes, producing real
heaps; the test suite checks the analysis' synthesized predicates
against these heaps through :mod:`repro.logic.model` (the semantic
oracle).  Execution is deterministic; a fuel limit guards against
non-terminating inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import (
    ArithOp,
    Assign,
    Branch,
    Call,
    Cond,
    Free,
    Goto,
    Load,
    Malloc,
    Nop,
    Return,
    Store,
)
from repro.ir.program import Program
from repro.ir.values import Global, IntConst, Null, Operand, Register
from repro.analysis.resilience import (
    CONCRETE_DIVERGENCE,
    SEVERITY_ERROR,
    Diagnostic,
)
from repro.concrete.heap import ConcreteHeap, MemoryError_

__all__ = [
    "Interpreter",
    "ExecutionResult",
    "InterpreterError",
    "FuelExhausted",
]


class InterpreterError(Exception):
    """A dynamic error of the interpreter itself (bad jump, missing
    procedure, unknown instruction).  An instance of this *base* class
    reaching a caller means the interpreter hit a bug-shaped condition;
    resource exhaustion is the :class:`FuelExhausted` subclass."""


class FuelExhausted(InterpreterError):
    """The concrete execution exceeded its fuel or call-depth allowance.

    This is a structured *divergence* verdict, not a bug: the program
    (as far as the budget can tell) does not terminate.  It converts to
    a :class:`~repro.analysis.resilience.Diagnostic` with the
    ``concrete-divergence`` code so batch drivers and the differential
    oracle can classify it alongside analysis diagnostics instead of
    parsing exception strings.
    """

    def __init__(self, message: str, *, resource: str, steps: int, limit: int):
        super().__init__(message)
        #: ``"fuel"`` or ``"call-depth"``.
        self.resource = resource
        self.steps = steps
        self.limit = limit

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(
            code=CONCRETE_DIVERGENCE,
            message=str(self),
            phase="concrete",
            severity=SEVERITY_ERROR,
            detail=f"resource={self.resource} steps={self.steps} limit={self.limit}",
        )


@dataclass
class ExecutionResult:
    """The outcome of a concrete run."""

    value: int
    heap: ConcreteHeap
    steps: int
    globals: dict[str, int] = field(default_factory=dict)


class Interpreter:
    """Direct interpreter over :class:`~repro.ir.program.Program`."""

    def __init__(
        self,
        program: Program,
        fuel: int = 1_000_000,
        max_call_depth: int = 400,
    ):
        program.validate()
        self.program = program
        self.fuel = fuel
        #: Guards the interpreter's own Python recursion: a runaway
        #: recursive program diverges with :class:`FuelExhausted`
        #: instead of crashing the host with ``RecursionError``.
        self.max_call_depth = max_call_depth
        self.heap = ConcreteHeap()
        self.global_cells: dict[str, int] = {
            name: self.heap.malloc() for name in program.globals
        }
        self._steps = 0
        self._depth = 0

    # ------------------------------------------------------------------
    def run(self, *args: int) -> ExecutionResult:
        """Execute the entry procedure with integer arguments."""
        value = self.call(self.program.entry, list(args))
        return ExecutionResult(
            value, self.heap, self._steps, dict(self.global_cells)
        )

    def call(self, name: str, args: list[int]) -> int:
        self._depth += 1
        try:
            if self._depth > self.max_call_depth:
                raise FuelExhausted(
                    f"call depth of {self.max_call_depth} exceeded "
                    f"entering {name}",
                    resource="call-depth",
                    steps=self._steps,
                    limit=self.max_call_depth,
                )
            return self._call(name, args)
        finally:
            self._depth -= 1

    def _call(self, name: str, args: list[int]) -> int:
        proc = self.program.proc(name)
        if len(args) != len(proc.params):
            raise InterpreterError(
                f"{name} expects {len(proc.params)} args, got {len(args)}"
            )
        registers: dict[Register, int] = dict(zip(proc.params, args))
        index = 0
        while True:
            self._steps += 1
            if self._steps > self.fuel:
                raise FuelExhausted(
                    f"fuel of {self.fuel} steps exhausted in {name}",
                    resource="fuel",
                    steps=self._steps,
                    limit=self.fuel,
                )
            if index >= len(proc.instrs):
                return 0
            instr = proc.instrs[index]
            if isinstance(instr, Nop):
                index += 1
            elif isinstance(instr, Assign):
                registers[instr.dst] = self._operand(registers, instr.src)
                index += 1
            elif isinstance(instr, ArithOp):
                registers[instr.dst] = self._arith(registers, instr)
                index += 1
            elif isinstance(instr, Malloc):
                count = (
                    self._operand(registers, instr.count)
                    if instr.count is not None
                    else 1
                )
                registers[instr.dst] = self.heap.malloc(max(count, 1))
                index += 1
            elif isinstance(instr, Free):
                self.heap.free(registers.get(instr.ptr, 0))
                index += 1
            elif isinstance(instr, Load):
                address = registers.get(instr.addr, 0)
                if address == 0:
                    raise MemoryError_("null dereference")
                registers[instr.dst] = self.heap.load(address, instr.field)
                index += 1
            elif isinstance(instr, Store):
                address = registers.get(instr.addr, 0)
                if address == 0:
                    raise MemoryError_("null dereference")
                self.heap.store(
                    address, instr.field, self._operand(registers, instr.src)
                )
                index += 1
            elif isinstance(instr, Call):
                result = self.call(
                    instr.func,
                    [self._operand(registers, a) for a in instr.args],
                )
                if instr.dst is not None:
                    registers[instr.dst] = result
                index += 1
            elif isinstance(instr, Return):
                if instr.value is None:
                    return 0
                return self._operand(registers, instr.value)
            elif isinstance(instr, Goto):
                index = proc.labels[instr.target]
            elif isinstance(instr, Branch):
                if self._condition(registers, instr.cond):
                    index = proc.labels[instr.target]
                else:
                    index += 1
            else:
                raise InterpreterError(f"cannot execute {instr}")

    # ------------------------------------------------------------------
    def _operand(self, registers: dict[Register, int], operand: Operand) -> int:
        if isinstance(operand, Null):
            return 0
        if isinstance(operand, IntConst):
            return operand.value
        if isinstance(operand, Global):
            return self.global_cells[operand.name]
        return registers.get(operand, 0)

    def _arith(self, registers: dict[Register, int], instr: ArithOp) -> int:
        lhs = self._operand(registers, instr.lhs)
        rhs = self._operand(registers, instr.rhs)
        op = instr.op
        if op == "add":
            return lhs + rhs
        if op == "sub":
            return lhs - rhs
        if op == "mul":
            return lhs * rhs
        if op == "div":
            return lhs // rhs if rhs else 0
        if op == "mod":
            return lhs % rhs if rhs else 0
        if op == "and":
            return lhs & rhs
        if op == "or":
            return lhs | rhs
        if op == "xor":
            return lhs ^ rhs
        if op == "shl":
            return lhs << (rhs & 63)
        if op == "shr":
            return lhs >> (rhs & 63)
        raise InterpreterError(f"unknown op {op}")

    def _condition(self, registers: dict[Register, int], cond: Cond) -> bool:
        lhs = self._operand(registers, cond.lhs)
        rhs = self._operand(registers, cond.rhs)
        return {
            "eq": lhs == rhs,
            "ne": lhs != rhs,
            "lt": lhs < rhs,
            "le": lhs <= rhs,
            "gt": lhs > rhs,
            "ge": lhs >= rhs,
        }[cond.op]
