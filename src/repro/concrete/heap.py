"""Concrete heap model for the reference interpreter.

Addresses are positive integers; address 0 is null.  A cell is a
mapping from field names to values (integers double as both data and
addresses, exactly like the untyped IR).  Array allocations occupy a
contiguous range of addresses so that element-level pointer arithmetic
(``p + k``) works the way 181.mcf expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ConcreteHeap", "MemoryError_"]


class MemoryError_(Exception):
    """Null dereference, use-after-free, or out-of-region arithmetic."""


@dataclass
class ConcreteHeap:
    """A growable heap of field-addressed cells."""

    cells: dict[int, dict[str, int]] = field(default_factory=dict)
    _next: int = 1
    #: base address -> element count, for allocated arrays
    regions: dict[int, int] = field(default_factory=dict)

    def malloc(self, count: int = 1) -> int:
        """Allocate *count* contiguous cells; returns the base address."""
        if count < 1:
            raise MemoryError_(f"allocation of {count} cells")
        base = self._next
        for i in range(count):
            self.cells[base + i] = {}
        self._next += count
        if count > 1:
            self.regions[base] = count
        return base

    def free(self, address: int) -> None:
        if address not in self.cells:
            raise MemoryError_(f"free of unallocated address {address}")
        count = self.regions.pop(address, 1)
        for i in range(count):
            self.cells.pop(address + i, None)

    def load(self, address: int, field_name: str) -> int:
        cell = self.cells.get(address)
        if cell is None:
            raise MemoryError_(f"load from unallocated address {address}")
        return cell.get(field_name, 0)

    def store(self, address: int, field_name: str, value: int) -> None:
        cell = self.cells.get(address)
        if cell is None:
            raise MemoryError_(f"store to unallocated address {address}")
        cell[field_name] = value

    def is_allocated(self, address: int) -> bool:
        return address in self.cells

    def reachable_from(self, address: int) -> set[int]:
        """Addresses reachable by following all pointer-valued fields."""
        seen: set[int] = set()
        stack = [address]
        while stack:
            node = stack.pop()
            if node in seen or node not in self.cells:
                continue
            seen.add(node)
            for value in self.cells[node].values():
                if value in self.cells and value not in seen:
                    stack.append(value)
        return seen

    def snapshot(self) -> dict[int, dict[str, int]]:
        """An immutable-ish copy for the model checker."""
        return {addr: dict(fields) for addr, fields in self.cells.items()}
