"""The analysis daemon: unix-socket front-end, backpressure, overload
degradation.

``python -m repro serve`` builds one :class:`AnalysisServer`: a
threading unix-socket server whose handlers parse one request line,
push the job through the supervised :class:`WorkerPool`, block on the
result and write one response line.  Two policies live here, not in
the pool:

* **backpressure** -- the pool's queue is bounded; when it is full a
  submit is *rejected immediately* with ``{"error": "overloaded",
  "retry_after": ...}`` instead of being buffered.  An overloaded
  service that answers "try again in 0.4s" in constant time stays
  diagnosable; one that queues unboundedly falls over opaquely;
* **graceful degradation** -- the :class:`OverloadController` samples
  queue depth at every submit.  Sustained pressure (depth at or above
  the high-water mark for ``enter_after`` consecutive samples) flips
  the service to the *degraded* rung: jobs that did not pin a mode are
  forced to ``degrade`` and their cooperative deadlines are tightened,
  trading per-job thoroughness for queue drain rate.  Sustained calm
  (depth at or below the low-water mark for ``exit_after`` samples)
  recovers to *strict*.  The two-threshold hysteresis keeps the ladder
  from flapping on a noisy queue.

Every transition and job outcome is recorded through the PR-3 obs
layer: ``serve.*`` metrics (schema-checked like engine metrics) and
tracer events, so an operator can replay exactly when the service
entered degrade and which jobs rode through it.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time

from repro import obs
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    JobSpec,
    ProtocolError,
    default_socket_path,
    parse_request,
    read_message,
    write_message,
)
from repro.serve.supervisor import PoolFull, WorkerPool

__all__ = [
    "AnalysisServer",
    "OverloadController",
    "acquire_pidfile",
    "main",
    "release_pidfile",
]

#: ``serve.state`` gauge values.
STATE_STRICT = 0
STATE_DEGRADED = 1


class OverloadController:
    """The degradation ladder: strict <-> degraded with hysteresis.

    Pure policy, no I/O -- ``sample(depth)`` folds one queue-depth
    observation in and reports a transition (``"entered"`` /
    ``"exited"`` / None); ``apply(spec)`` rewrites a job spec for the
    current rung.  Sampling happens wherever traffic happens (every
    submit), so recovery is evaluated exactly when it matters: the
    next job to arrive after pressure subsides.
    """

    def __init__(
        self,
        high_water: int,
        low_water: "int | None" = None,
        enter_after: int = 3,
        exit_after: int = 5,
        degraded_deadline: float = 5.0,
    ):
        if high_water < 1:
            raise ValueError("high_water must be >= 1")
        self.high_water = high_water
        #: Default low-water at half the high-water mark: the gap is
        #: the hysteresis band.
        self.low_water = (
            low_water if low_water is not None else high_water // 2
        )
        if self.low_water >= self.high_water:
            raise ValueError("low_water must be below high_water")
        self.enter_after = enter_after
        self.exit_after = exit_after
        self.degraded_deadline = degraded_deadline
        self.degraded = False
        self._hot_streak = 0
        self._calm_streak = 0

    def sample(self, depth: int) -> "str | None":
        """Fold one depth observation; a transition name or None."""
        if not self.degraded:
            if depth >= self.high_water:
                self._hot_streak += 1
                if self._hot_streak >= self.enter_after:
                    self.degraded = True
                    self._hot_streak = 0
                    self._calm_streak = 0
                    return "entered"
            else:
                self._hot_streak = 0
            return None
        if depth <= self.low_water:
            self._calm_streak += 1
            if self._calm_streak >= self.exit_after:
                self.degraded = False
                self._calm_streak = 0
                self._hot_streak = 0
                return "exited"
        else:
            self._calm_streak = 0
        return None

    def apply(self, spec: JobSpec) -> bool:
        """Rewrite *spec* for the current rung; True when the degraded
        rung changed it.  Jobs that *pinned* ``mode="strict"`` keep it
        (an explicit request is a contract), but deadlines tighten for
        everyone -- latency is the resource under contention."""
        if not self.degraded:
            return False
        changed = False
        if spec.mode is None:
            spec.mode = "degrade"
            changed = True
        if spec.deadline is None or spec.deadline > self.degraded_deadline:
            spec.deadline = self.degraded_deadline
            changed = True
        return changed

    @property
    def state(self) -> str:
        return "degraded" if self.degraded else "strict"


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: one request line, one response line."""

    def handle(self) -> None:
        server: "AnalysisServer" = self.server.analysis_server
        import json

        try:
            message = read_message(self.rfile)
            if message is None:
                return
            request = parse_request(json.dumps(message))
        except ProtocolError as exc:
            write_message(
                self.wfile,
                {"ok": False, "error": ERR_BAD_REQUEST, "message": str(exc)},
            )
            return
        response = server.dispatch(request)
        write_message(self.wfile, response)


class _SocketServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True
    # A burst of concurrent clients (the load generator, the smoke
    # gate) must queue at the accept() boundary, not bounce off the
    # default backlog of 5 with EAGAIN -- backpressure is the job
    # queue's, explicit and observable, never the socket's.
    request_queue_size = 128


class AnalysisServer:
    """The daemon: socket front-end + pool + overload policy + obs."""

    def __init__(
        self,
        socket_path: "str | None" = None,
        workers: int = 2,
        capacity: int = 16,
        max_retries: int = 2,
        cache_size: int = 65536,
        default_mode: str = "strict",
        degraded_deadline: float = 5.0,
        high_water: "int | None" = None,
        enter_after: int = 3,
        exit_after: int = 5,
        trace_path: "str | None" = None,
        store_path: "str | None" = None,
    ):
        self.socket_path = socket_path or default_socket_path()
        self.default_mode = default_mode
        self.store_path = store_path
        self.metrics = obs.Metrics()
        self.tracer = (
            obs.Tracer.to_path(trace_path) if trace_path else obs.NULL_TRACER
        )
        self.overload = OverloadController(
            # Default high-water at ~3/4 capacity: reject-at-full still
            # fires first; the ladder reacts *before* hard rejection.
            high_water=high_water if high_water is not None else max(
                1, (capacity * 3) // 4
            ),
            enter_after=enter_after,
            exit_after=exit_after,
            degraded_deadline=degraded_deadline,
        )
        self._overload_lock = threading.Lock()
        self._shutting_down = threading.Event()
        self._started_at = time.monotonic()
        self._queue_peak = 0
        self.pool = WorkerPool(
            workers=workers,
            capacity=capacity,
            max_retries=max_retries,
            cache_size=cache_size,
            default_mode=default_mode,
            store_path=store_path,
            on_event=self._pool_event,
        )
        self.metrics.gauge("serve.state", STATE_STRICT)
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead server
        self._socket_server = _SocketServer(self.socket_path, _RequestHandler)
        self._socket_server.analysis_server = self

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown`."""
        try:
            self._socket_server.serve_forever(poll_interval=0.2)
        finally:
            self.close()

    def shutdown(self) -> None:
        """Stop accepting, fail queued jobs, stop workers."""
        self._shutting_down.set()
        threading.Thread(
            target=self._socket_server.shutdown, daemon=True
        ).start()

    def close(self) -> None:
        self._shutting_down.set()
        self._socket_server.server_close()
        self.pool.stop()
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self.tracer.close()

    # ------------------------------------------------------------------
    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "status":
            return {"ok": True, "status": self.status()}
        if op == "stats":
            self.metrics.inc("serve.stats.requests")
            return {"ok": True, "stats": self.stats()}
        if op == "shutdown":
            self.shutdown()
            return {"ok": True, "shutdown": True}
        return self.handle_submit(request, op=op)

    def handle_submit(self, request: dict, op: str = "submit") -> dict:
        if self._shutting_down.is_set():
            return {
                "ok": False,
                "error": ERR_SHUTTING_DOWN,
                "message": "server is shutting down",
            }
        try:
            spec = JobSpec.from_dict(request.get("spec"))
        except ProtocolError as exc:
            return {
                "ok": False,
                "error": ERR_BAD_REQUEST,
                "message": str(exc),
            }
        # ``analyze-diff`` is submit with an edit instruction required:
        # the op exists so edit-loop clients fail loudly when they
        # forget the edit (a plain re-analysis would silently measure
        # the wrong thing), and so traffic dashboards can tell the two
        # job shapes apart.
        if op == "analyze-diff" and spec.edit is None:
            return {
                "ok": False,
                "error": ERR_BAD_REQUEST,
                "message": "analyze-diff needs spec.edit "
                '(e.g. {"seed": 7, "kinds": ["dead-store"]})',
            }
        depth = self.pool.queue_depth
        with self._overload_lock:
            transition = self.overload.sample(depth)
            degraded = self.overload.apply(spec)
            state = self.overload.state
        if transition is not None:
            self._record_transition(transition, depth)
        self.metrics.inc("serve.jobs.submitted")
        self._queue_peak = max(self._queue_peak, depth)
        self.metrics.gauge("serve.queue.depth", depth)
        self.metrics.gauge("serve.queue.peak", self._queue_peak)
        if degraded:
            self.metrics.inc("serve.jobs.degraded")
        try:
            job = self.pool.submit(spec, degraded=degraded)
        except PoolFull:
            self.metrics.inc("serve.jobs.rejected")
            retry_after = round(0.1 + 0.05 * depth, 3)
            if self.tracer.enabled:
                self.tracer.event(
                    "serve.reject", queue_depth=depth, retry_after=retry_after
                )
            return {
                "ok": False,
                "error": ERR_OVERLOADED,
                "retry_after": retry_after,
                "queue_depth": depth,
                "state": state,
            }
        started = time.monotonic()
        # Generous backstop: every retry may burn the full isolation
        # timeout plus backoff.  The supervisor's no-silent-loss
        # contract means this wait always resolves; the cap only
        # guards a supervisor *bug* from wedging the connection.
        backstop = spec.timeout * (self.pool.max_retries + 2) + 120.0
        if not job.wait(timeout=backstop):
            self.metrics.inc("serve.jobs.crashed")
            return {
                "ok": False,
                "error": ERR_BAD_REQUEST,
                "message": f"job {job.id} did not resolve (supervisor bug)",
            }
        record = job.record
        seconds = time.monotonic() - started
        self.metrics.inc("serve.jobs.completed")
        self.metrics.observe("serve.job.seconds", seconds)
        wait_seconds = job.serve_info.get("queue_wait_seconds")
        if wait_seconds is not None:
            self.metrics.observe("serve.job.queue_wait_seconds", wait_seconds)
        outcome = record.get("outcome")
        if outcome == "crashed":
            self.metrics.inc("serve.jobs.crashed")
        elif outcome == "timeout":
            self.metrics.inc("serve.jobs.timeout")
        if self.tracer.enabled:
            self.tracer.event(
                "serve.job",
                id=job.id,
                benchmark=spec.benchmark,
                outcome=outcome,
                seconds=round(seconds, 6),
                degraded=degraded,
                attempts=job.serve_info.get("attempts"),
                worker=job.serve_info.get("worker"),
            )
        serve_info = dict(job.serve_info)
        serve_info.update(id=job.id, state=state, seconds=round(seconds, 6))
        return {"ok": True, "record": record, "serve": serve_info}

    # ------------------------------------------------------------------
    def status(self) -> dict:
        return {
            "socket": self.socket_path,
            "uptime_seconds": round(
                time.monotonic() - self._started_at, 3
            ),
            "state": self.overload.state,
            "queue_depth": self.pool.queue_depth,
            "queue_capacity": self.pool.capacity,
            "high_water": self.overload.high_water,
            "low_water": self.overload.low_water,
            "default_mode": self.default_mode,
            "store": self.store_path,
            "workers": self.pool.worker_info(),
            "metrics": self.metrics.to_dict(),
        }

    def stats(self) -> dict:
        """The live-telemetry payload behind ``python -m repro stats``.

        ``server`` is a lossless snapshot of the daemon's own registry
        (job counters, latency histograms, the overload ladder);
        ``workers`` is the pool's per-worker telemetry including dead
        generations; ``engine`` merges every worker's engine-metrics
        snapshot (live and archived) into one aggregate registry --
        histogram buckets sum, so the percentiles in it are the pool's
        true distribution, not an average of averages."""
        worker_stats = self.pool.stats()
        engine = obs.Metrics()
        for info in worker_stats:
            obs.merge_snapshot(engine, info.get("metrics"))
            for generation in info.get("generations") or []:
                obs.merge_snapshot(engine, generation.get("metrics"))
        depth = self.pool.queue_depth
        self.metrics.gauge("serve.queue.depth", depth)
        return {
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "state": self.overload.state,
            "queue_depth": depth,
            "queue_capacity": self.pool.capacity,
            "queue_peak": self._queue_peak,
            "restarts": sum(i.get("restarts", 0) for i in worker_stats),
            "server": obs.snapshot(self.metrics),
            "engine": obs.snapshot(engine),
            "workers": worker_stats,
        }

    def _record_transition(self, transition: str, depth: int) -> None:
        if transition == "entered":
            self.metrics.inc("serve.degrade.entered")
            self.metrics.gauge("serve.state", STATE_DEGRADED)
        else:
            self.metrics.inc("serve.degrade.exited")
            self.metrics.gauge("serve.state", STATE_STRICT)
        if self.tracer.enabled:
            self.tracer.event(
                f"serve.degrade.{transition}", queue_depth=depth
            )

    def _pool_event(self, name: str, **attrs) -> None:
        """The pool's telemetry hook: counters + trace events."""
        if name in obs.METRIC_SCHEMA:
            self.metrics.inc(name)
        if self.tracer.enabled:
            self.tracer.event(
                name,
                **{
                    k: v
                    for k, v in attrs.items()
                    if isinstance(v, (str, int, float, bool, type(None)))
                },
            )


def acquire_pidfile(path: str) -> bool:
    """Claim *path* for this process; False when another live server
    already holds it.

    A pidfile left by a crashed or SIGKILLed server is *stale*: the
    recorded pid either no longer exists (``ESRCH``) or is unreadable
    garbage, and the file is silently reclaimed.  Only a pid that is
    demonstrably alive (signal 0 succeeds, or fails with ``EPERM`` --
    alive but owned by someone else) blocks the start: refusing to
    double-start protects the socket path and the shared store from
    two pools believing they own the same worker indices.
    """
    import errno

    try:
        text = open(path).read().strip()
    except FileNotFoundError:
        text = ""
    except OSError:
        text = ""
    if text:
        try:
            pid = int(text)
            os.kill(pid, 0)
            return False  # alive: refuse to double-start
        except (ValueError, ProcessLookupError):
            pass  # garbage or ESRCH: stale, reclaim
        except PermissionError:
            return False  # EPERM: alive under another uid
        except OSError as exc:  # pragma: no cover - exotic platforms
            if exc.errno != errno.ESRCH:
                return False
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w") as handle:
        handle.write(f"{os.getpid()}\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return True


def release_pidfile(path: str) -> None:
    """Remove *path* iff it still names this process."""
    try:
        if open(path).read().strip() == str(os.getpid()):
            os.unlink(path)
    except OSError:
        pass


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro serve`` -- run the daemon in the foreground."""
    import argparse
    import signal as signal_mod
    import sys

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="analysis daemon: supervised worker pool over a unix socket",
    )
    parser.add_argument("--socket", default=None, help="unix socket path")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--queue", type=int, default=16, help="bounded queue capacity"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-runs of a job whose worker died before giving up",
    )
    parser.add_argument("--cache-size", type=int, default=65536)
    parser.add_argument(
        "--mode", choices=("strict", "degrade"), default="strict"
    )
    parser.add_argument(
        "--high-water",
        type=int,
        default=None,
        help="queue depth that arms the degrade ladder (default: 3/4 capacity)",
    )
    parser.add_argument(
        "--degraded-deadline",
        type=float,
        default=5.0,
        help="cooperative deadline forced on jobs while degraded",
    )
    parser.add_argument(
        "--trace", default=None, help="write serve.* trace events to FILE"
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="shared durable summary store for the whole pool "
        "(cross-worker warm tier that survives restarts)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="ignore --store and any REPRO_STORE default",
    )
    parser.add_argument(
        "--pidfile",
        default=None,
        metavar="PATH",
        help="write the daemon pid to PATH; refuse to start while "
        "another live server holds it (a stale pidfile from a dead "
        "process is reclaimed)",
    )
    args = parser.parse_args(argv)

    if args.pidfile and not acquire_pidfile(args.pidfile):
        print(
            f"repro serve: refusing to start: pidfile {args.pidfile} "
            f"names a live process ({open(args.pidfile).read().strip()})",
            file=sys.stderr,
        )
        return 1

    store_path = None if args.no_store else (
        args.store or os.environ.get("REPRO_STORE")
    )
    # Register as a live store consumer so ``repro store-gc`` refuses
    # to evict the pool's warm working set out from under it.
    if store_path:
        from repro.store.gc import register_store_pid

        register_store_pid(store_path, role="serve")
    server = AnalysisServer(
        socket_path=args.socket,
        workers=args.workers,
        capacity=args.queue,
        max_retries=args.retries,
        cache_size=args.cache_size,
        default_mode=args.mode,
        degraded_deadline=args.degraded_deadline,
        high_water=args.high_water,
        trace_path=args.trace,
        store_path=store_path,
    )
    for signum in (signal_mod.SIGTERM, signal_mod.SIGINT):
        signal_mod.signal(signum, lambda *_: server.shutdown())
    print(
        f"repro serve: {args.workers} worker(s), queue {args.queue}, "
        f"mode {args.mode}, socket {server.socket_path}"
        + (f", store {store_path}" if store_path else ""),
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        if store_path:
            from repro.store.gc import release_store_pid

            release_store_pid(store_path)
        if args.pidfile:
            release_pidfile(args.pidfile)
    print("repro serve: stopped", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
