"""``python -m repro stats`` -- live telemetry from a running daemon.

One ``{"op": "stats"}`` round-trip against the serve socket, rendered
three ways:

* default: human tables -- service overview (state, queue, restarts),
  job-latency percentiles straight from the rolling histograms,
  per-worker cache/store hit rates (dead generations included, so a
  restart's cold/warm split is visible), and the pool-wide engine
  aggregate;
* ``--json``: the raw payload, for scripts and dashboards;
* ``--prom``: a Prometheus-style text exposition of the server and
  aggregated engine registries, for scrape-style collection.

The daemon does no periodic push: workers attach a cumulative metrics
snapshot to every result line they already write, the supervisor keeps
the freshest one per worker, and this command merges them at read
time.  Zero steady-state cost, and the numbers are exactly as stale as
the pool's quietest worker.
"""

from __future__ import annotations

import json
import sys

from repro import obs
from repro.obs.histo import Histogram
from repro.reporting import render_table
from repro.serve.client import Client, ServerError
from repro.serve.protocol import ProtocolError

__all__ = ["main", "render_stats"]

#: Engine counters the human view promotes to headline totals (the
#: full set is always in ``--json`` / ``--prom``).
_HEADLINE_COUNTERS = (
    "engine.states",
    "engine.summaries.reused",
    "entailment.queries",
    "entailment.cache.hits",
    "entailment.cache.misses",
    "store.lookups",
    "store.hits",
    "store.misses",
)


def _fmt(value, digits: int = 6) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def _hit_rate(stats: "dict | None") -> str:
    if not stats:
        return "-"
    rate = stats.get("hit_rate")
    if rate is None:
        lookups = stats.get("lookups") or (
            (stats.get("hits") or 0) + (stats.get("misses") or 0)
        )
        rate = (stats.get("hits") or 0) / lookups if lookups else 0.0
    return f"{rate:.3f}"


def _histogram_rows(snap: "dict | None", names) -> list:
    rows = []
    histograms = (snap or {}).get("histograms") or {}
    for name in names:
        data = histograms.get(name)
        if not data:
            continue
        hist = Histogram.from_dict(data)
        rows.append(
            [
                name,
                hist.count,
                _fmt(round(hist.quantile(0.5), 6)),
                _fmt(round(hist.quantile(0.9), 6)),
                _fmt(round(hist.quantile(0.99), 6)),
                _fmt(round(hist.max, 6)),
            ]
        )
    return rows


def render_stats(payload: dict) -> str:
    """The human view of one stats payload."""
    server = payload.get("server") or {}
    counters = server.get("counters") or {}
    sections = []

    overview = [
        ["state", payload.get("state", "?")],
        ["uptime (s)", _fmt(payload.get("uptime_seconds"))],
        [
            "queue depth / capacity",
            f"{payload.get('queue_depth', '?')} / "
            f"{payload.get('queue_capacity', '?')}",
        ],
        ["queue peak", payload.get("queue_peak", 0)],
        ["worker restarts", payload.get("restarts", 0)],
        ["jobs submitted", counters.get("serve.jobs.submitted", 0)],
        ["jobs completed", counters.get("serve.jobs.completed", 0)],
        ["jobs rejected", counters.get("serve.jobs.rejected", 0)],
        ["jobs degraded", counters.get("serve.jobs.degraded", 0)],
        ["degrade entered/exited",
         f"{counters.get('serve.degrade.entered', 0)} / "
         f"{counters.get('serve.degrade.exited', 0)}"],
    ]
    sections.append(render_table(["Service", "Value"], overview,
                                 title="repro serve: live stats"))

    latency = _histogram_rows(
        server, ("serve.job.seconds", "serve.job.queue_wait_seconds")
    )
    if latency:
        sections.append(
            render_table(
                ["Latency", "Count", "p50", "p90", "p99", "Max"],
                latency,
                title="Job latency (seconds)",
            )
        )

    worker_rows = []
    for info in payload.get("workers") or []:
        for generation in info.get("generations") or []:
            worker_rows.append(
                [
                    f"{info.get('index')} (gen {generation.get('generation')})",
                    "dead",
                    generation.get("jobs_done", 0),
                    _hit_rate(generation.get("cache")),
                    _hit_rate(generation.get("store")),
                ]
            )
        worker_rows.append(
            [
                f"{info.get('index')} (gen {info.get('generation')})",
                "up" if info.get("alive") else "down",
                info.get("jobs_done", 0),
                _hit_rate(info.get("cache")),
                _hit_rate(info.get("store")),
            ]
        )
    if worker_rows:
        sections.append(
            render_table(
                ["Worker", "State", "Jobs", "Cache hit", "Store hit"],
                worker_rows,
                title="Workers (per generation)",
            )
        )

    engine = payload.get("engine") or {}
    engine_counters = engine.get("counters") or {}
    headline = [
        [name, engine_counters[name]]
        for name in _HEADLINE_COUNTERS
        if name in engine_counters
    ]
    engine_hists = _histogram_rows(
        engine, sorted((engine.get("histograms") or {}))
    )
    if headline:
        sections.append(
            render_table(
                ["Engine metric", "Total"], headline,
                title="Engine aggregate (all workers, all generations)",
            )
        )
    if engine_hists:
        sections.append(
            render_table(
                ["Engine histogram", "Count", "p50", "p90", "p99", "Max"],
                engine_hists,
            )
        )
    return "\n\n".join(sections)


def _merged_registry(payload: dict) -> obs.Metrics:
    """Server + engine-aggregate registries as one, for ``--prom``."""
    merged = obs.restore(payload.get("server"))
    merged.merge(obs.restore(payload.get("engine")))
    merged.gauge("serve.queue.depth", payload.get("queue_depth", 0))
    merged.gauge("serve.queue.peak", payload.get("queue_peak", 0))
    return merged


def main(argv: "list[str] | None" = None) -> int:
    """Exit codes: 0 rendered, 3 could not talk to the server."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="live telemetry from a running repro serve daemon",
    )
    parser.add_argument("--socket", default=None, help="unix socket path")
    parser.add_argument(
        "--json", action="store_true", help="print the raw stats payload"
    )
    parser.add_argument(
        "--prom",
        action="store_true",
        help="print a Prometheus-style text exposition",
    )
    args = parser.parse_args(argv)

    try:
        payload = Client(args.socket).stats()
    except (OSError, ProtocolError, ServerError) as exc:
        print(f"repro stats: {exc}", file=sys.stderr)
        return 3
    if args.json:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    elif args.prom:
        sys.stdout.write(obs.render_prometheus(_merged_registry(payload)))
    else:
        print(render_stats(payload))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
