"""Load generator: the service under N concurrent clients, measured.

``python -m repro serve-bench`` forks a daemon, drives it with a
thread pool of clients submitting benchmarks round-robin, and reports
what a service owner actually wants to know:

* **latency** -- p50 / p99 / mean / max end-to-end seconds per job
  (queue wait included: that is what the client experiences);
* **throughput** -- completed jobs per second of wall time;
* **backpressure** -- how many submits were rejected-with-retry-after
  and how long clients spent backed off (the explicit cost of the
  bounded queue);
* **cache warmth** -- mean ``entailment.cache`` hit rate of each
  worker generation's *first* job (cold) vs all later jobs (warm).
  The gap is the PR-4 warm-path speedup showing up as a steady-state
  service number rather than a bench-harness artifact.

The generator is also importable (:func:`run_load`) so the smoke
harness and tests reuse the same traffic engine.
"""

from __future__ import annotations

import threading
import time

from repro.serve.client import Client, OverloadedError, ServerError
from repro.serve.protocol import JobSpec

__all__ = ["main", "percentile", "run_load"]

DEFAULT_BENCHMARKS = ("list-build", "list-traverse", "list-reverse")
#: Edit-loop (``--diff``) defaults: Table-4 programs with enough
#: procedures that a one-procedure edit leaves a cone worth replaying.
DIFF_BENCHMARKS = ("treeadd", "bisort", "perimeter", "power")


def percentile(values: list, p: float) -> float:
    """The *p*-th percentile (0..100) by linear interpolation; 0.0 for
    an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def _hit_rate(stats: dict) -> "float | None":
    hits = stats.get("entailment.cache.hits", 0)
    misses = stats.get("entailment.cache.misses", 0)
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def run_load(
    socket_path: "str | None" = None,
    benchmarks: "tuple | list" = DEFAULT_BENCHMARKS,
    clients: int = 4,
    jobs_per_client: int = 5,
    timeout: float = 120.0,
    mode: "str | None" = None,
    diff: bool = False,
) -> dict:
    """Drive the daemon at *socket_path* and return the report dict.

    With *diff*, every job is an ``analyze-diff``: the same benchmark
    names, but each job analyzes a distinct seeded one-procedure
    dead-store edit, the CI traffic shape the incremental layer exists
    for -- persistent workers keep the base fixpoint tables warm, so
    steady-state latency is cone-sized, not program-sized, and the
    report adds the replay hit rate that proves it."""
    client = Client(socket_path)
    results: list = []
    errors: list = []
    rejected = 0
    backoff_seconds = 0.0
    lock = threading.Lock()

    def one_client(client_index: int) -> None:
        nonlocal rejected, backoff_seconds
        for j in range(jobs_per_client):
            sequence = client_index * jobs_per_client + j
            benchmark = benchmarks[sequence % len(benchmarks)]
            edit = None
            if diff:
                # One distinct edit per job: seeds vary so the service
                # sees a stream of different diffs against the same
                # bases, exactly like per-commit CI traffic.
                edit = {"seed": sequence + 1, "kinds": ["dead-store"]}
            spec = JobSpec(
                benchmark=benchmark, mode=mode, timeout=timeout, edit=edit
            )
            started = time.monotonic()
            while True:
                try:
                    response = client.submit(
                        spec,
                        retry_for=0.0,
                        op="analyze-diff" if diff else "submit",
                    )
                    break
                except OverloadedError as exc:
                    with lock:
                        rejected += 1
                        backoff_seconds += exc.retry_after
                    time.sleep(exc.retry_after)
                except (OSError, ServerError) as exc:
                    with lock:
                        errors.append(f"{benchmark}: {exc}")
                    return
            latency = time.monotonic() - started
            record = response.get("record") or {}
            serve = response.get("serve") or {}
            stats = (record.get("result") or {}).get("stats") or {}
            with lock:
                results.append(
                    {
                        "benchmark": benchmark,
                        "outcome": record.get("outcome"),
                        "latency": latency,
                        "worker": serve.get("worker"),
                        "generation": serve.get("generation"),
                        "degraded": serve.get("degraded"),
                        "hit_rate": _hit_rate(stats),
                        "replayed": stats.get("incr.summaries.replayed", 0),
                    }
                )

    wall_start = time.monotonic()
    threads = [
        threading.Thread(target=one_client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - wall_start

    latencies = [r["latency"] for r in results]
    outcomes: dict = {}
    for r in results:
        outcomes[r["outcome"]] = outcomes.get(r["outcome"], 0) + 1

    # Cold = each (worker, generation)'s first-served job; warm = rest.
    # Results are appended in completion order, which is serve order
    # per worker, so "first seen" is "first served".
    cold_rates, warm_rates = [], []
    seen_workers: set = set()
    for r in results:
        if r["hit_rate"] is None or r["worker"] is None:
            continue
        key = (r["worker"], r["generation"])
        if key not in seen_workers:
            seen_workers.add(key)
            cold_rates.append(r["hit_rate"])
        else:
            warm_rates.append(r["hit_rate"])

    def mean(values: list) -> "float | None":
        return round(sum(values) / len(values), 4) if values else None

    incremental = None
    if diff:
        replayed = [r["replayed"] for r in results]
        incremental = {
            "jobs_with_replay": sum(1 for n in replayed if n),
            "replayed_summaries": sum(replayed),
            "replay_job_rate": round(
                sum(1 for n in replayed if n) / len(replayed), 4
            )
            if replayed
            else None,
        }

    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "jobs_completed": len(results),
        "outcomes": dict(sorted(outcomes.items())),
        "errors": errors,
        "wall_seconds": round(wall, 3),
        "throughput_jobs_per_second": round(len(results) / wall, 3)
        if wall > 0
        else 0.0,
        "latency_seconds": {
            "p50": round(percentile(latencies, 50), 4),
            "p99": round(percentile(latencies, 99), 4),
            "mean": mean(latencies) or 0.0,
            "max": round(max(latencies), 4) if latencies else 0.0,
        },
        "rejected_submits": rejected,
        "backoff_seconds": round(backoff_seconds, 3),
        "cache": {
            "cold_hit_rate": mean(cold_rates),
            "warm_hit_rate": mean(warm_rates),
            "worker_generations_seen": len(seen_workers),
        },
        "degraded_jobs": sum(1 for r in results if r.get("degraded")),
        "diff": diff,
        "incremental": incremental,
    }


def render_report(report: dict) -> str:
    lines = [
        f"loadgen: {report['jobs_completed']} jobs "
        f"({report['clients']} clients x {report['jobs_per_client']}), "
        f"{report['wall_seconds']}s wall, "
        f"{report['throughput_jobs_per_second']} jobs/s",
        f"  outcomes: {report['outcomes']}",
        f"  latency: p50 {report['latency_seconds']['p50']}s, "
        f"p99 {report['latency_seconds']['p99']}s, "
        f"max {report['latency_seconds']['max']}s",
        f"  backpressure: {report['rejected_submits']} rejects, "
        f"{report['backoff_seconds']}s backed off, "
        f"{report['degraded_jobs']} degraded jobs",
    ]
    cache = report["cache"]
    lines.append(
        f"  cache: cold hit rate {cache['cold_hit_rate']}, "
        f"warm hit rate {cache['warm_hit_rate']} "
        f"({cache['worker_generations_seen']} worker generation(s))"
    )
    if report.get("incremental"):
        incr = report["incremental"]
        lines.append(
            f"  incremental: {incr['jobs_with_replay']} job(s) replayed "
            f"warm fixpoints ({incr['replayed_summaries']} summaries, "
            f"replay job rate {incr['replay_job_rate']})"
        )
    if report["errors"]:
        lines.append(f"  errors: {report['errors']}")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro serve-bench`` -- fork a daemon, load it,
    report, shut it down.  ``--socket`` targets an already-running
    daemon instead."""
    import argparse
    import json
    import subprocess
    import sys
    import tempfile

    parser = argparse.ArgumentParser(
        prog="repro serve-bench",
        description="load-test the analysis daemon",
    )
    parser.add_argument("--socket", default=None,
                        help="use a running daemon instead of forking one")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=5,
                        help="jobs per client")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue", type=int, default=16)
    parser.add_argument("--mode", choices=("strict", "degrade"), default=None)
    parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark names (default: the quick list "
        "benchmarks, or the Table-4 diff set with --diff)",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="edit-loop traffic: every job is an analyze-diff with a "
        "distinct seeded dead-store edit; the report adds fixpoint "
        "replay rates (the CI-per-commit shape)",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    default_names = DIFF_BENCHMARKS if args.diff else DEFAULT_BENCHMARKS
    benchmarks = tuple(
        name.strip()
        for name in (args.benchmarks or ",".join(default_names)).split(",")
        if name.strip()
    )
    daemon = None
    socket_path = args.socket
    try:
        if socket_path is None:
            socket_path = tempfile.mktemp(
                prefix="repro-serve-bench-", suffix=".sock"
            )
            from repro.childproc import child_env

            daemon = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--socket", socket_path,
                    "--workers", str(args.workers),
                    "--queue", str(args.queue),
                ],
                env=child_env(),
            )
            if not Client(socket_path).wait_until_ready(timeout=60.0):
                print("serve-bench: daemon never became ready",
                      file=sys.stderr)
                return 1
        report = run_load(
            socket_path,
            benchmarks=benchmarks,
            clients=args.clients,
            jobs_per_client=args.jobs,
            mode=args.mode,
            diff=args.diff,
        )
        if args.json:
            json.dump(report, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            print(render_report(report))
        return 0 if not report["errors"] else 1
    finally:
        if daemon is not None:
            try:
                Client(socket_path).shutdown()
                daemon.wait(timeout=30.0)
            except Exception:
                daemon.terminate()
                try:
                    daemon.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    daemon.kill()


if __name__ == "__main__":
    raise SystemExit(main())
