"""The serve wire protocol: JSON lines over a unix-domain socket.

One connection carries one request line and one response line, then
closes -- stateless on the wire, so clients need no session handling
and a half-dead client can never wedge the server.  Every message is
a single JSON object terminated by ``\\n``.

Requests::

    {"op": "submit", "spec": {"benchmark": "treeadd", ...}}
    {"op": "analyze-diff", "spec": {"benchmark": "treeadd",
                                    "edit": {"seed": 7, ...}, ...}}
    {"op": "status"}
    {"op": "stats"}
    {"op": "shutdown"}

Responses::

    {"ok": true, "record": {...RunRecord...}, "serve": {...}}   # submit
    {"ok": false, "error": "overloaded", "retry_after": 0.5,
     "queue_depth": 64}                                         # backpressure
    {"ok": true, "status": {...}}                               # status
    {"ok": false, "error": "bad-request", "message": "..."}     # malformed

The same framing is reused on the supervisor <-> worker pipes
(:mod:`repro.serve.worker`), so there is exactly one message format
to reason about across both process boundaries.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from dataclasses import dataclass, field

__all__ = [
    "ERR_BAD_REQUEST",
    "ERR_OVERLOADED",
    "ERR_SHUTTING_DOWN",
    "JobSpec",
    "ProtocolError",
    "default_socket_path",
    "parse_request",
    "read_message",
    "write_message",
]

#: Error codes a response may carry in ``error``.
ERR_OVERLOADED = "overloaded"
ERR_BAD_REQUEST = "bad-request"
ERR_SHUTTING_DOWN = "shutting-down"

_VALID_OPS = ("submit", "analyze-diff", "status", "stats", "shutdown")
_VALID_MODES = (None, "strict", "degrade")
#: Mutation kinds an ``edit`` instruction may name (mirrors
#: ``repro.crucible.generator.MUTATIONS``; validated here so a typo is
#: a bad-request at the socket, not a crash record from a worker).
_VALID_EDIT_KINDS = ("branch-flip", "dead-store", "stmt-delete", "block-reorder")


class ProtocolError(ValueError):
    """A message violated the wire protocol (bad JSON, unknown op,
    malformed job spec)."""


def default_socket_path() -> str:
    """The default unix-socket rendezvous: per-user under the system
    temp directory (unix socket paths are length-limited to ~100
    bytes, so deep working directories are not safe defaults)."""
    user = os.environ.get("USER") or str(os.getuid())
    return os.path.join(
        tempfile.gettempdir(), f"repro-serve-{user}.sock"
    )


@dataclass
class JobSpec:
    """One analysis request, as it travels client -> server -> worker.

    ``mode=None`` means "the server's default"; the server resolves it
    at dispatch time (and overrides it to ``degrade`` while the
    overload ladder is engaged, recording the override in the
    response's ``serve`` section).
    """

    benchmark: str
    mode: "str | None" = None
    deadline: "float | None" = None
    unroll: int = 2
    state_budget: int = 20000
    #: Hard wall-clock cap on one worker attempt: past this the
    #: supervisor declares the worker hung and kills it.  Distinct
    #: from ``deadline`` (cooperative, inside the analysis); the
    #: timeout is the backstop for when cooperation fails.
    timeout: float = 120.0
    #: Crucible fault-injection specs for chaos jobs:
    #: ``[{"phase": "fold", "kind": "timeout", "at": 1}, ...]``
    #: (see :class:`repro.crucible.faults.FaultSpec`).
    faults: list = field(default_factory=list)
    #: Process-kill chaos: ``{"phase": "fold", "signal": 9, "at": 1}``
    #: makes the worker kill itself at that phase-boundary crossing --
    #: the supervisor must recover and the job must still complete.
    chaos: "dict | None" = None
    #: Span-trace file the worker should write (server-assigned).
    trace: "str | None" = None
    #: Edit-loop instruction (the ``analyze-diff`` op): analyze a
    #: seeded 1-procedure crucible mutation of the benchmark instead of
    #: the benchmark itself -- ``{"seed": 7, "count": 1,
    #: "target": "build", "kinds": ["dead-store"]}`` (count/target/
    #: kinds optional).  Persistent workers keep the base program's
    #: fixpoint tables warm in memory, so only the edit's callgraph
    #: cone re-analyzes -- this is the job shape the incremental layer
    #: exists for.
    edit: "dict | None" = None

    def validate(self) -> None:
        if not self.benchmark or not isinstance(self.benchmark, str):
            raise ProtocolError("job spec needs a benchmark name")
        if self.mode not in _VALID_MODES:
            raise ProtocolError(f"unknown mode {self.mode!r}")
        if self.timeout <= 0:
            raise ProtocolError("timeout must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ProtocolError("deadline must be positive")
        if not isinstance(self.faults, list):
            raise ProtocolError("faults must be a list of fault specs")
        if self.chaos is not None and not isinstance(self.chaos, dict):
            raise ProtocolError("chaos must be a dict")
        if self.edit is not None:
            if not isinstance(self.edit, dict):
                raise ProtocolError("edit must be a dict")
            if not isinstance(self.edit.get("seed"), int):
                raise ProtocolError("edit needs an integer seed")
            count = self.edit.get("count", 1)
            if not isinstance(count, int) or count < 1:
                raise ProtocolError("edit count must be a positive integer")
            target = self.edit.get("target")
            if target is not None and not isinstance(target, str):
                raise ProtocolError("edit target must be a procedure name")
            kinds = self.edit.get("kinds")
            if kinds is not None:
                if not isinstance(kinds, list) or not all(
                    k in _VALID_EDIT_KINDS for k in kinds
                ):
                    raise ProtocolError(
                        f"edit kinds must be drawn from {_VALID_EDIT_KINDS}"
                    )

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "mode": self.mode,
            "deadline": self.deadline,
            "unroll": self.unroll,
            "state_budget": self.state_budget,
            "timeout": self.timeout,
            "faults": self.faults,
            "chaos": self.chaos,
            "trace": self.trace,
            "edit": self.edit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        if not isinstance(data, dict):
            raise ProtocolError("job spec must be an object")
        try:
            spec = cls(
                benchmark=data.get("benchmark"),
                mode=data.get("mode"),
                deadline=data.get("deadline"),
                unroll=data.get("unroll", 2),
                state_budget=data.get("state_budget", 20000),
                timeout=data.get("timeout", 120.0),
                faults=data.get("faults") or [],
                chaos=data.get("chaos"),
                trace=data.get("trace"),
                edit=data.get("edit"),
            )
        except TypeError as exc:
            raise ProtocolError(f"malformed job spec: {exc}") from exc
        spec.validate()
        return spec


def parse_request(line: str) -> dict:
    """Decode and shape-check one request line."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    op = message.get("op")
    if op not in _VALID_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {_VALID_OPS}"
        )
    return message


def write_message(stream, message: dict) -> None:
    """One compact JSON line onto *stream* (text or binary), flushed
    immediately -- the reader on the other side is blocked on it."""
    payload = json.dumps(message, sort_keys=True, separators=(",", ":"))
    data = payload + "\n"
    if isinstance(stream, io.TextIOBase) or getattr(
        stream, "encoding", None
    ):
        stream.write(data)
    else:
        stream.write(data.encode("utf-8"))
    stream.flush()


def read_message(stream) -> "dict | None":
    """One JSON line from *stream*; None on clean EOF."""
    line = stream.readline()
    if not line:
        return None
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        return None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not JSON: {exc!s}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message
