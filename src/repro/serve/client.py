"""Client side of the serve protocol: library API and ``repro submit``.

:class:`Client` speaks the one-line-request / one-line-response
protocol over the unix socket.  The interesting policy is overload
handling: a rejected submit carries the server's ``retry_after`` hint,
and :meth:`Client.submit` will honor it -- sleep and resubmit -- for up
to ``retry_for`` seconds before surfacing :class:`OverloadedError` to
the caller.  ``retry_for=0`` (the default) makes backpressure the
caller's problem immediately, which is what the load generator wants;
the CLI default is a short patience window, which is what a human
wants.
"""

from __future__ import annotations

import json
import random
import socket
import time

from repro.serve.protocol import (
    ERR_OVERLOADED,
    JobSpec,
    ProtocolError,
    default_socket_path,
)

__all__ = ["Client", "OverloadedError", "ServerError", "main"]


class ServerError(RuntimeError):
    """The server answered ``ok: false`` (and it was not backpressure)."""

    def __init__(self, error: str, message: str = ""):
        super().__init__(message or error)
        self.error = error


class OverloadedError(ServerError):
    """Backpressure: the bounded queue is full; retry after a delay."""

    def __init__(self, retry_after: float, queue_depth: int):
        super().__init__(
            ERR_OVERLOADED,
            f"server overloaded (queue depth {queue_depth}); "
            f"retry after {retry_after}s",
        )
        self.retry_after = retry_after
        self.queue_depth = queue_depth


class Client:
    """One serve endpoint; connections are per-request, so a Client is
    cheap, stateless and safe to share across threads."""

    def __init__(
        self,
        socket_path: "str | None" = None,
        connect_timeout: float = 10.0,
    ):
        self.socket_path = socket_path or default_socket_path()
        self.connect_timeout = connect_timeout

    # ------------------------------------------------------------------
    def request(self, message: dict, timeout: "float | None" = None) -> dict:
        """One raw round-trip; the decoded response object."""
        payload = (
            json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
        )
        with self._connect() as sock:
            sock.settimeout(timeout)
            sock.sendall(payload.encode("utf-8"))
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        line = b"".join(chunks)
        if not line:
            raise ProtocolError("server closed the connection mid-response")
        try:
            return json.loads(line.decode("utf-8", errors="replace"))
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"response is not JSON: {exc}") from exc

    def _connect(self) -> socket.socket:
        """Connect, retrying transient refusals within
        ``connect_timeout``: a burst of clients can momentarily
        overflow even a deep accept backlog (EAGAIN/ECONNREFUSED),
        which is congestion, not absence of a server."""
        deadline = time.monotonic() + self.connect_timeout
        delay = 0.02
        while True:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            try:
                sock.connect(self.socket_path)
                return sock
            except (
                BlockingIOError,
                ConnectionRefusedError,
                InterruptedError,
                socket.timeout,
            ):
                sock.close()
                if time.monotonic() + delay > deadline:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 0.5)
            except OSError:
                sock.close()
                raise

    # ------------------------------------------------------------------
    #: Ceiling for one overload-retry sleep (decorrelated jitter cap).
    RETRY_CAP = 5.0

    def submit(
        self,
        spec: "JobSpec | dict",
        retry_for: float = 0.0,
        op: str = "submit",
    ) -> dict:
        """Run one job; the full response (``record`` + ``serve``).

        *op* selects the wire operation: ``"submit"`` (default) or
        ``"analyze-diff"`` for edit-loop jobs whose spec carries an
        ``edit`` instruction.

        Overload rejections are retried until *retry_for* seconds have
        elapsed, then raised as :class:`OverloadedError`.  Each sleep
        honors the server's ``retry_after`` hint as a *floor* and adds
        decorrelated jitter above it (``uniform(hint, 3 * previous)``,
        capped): a fleet of clients bounced by the same overloaded
        server must not sleep the identical hint and stampede back in
        lockstep, re-triggering the very rejection they are backing
        off from.  The sleep is truncated to the time left before the
        retry deadline, so a client never oversleeps its own budget.
        """
        if isinstance(spec, JobSpec):
            spec = spec.to_dict()
        deadline = time.monotonic() + retry_for
        previous_delay = 0.0
        while True:
            response = self.request(
                {"op": op, "spec": spec},
                # The socket read blocks for the whole analysis; give
                # it the job's isolation budget plus retry headroom.
                timeout=float(spec.get("timeout") or 120.0) * 4 + 120.0,
            )
            if response.get("ok"):
                return response
            if response.get("error") != ERR_OVERLOADED:
                raise ServerError(
                    response.get("error", "unknown"),
                    response.get("message", ""),
                )
            hint = float(response.get("retry_after") or 0.1)
            now = time.monotonic()
            if now + hint > deadline:
                raise OverloadedError(
                    hint, response.get("queue_depth", -1)
                )
            delay = min(
                self.RETRY_CAP,
                random.uniform(hint, max(hint, previous_delay * 3)),
            )
            delay = min(delay, deadline - now)
            previous_delay = delay
            time.sleep(delay)

    def status(self) -> dict:
        response = self.request({"op": "status"}, timeout=10.0)
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown"), response.get("message", "")
            )
        return response["status"]

    def stats(self) -> dict:
        """The live telemetry payload (see ``AnalysisServer.stats``)."""
        response = self.request({"op": "stats"}, timeout=10.0)
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown"), response.get("message", "")
            )
        return response["stats"]

    def shutdown(self) -> None:
        response = self.request({"op": "shutdown"}, timeout=10.0)
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown"), response.get("message", "")
            )

    def wait_until_ready(self, timeout: float = 30.0) -> bool:
        """Poll until the socket answers a status request (a freshly
        forked daemon needs a moment to bind); False on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.status()
                return True
            except (OSError, ProtocolError, ServerError):
                time.sleep(0.1)
        return False


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro submit`` -- run one job against the daemon.

    Exit codes: 0 analysis passed (or degraded-passed), 1 analysis
    failed, 2 job crashed/timed out in the service, 3 could not talk
    to the server (overloaded past patience, no daemon, protocol
    error).
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="submit one analysis job to the repro serve daemon",
    )
    parser.add_argument("benchmark", help="benchmark name (see repro list)")
    parser.add_argument("--socket", default=None)
    parser.add_argument("--mode", choices=("strict", "degrade"), default=None)
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--unroll", type=int, default=2)
    parser.add_argument("--state-budget", type=int, default=20000)
    parser.add_argument(
        "--retry-for",
        type=float,
        default=30.0,
        help="seconds to keep retrying an overloaded server",
    )
    parser.add_argument(
        "--edit-seed",
        type=int,
        default=None,
        metavar="N",
        help="analyze a seeded crucible edit of the benchmark instead "
        "of the benchmark itself (the analyze-diff op: warm workers "
        "replay everything outside the edit's callgraph cone)",
    )
    parser.add_argument(
        "--edit-kind",
        choices=("branch-flip", "dead-store", "stmt-delete", "block-reorder"),
        default=None,
        help="restrict the edit to one mutation kind (with --edit-seed)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the full response JSON"
    )
    args = parser.parse_args(argv)

    edit = None
    if args.edit_seed is not None:
        edit = {"seed": args.edit_seed}
        if args.edit_kind:
            edit["kinds"] = [args.edit_kind]
    spec = JobSpec(
        benchmark=args.benchmark,
        mode=args.mode,
        deadline=args.deadline,
        timeout=args.timeout,
        unroll=args.unroll,
        state_budget=args.state_budget,
        edit=edit,
    )
    client = Client(args.socket)
    try:
        response = client.submit(
            spec,
            retry_for=args.retry_for,
            op="analyze-diff" if edit is not None else "submit",
        )
    except OverloadedError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 3
    except (OSError, ProtocolError, ServerError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 3

    record = response.get("record") or {}
    serve = response.get("serve") or {}
    if args.json:
        json.dump(response, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        outcome = record.get("outcome", "?")
        print(
            f"{record.get('name', args.benchmark)}: {outcome} "
            f"({record.get('seconds', 0):.3f}s analysis, "
            f"{serve.get('seconds', 0):.3f}s total, "
            f"worker {serve.get('worker')}, "
            f"attempts {serve.get('attempts')}, "
            f"state {serve.get('state')})"
        )
        if record.get("error"):
            print(f"  error: {record['error']}")
        for diagnostic in record.get("diagnostics") or []:
            print(
                f"  [{diagnostic.get('severity')}] {diagnostic.get('code')}: "
                f"{diagnostic.get('message')}"
            )
    outcome = record.get("outcome")
    if outcome in ("pass", "degraded"):
        return 0
    if outcome in ("crashed", "timeout"):
        return 2
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
