"""The persistent analysis worker: one long-lived child process.

``python -m repro.serve.worker`` speaks the JSON-lines protocol on
stdin/stdout: the supervisor writes one job request per line, the
worker answers with one result line, forever.  The point of staying
alive between jobs is *warm state*: one :class:`EntailmentCache`, one
unfold memo and one fold identity memo live for the whole process and
are handed to every :class:`ShapeAnalysis` run, so job N+1 replays
the entailment verdicts and Figure-6 case analyses job N paid for.
All three are keyed on canonical forms plus the structural
``PredicateEnv.cache_token()`` (PR-4/PR-5 machinery), which is what
makes cross-job reuse sound -- the bench harness differentially
checks exactly this sharing.

Wire format (one JSON object per line)::

    <- {"type": "ready", "pid": 123, "worker": 0, "generation": 1}
    -> {"type": "job", "id": 7, "spec": {...JobSpec...}}
    <- {"type": "result", "id": 7, "record": {...RunRecord...},
        "cache": {"hits": 41, ...}, "store": {"hits": 3, ...},
        "fixpoint": {...FixpointTable.to_wire()...},
        "metrics": {...obs.snapshot of the session so far...}}
    -> {"type": "warm", "fixpoint": {...a dead predecessor's table...}}
    <- {"type": "warmed", "injected": 4, "entries": 4}
    -> {"type": "exit"}

The ``store`` field appears only when the worker was started with
``--store PATH``: the durable summary store (:mod:`repro.store`) is
the warm tier that, unlike the in-process caches, survives worker
crashes and restarts -- a generation-1 replacement reads the
summaries its predecessor persisted.

The worker never *raises* out of a job -- ``ShapeAnalysis.run`` is
exception-contained and the remaining spec handling is guarded into a
``crashed`` record -- so from the supervisor's point of view a worker
that stops answering is *dead* (killed, OOM, hung), never merely
confused.

Chaos hooks (how the tests and CI make real workers die):

* job specs may carry crucible fault-injection specs (``faults``) or
  a process-kill instruction (``chaos``: die by signal at the N-th
  crossing of a phase boundary -- "kill -9 during fold");
* the :data:`CHAOS_ENV` environment variable
  (``REPRO_SERVE_CHAOS=<worker>:kill:<sig>@<jobseq>``) makes worker
  *<worker>* -- generation 0 only, so the restarted replacement
  survives -- kill itself when job number *<jobseq>* arrives.  The CI
  serve-smoke job uses this to prove no job is lost.
"""

from __future__ import annotations

import os
import sys

from repro.serve.protocol import JobSpec, ProtocolError, read_message, write_message

__all__ = [
    "CHAOS_ENV",
    "WORKER_ENV",
    "WORKER_GEN_ENV",
    "main",
]

#: Supervisor-assigned worker index (stable across restarts).
WORKER_ENV = "REPRO_SERVE_WORKER"
#: Restart generation of this process (0 = original spawn).
WORKER_GEN_ENV = "REPRO_SERVE_WORKER_GEN"
#: ``<worker>:kill:<signum>@<jobseq>`` -- worker *<worker>*,
#: generation 0, kills itself with *<signum>* when its *<jobseq>*-th
#: job arrives (1-based), before analyzing it.
#: ``<worker>:sleep:<seconds>@<jobseq>`` instead stalls that job --
#: past the isolation timeout this is a hang, which the supervisor
#: must detect and break by force.
CHAOS_ENV = "REPRO_SERVE_CHAOS"


def _env_chaos_job() -> "tuple[str, float, int] | None":
    """(kind, amount, jobseq) when the env-level chaos spec targets
    this worker process, else None.  ``kind`` is ``"kill"`` (amount =
    signal number) or ``"sleep"`` (amount = seconds)."""
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return None
    if int(os.environ.get(WORKER_GEN_ENV, "0")) != 0:
        return None  # only the original generation is sacrificed
    try:
        target, action = spec.split(":", 1)
        if int(target) != int(os.environ.get(WORKER_ENV, "-1")):
            return None
        kind, _, rest = action.partition(":")
        if kind not in ("kill", "sleep"):
            return None
        amount_text, _, seq_text = rest.partition("@")
        return kind, float(amount_text), int(seq_text or "1")
    except ValueError:
        return None


def _build_engine_factory(spec: JobSpec):
    """Turn the spec's ``faults``/``chaos`` chaos instructions into a
    :class:`ShapeAnalysis` ``engine_factory`` (or None for none)."""
    if not spec.faults and not spec.chaos:
        return None
    from repro.crucible.faults import FaultPlan, FaultSpec

    fault_specs = [
        FaultSpec(
            phase=f["phase"],
            kind=f.get("kind", "failure"),
            at=f.get("at", 1),
            procedure=f.get("procedure"),
        )
        for f in spec.faults
    ]
    if spec.chaos is None:
        return FaultPlan(specs=fault_specs).engine_factory()

    kill_phase = spec.chaos.get("phase", "fold")
    kill_signum = int(spec.chaos.get("signal", 9))
    kill_at = int(spec.chaos.get("at", 1))

    class _KillPlan(FaultPlan):
        """A fault plan that additionally kills the whole process at
        one phase-boundary crossing -- the supervisor, not this
        process, must turn that into a completed job."""

        def on_boundary(self, engine, phase, procedure):
            super().on_boundary(engine, phase, procedure)
            if phase == kill_phase and self.crossings[phase] == kill_at:
                sys.stdout.flush()
                os.kill(os.getpid(), kill_signum)

    return _KillPlan(specs=fault_specs).engine_factory()


def _analyze(
    spec: JobSpec,
    caches: dict,
    default_mode: str,
    store=None,
    metrics=None,
    fixpoint=None,
) -> dict:
    """Run one job against the warm caches; always returns a
    RunRecord-shaped dict (``ShapeAnalysis.run`` contains analysis
    failures; this guard contains spec/factory bugs).  *metrics* is
    the per-job registry the caller merges into its session-cumulative
    one -- per job so each RunRecord's stats stay per-run, cumulative
    at the session so the supervisor sees the worker's whole history."""
    import time

    from repro.analysis import ShapeAnalysis
    from repro.benchsuite.runner import RunRecord, _resolve_benchmark

    mode = spec.mode or default_mode
    start = time.perf_counter()
    try:
        program = _resolve_benchmark(spec.benchmark)
        if spec.edit is not None:
            from repro.crucible.generator import edit_program

            program, _ = edit_program(
                program,
                spec.edit["seed"],
                count=spec.edit.get("count", 1),
                target=spec.edit.get("target"),
                kinds=tuple(spec.edit["kinds"])
                if spec.edit.get("kinds")
                else None,
            )
        result = ShapeAnalysis(
            program,
            name=spec.benchmark,
            mode=mode,
            deadline_seconds=spec.deadline,
            max_unroll=spec.unroll,
            state_budget=spec.state_budget,
            trace_path=spec.trace,
            cache=caches["entailment"],
            unfold_cache=caches["unfold"],
            fold_cache=caches["fold"],
            store=store,
            metrics=metrics,
            fixpoint_table=fixpoint,
            engine_factory=_build_engine_factory(spec),
        ).run()
    except Exception as exc:
        return RunRecord(
            name=spec.benchmark,
            outcome="crashed",
            seconds=time.perf_counter() - start,
            mode=mode,
            error=f"{type(exc).__name__}: {exc}",
            trace=spec.trace,
        ).to_dict()
    record = result.to_record()
    return RunRecord(
        name=spec.benchmark,
        outcome=result.outcome,
        seconds=time.perf_counter() - start,
        mode=mode,
        error=result.failure,
        diagnostics=record["diagnostics"],
        result=record,
        trace=spec.trace,
    ).to_dict()


def main(argv: "list[str] | None" = None) -> int:
    """The worker loop.  ``--cache-size N`` bounds each warm cache."""
    import argparse

    from repro.perf import EntailmentCache, IdentityMemo

    parser = argparse.ArgumentParser(prog="repro.serve.worker")
    parser.add_argument("--cache-size", type=int, default=65536)
    parser.add_argument(
        "--mode",
        choices=("strict", "degrade"),
        default="degrade",
        help="mode for jobs that do not request one",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="shared durable summary store; the warm tier that "
        "survives this process (advisory-locked writes, so every "
        "worker of the pool can point at the same directory)",
    )
    args = parser.parse_args(argv)

    from repro import obs

    from repro.store.fixpoint import FixpointTable

    caches = {
        "entailment": EntailmentCache(args.cache_size),
        "unfold": EntailmentCache(args.cache_size),
        "fold": IdentityMemo(args.cache_size),
    }
    #: In-memory fixpoint tier: every successful run exports its
    #: tabulated summary tables here (cone-digest-keyed, so edit-loop
    #: jobs replay everything outside the edited cone without touching
    #: disk), every result line ships its wire dump to the supervisor,
    #: and a ``warm`` message from the supervisor injects a dead
    #: predecessor's table into this one.
    fixpoint = FixpointTable()
    #: Session-cumulative engine metrics: every job's registry merges
    #: in here, and a snapshot rides on every result line so the
    #: supervisor always holds this worker's latest full history.
    session_metrics = obs.Metrics()
    store = None
    if args.store:
        from repro.store import SummaryStore

        store = SummaryStore.open(args.store)
    worker_index = int(os.environ.get(WORKER_ENV, "0"))
    generation = int(os.environ.get(WORKER_GEN_ENV, "0"))
    chaos = _env_chaos_job()

    out = sys.stdout
    write_message(
        out,
        {
            "type": "ready",
            "pid": os.getpid(),
            "worker": worker_index,
            "generation": generation,
        },
    )
    jobs_seen = 0
    while True:
        try:
            message = read_message(sys.stdin)
        except ProtocolError as exc:
            write_message(out, {"type": "error", "message": str(exc)})
            continue
        if message is None or message.get("type") == "exit":
            return 0
        if message.get("type") == "warm":
            # Fixpoint warm-up: the supervisor re-injects the last
            # table a dead generation of this slot shipped.  The wire
            # dump earns no trust -- malformed input is contained to a
            # zero-injection ack, and consumption re-validates every
            # payload exactly like bytes from disk.
            try:
                injected = fixpoint.merge_wire(message.get("fixpoint"))
            except (ValueError, TypeError) as exc:
                write_message(
                    out,
                    {"type": "warmed", "injected": 0, "error": str(exc)},
                )
                continue
            if injected:
                session_metrics.inc("incr.tables.injected")
            write_message(
                out,
                {
                    "type": "warmed",
                    "injected": injected,
                    "entries": len(fixpoint),
                },
            )
            continue
        if message.get("type") != "job":
            write_message(
                out,
                {
                    "type": "error",
                    "message": f"unknown message type {message.get('type')!r}",
                },
            )
            continue
        jobs_seen += 1
        if chaos is not None and jobs_seen == chaos[2]:
            out.flush()
            if chaos[0] == "kill":
                os.kill(os.getpid(), int(chaos[1]))
            else:
                import time

                time.sleep(chaos[1])
        try:
            spec = JobSpec.from_dict(message.get("spec"))
        except ProtocolError as exc:
            write_message(
                out,
                {
                    "type": "result",
                    "id": message.get("id"),
                    "record": None,
                    "error": str(exc),
                },
            )
            continue
        job_metrics = obs.Metrics()
        record = _analyze(
            spec,
            caches,
            args.mode,
            store=store,
            metrics=job_metrics,
            fixpoint=fixpoint,
        )
        session_metrics.merge(job_metrics)
        response = {
            "type": "result",
            "id": message.get("id"),
            "record": record,
            "cache": caches["entailment"].stats(),
            "metrics": obs.snapshot(session_metrics),
        }
        if store is not None:
            response["store"] = store.stats()
        if len(fixpoint):
            # Ship the warm tier with every result: the supervisor
            # keeps only the latest dump per slot, and on a restart
            # injects it into the replacement -- the fixpoint analogue
            # of the durable store's crash-surviving warmth, without
            # needing a disk.
            response["fixpoint"] = fixpoint.to_wire()
        write_message(out, response)


if __name__ == "__main__":
    raise SystemExit(main())
