"""The serve smoke gate: chaos traffic that must lose nothing.

``python -m repro serve-smoke`` is what CI runs: fork the daemon with
a chaos instruction in its environment (worker 0, generation 0, kills
itself with SIGKILL when its third job arrives --
``REPRO_SERVE_CHAOS=0:kill:9@3``), drive a batch of jobs through it
concurrently -- including one carrying a crucible fault injected
mid-job in whichever worker picks it up -- and hold the service to the
robustness contract:

1. **no silent loss** -- every submitted job gets a response, and with
   retries available none resolves to ``worker-crashed``: the victim
   of the kill is re-run on the restarted worker and completes;
2. **verdict parity** -- each benchmark's outcome and diagnostic codes
   through the service are identical to a single-shot in-process run
   (supervision must not change analysis semantics);
3. **supervision really happened** -- ``serve.workers.restarts >= 1``
   and ``serve.jobs.retried >= 1`` in the daemon's metrics (a smoke
   run where the chaos never fired proves nothing);
4. **warm after restart** -- the replacement worker's entailment cache
   shows hits on later jobs (``hits > 0``): a restart loses the warm
   state but the worker re-warms in service, it does not devolve to
   one-shot behavior;
5. **bounded latency** -- p99 under a generous budget, so a hang that
   supervision papered over still fails the gate;
6. **the durable store survives the restart** -- the pool shares one
   summary store directory (:mod:`repro.store`), and the replacement
   worker must reach a non-zero store hit count: unlike the in-process
   caches (which check 4 proves must *re-warm*), the store's warmth
   carries *across* the kill -- the generation-1 process reads the
   summaries its dead predecessor persisted.
7. **fixpoint warm-up fired** -- the supervisor injected the dead
   generation's last fixpoint-table dump into the replacement
   (``serve.workers.warmed >= 1``), and the restarted worker's own
   metrics confirm the injection (``incr.tables.injected >= 1``): the
   in-memory replay tier, unlike the caches of check 4, must *not*
   start cold after a kill.

Exit code 0 when every check passes; 1 with the failed checks listed.
"""

from __future__ import annotations

import threading
import time

from repro.serve.client import Client, OverloadedError, ServerError
from repro.serve.loadgen import percentile
from repro.serve.protocol import JobSpec

__all__ = ["main", "run_smoke"]

SMOKE_BENCHMARKS = ("list-build", "list-traverse", "list-reverse")
#: The crucible fault one job carries: an injected engine *exception*
#: mid-entailment, which resilience must contain to a diagnostic.
FAULT_JOB = {"phase": "entailment", "kind": "error", "at": 1}


def _single_shot_verdict(benchmark: str, mode: str) -> tuple:
    """(outcome, diagnostic codes) from an in-process one-shot run --
    the parity baseline the service must match."""
    from repro.benchsuite.runner import run_one

    record = run_one(benchmark, mode=mode).to_dict()
    return (
        record.get("outcome"),
        tuple(sorted(d.get("code") for d in record.get("diagnostics") or [])),
    )


def run_smoke(
    socket_path: str,
    jobs: int = 20,
    mode: str = "degrade",
    timeout: float = 120.0,
    store_path: "str | None" = None,
) -> dict:
    """Drive *jobs* chaos-laced jobs at a running daemon; the report
    with ``failures`` (empty = gate passed)."""
    client = Client(socket_path)
    responses: list = []
    errors: list = []
    lock = threading.Lock()

    def submit(index: int) -> None:
        benchmark = SMOKE_BENCHMARKS[index % len(SMOKE_BENCHMARKS)]
        spec = JobSpec(benchmark=benchmark, mode=mode, timeout=timeout)
        if index == 1:
            spec.faults = [dict(FAULT_JOB)]
        started = time.monotonic()
        while True:
            try:
                response = client.submit(spec, retry_for=0.0)
                break
            except OverloadedError as exc:
                time.sleep(exc.retry_after)
            except (OSError, ServerError) as exc:
                with lock:
                    errors.append(f"job {index} ({benchmark}): {exc}")
                return
        with lock:
            responses.append(
                {
                    "index": index,
                    "benchmark": benchmark,
                    "faulted": index == 1,
                    "latency": time.monotonic() - started,
                    "record": response.get("record") or {},
                    "serve": response.get("serve") or {},
                }
            )

    threads = [
        threading.Thread(target=submit, args=(i,), daemon=True)
        for i in range(jobs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    status = client.status()
    metrics = status.get("metrics", {})
    failures = list(errors)

    # 1. No silent loss: every job answered, none gave up as crashed.
    if len(responses) != jobs:
        failures.append(
            f"lost jobs: {jobs} submitted, {len(responses)} answered"
        )
    for r in responses:
        outcome = r["record"].get("outcome")
        if outcome in ("crashed", "timeout"):
            failures.append(
                f"job {r['index']} ({r['benchmark']}) resolved to "
                f"{outcome}: {r['record'].get('error')}"
            )

    # 2. Verdict parity with single-shot runs (the faulted job is
    # excluded: its verdict intentionally differs).
    baselines = {
        benchmark: _single_shot_verdict(benchmark, mode)
        for benchmark in SMOKE_BENCHMARKS
    }
    for r in responses:
        if r["faulted"]:
            continue
        verdict = (
            r["record"].get("outcome"),
            tuple(
                sorted(
                    d.get("code")
                    for d in r["record"].get("diagnostics") or []
                )
            ),
        )
        if verdict != baselines[r["benchmark"]]:
            failures.append(
                f"verdict drift on {r['benchmark']} (job {r['index']}): "
                f"served {verdict}, single-shot {baselines[r['benchmark']]}"
            )

    # The faulted job must have been *contained*: an analysis-level
    # diagnostic, not a worker death.
    faulted = [r for r in responses if r["faulted"]]
    if faulted:
        codes = [
            d.get("code")
            for d in faulted[0]["record"].get("diagnostics") or []
        ]
        if faulted[0]["record"].get("outcome") == "crashed":
            failures.append(
                f"fault-injected job crashed the worker: {codes}"
            )
        elif not codes:
            failures.append(
                "fault-injected job produced no diagnostic at all"
            )

    # 3. Supervision fired.
    if metrics.get("serve.workers.restarts", 0) < 1:
        failures.append("no worker restart recorded -- chaos never fired?")
    if metrics.get("serve.jobs.retried", 0) < 1:
        failures.append("no job retry recorded -- victim job not re-run?")

    # 4. Warm after restart: a post-restart response from the killed
    # worker slot whose entailment cache shows hits.  The batch may
    # have fed the replacement only one (cold) job, so probe with a
    # few more sequential jobs until the slot demonstrates warmth --
    # jobs are pulled by whichever worker is free, so several probes
    # may be needed before one lands on the restarted slot.
    def _post_restart(r: dict) -> bool:
        return (
            r["serve"].get("worker") == 0
            and (r["serve"].get("generation") or 0) >= 1
        )

    def _hits(r: dict) -> int:
        return (r["serve"].get("cache") or {}).get("hits", 0)

    restarted = [r for r in responses if _post_restart(r)]
    for probe in range(12):
        if any(_hits(r) > 0 for r in restarted):
            break
        try:
            response = client.submit(
                JobSpec(
                    benchmark=SMOKE_BENCHMARKS[0], mode=mode, timeout=timeout
                ),
                retry_for=timeout,
            )
        except (OSError, ServerError) as exc:
            failures.append(f"warmth probe {probe}: {exc}")
            break
        r = {
            "index": f"probe-{probe}",
            "benchmark": SMOKE_BENCHMARKS[0],
            "record": response.get("record") or {},
            "serve": response.get("serve") or {},
        }
        if _post_restart(r):
            restarted.append(r)
    if not restarted:
        failures.append(
            "no post-restart job observed on the killed worker slot"
        )
    elif not any(_hits(r) > 0 for r in restarted):
        failures.append(
            "restarted worker never warmed: entailment cache hits "
            f"stayed 0 across {len(restarted)} post-restart jobs"
        )

    # 5. Bounded latency.
    latencies = [r["latency"] for r in responses]
    p99 = percentile(latencies, 99)
    if p99 > timeout:
        failures.append(f"p99 latency {p99:.1f}s over the {timeout}s budget")

    # 6. Durable warm tier: the restarted (fresh, cache-cold) worker
    # must hit summaries persisted before the kill.  The entry-
    # procedure summary short-circuits a whole repeat analysis, so its
    # very first job on a benchmark the pool has seen already hits.
    def _store_hits(r: dict) -> int:
        return (r["serve"].get("store") or {}).get("hits", 0)

    if store_path is not None:
        for probe in range(12):
            if any(_store_hits(r) > 0 for r in restarted):
                break
            try:
                response = client.submit(
                    JobSpec(
                        benchmark=SMOKE_BENCHMARKS[0],
                        mode=mode,
                        timeout=timeout,
                    ),
                    retry_for=timeout,
                )
            except (OSError, ServerError) as exc:
                failures.append(f"store warmth probe {probe}: {exc}")
                break
            r = {
                "index": f"store-probe-{probe}",
                "benchmark": SMOKE_BENCHMARKS[0],
                "record": response.get("record") or {},
                "serve": response.get("serve") or {},
            }
            if _post_restart(r):
                restarted.append(r)
        if restarted and not any(_store_hits(r) > 0 for r in restarted):
            failures.append(
                "restarted worker never hit the durable store: store "
                f"hits stayed 0 across {len(restarted)} post-restart "
                "jobs (warm tier did not survive the kill)"
            )

    # 7. Fixpoint warm-up: the supervisor must have injected the dead
    # generation's table into the replacement, and the replacement's
    # own session metrics must record the injection.  Both ends of the
    # warm round-trip are asserted, so a supervisor that *sends* a dump
    # a worker silently rejects still fails the gate.
    warmed = metrics.get("serve.workers.warmed", 0)
    if warmed < 1:
        failures.append(
            "supervisor never warmed a restarted worker "
            "(serve.workers.warmed stayed 0)"
        )
    else:
        try:
            worker_stats = client.stats().get("workers") or []
        except (OSError, ServerError) as exc:
            worker_stats = []
            failures.append(f"stats fetch for warm-up check: {exc}")
        injected = 0
        for info in worker_stats:
            snapshot = info.get("metrics") or {}
            injected += (snapshot.get("counters") or {}).get(
                "incr.tables.injected", 0
            )
        if worker_stats and injected < 1:
            failures.append(
                "no worker reported incr.tables.injected >= 1 -- the "
                "warm dump was sent but never merged"
            )

    return {
        "jobs": jobs,
        "answered": len(responses),
        "outcomes": _count(r["record"].get("outcome") for r in responses),
        "latency_p99_seconds": round(p99, 4),
        "restarts": metrics.get("serve.workers.restarts", 0),
        "retries": metrics.get("serve.jobs.retried", 0),
        "warmed": warmed,
        "post_restart_jobs": len(restarted),
        "failures": failures,
    }


def _count(values) -> dict:
    out: dict = {}
    for value in values:
        out[value] = out.get(value, 0) + 1
    return dict(sorted(out.items()))


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro serve-smoke`` -- fork the daemon with chaos
    armed, run the gate, tear down."""
    import argparse
    import json
    import os
    import shutil
    import subprocess
    import sys
    import tempfile

    from repro.childproc import child_env
    from repro.serve.worker import CHAOS_ENV

    parser = argparse.ArgumentParser(
        prog="repro serve-smoke",
        description="chaos smoke gate for the analysis daemon",
    )
    parser.add_argument("--jobs", type=int, default=20)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--chaos",
        default="0:kill:9@3",
        help="REPRO_SERVE_CHAOS instruction for the daemon's workers",
    )
    parser.add_argument(
        "--trace", default=None, help="serve trace artifact path"
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    socket_path = tempfile.mktemp(prefix="repro-serve-smoke-", suffix=".sock")
    store_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-store-")
    env = child_env({CHAOS_ENV: args.chaos})
    command = [
        sys.executable, "-m", "repro", "serve",
        "--socket", socket_path,
        "--workers", str(args.workers),
        "--queue", str(max(args.jobs, 16)),
        # Parity gate: the ladder must not rewrite deadlines here, so
        # arm it only at the hard-reject boundary.
        "--high-water", str(max(args.jobs, 16)),
        "--mode", "degrade",
        # Shared durable store: check 6 asserts the killed worker's
        # replacement reads the summaries its predecessor persisted.
        "--store", store_dir,
    ]
    if args.trace:
        command += ["--trace", args.trace]
    daemon = subprocess.Popen(command, env=env)
    try:
        if not Client(socket_path).wait_until_ready(timeout=60.0):
            print("serve-smoke: daemon never became ready", file=sys.stderr)
            return 1
        report = run_smoke(socket_path, jobs=args.jobs, store_path=store_dir)
    finally:
        try:
            Client(socket_path).shutdown()
            daemon.wait(timeout=30.0)
        except Exception:
            daemon.terminate()
            try:
                daemon.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                daemon.kill()
        if os.path.exists(socket_path):
            try:
                os.unlink(socket_path)
            except OSError:
                pass
        shutil.rmtree(store_dir, ignore_errors=True)

    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(
            f"serve-smoke: {report['answered']}/{report['jobs']} jobs "
            f"answered, outcomes {report['outcomes']}, "
            f"p99 {report['latency_p99_seconds']}s, "
            f"{report['restarts']} restart(s), {report['retries']} retry(s)"
        )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"serve-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
