"""Analysis-as-a-service: a supervised pool of persistent workers.

``python -m repro serve`` turns the one-shot analyzer into a
long-lived daemon: a bounded job queue fronting a pool of *persistent*
worker processes that keep the entailment cache and the unfold/fold
memos warm across jobs, so the ~5x warm-path speedup the bench
harness measures becomes the steady-state number for every request
instead of a benchmark artifact.

The service layer is deliberately paranoid, because the crucible
already proved the analysis can crash, hang and exhaust budgets:

* the **supervisor** (:mod:`repro.serve.supervisor`) detects worker
  death -- signal, OOM kill, torn pipe, or a hang past the job's
  isolation timeout -- restarts the worker with exponential backoff,
  and re-runs the victim job a bounded number of times before
  returning a structured ``worker-crashed`` diagnostic.  A submitted
  job therefore *always* produces a response; none is silently lost;
* the **server** (:mod:`repro.serve.server`) applies explicit
  backpressure -- a full queue rejects with ``retry-after`` instead of
  queueing unboundedly -- and degrades gracefully: sustained queue
  pressure flips an overload ladder that forces jobs into degrade
  mode with tightened deadlines, recovering to the strict ladder rung
  when pressure subsides.  Every transition is visible as ``serve.*``
  metrics and trace events through the obs layer;
* the **protocol** (:mod:`repro.serve.protocol`) is JSON-lines over a
  unix socket: one request line, one response line, trivially
  scriptable (``python -m repro submit`` or
  :class:`repro.serve.client.Client`);
* the **load generator** (:mod:`repro.serve.loadgen`) measures the
  service under N concurrent clients -- p50/p99 latency, throughput,
  cold vs warm cache hit rates -- so "heavy traffic" is a number, and
  the **smoke harness** (:mod:`repro.serve.smoke`) is the CI gate:
  twenty jobs with a chaos-killed worker must all complete with
  verdicts identical to single-shot runs.
"""

from __future__ import annotations

from repro.serve.protocol import JobSpec, ProtocolError, default_socket_path
from repro.serve.client import Client, OverloadedError

__all__ = [
    "Client",
    "JobSpec",
    "OverloadedError",
    "ProtocolError",
    "default_socket_path",
]
