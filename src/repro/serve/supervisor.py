"""Worker-pool supervision: spawn, watch, restart, never lose a job.

The pool owns N :class:`WorkerHandle` s, each wrapping one persistent
``python -m repro.serve.worker`` child, and one bounded job queue.
One dispatcher thread per worker pulls jobs and round-trips them over
the worker's pipes.  The supervision contract:

* **death detection** -- a worker that closes its pipes (killed by a
  signal, OOM, interpreter crash) or fails to answer within the job's
  isolation ``timeout`` (a hang: cooperative deadlines failed) is
  declared dead; :func:`repro.childproc.classify_exit` tells the
  signal case from the rest, exactly as the batch runner does;
* **restart with exponential backoff** -- the replacement process
  keeps the worker's index but gets a new generation; consecutive
  failures double the respawn delay up to a cap (a crash-looping
  worker must not become a fork bomb), and one completed job resets
  the backoff;
* **bounded retry, then a structured answer** -- the victim job is
  re-run (on the restarted worker, i.e. re-enqueued at the front) at
  most ``max_retries`` times; when retries are exhausted the job
  completes with a ``worker-crashed`` (or isolation-timeout
  ``budget-exhausted``) diagnostic from :mod:`repro.childproc` -- the
  same crash-record shape the batch runner emits.  ``Job.wait``
  therefore always returns a record: no submitted job is silently
  lost, which tests/test_serve.py proves under kill -9 chaos.

The pool is server-agnostic: backpressure policy, overload
degradation and the wire protocol live in :mod:`repro.serve.server`;
telemetry flows out through an injectable ``on_event`` hook so the
pool itself stays import-light and unit-testable.
"""

from __future__ import annotations

import os
import queue
import select
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.childproc import (
    child_env,
    classify_exit,
    surviving_trace,
    timeout_diagnostic,
    worker_crash_diagnostic,
)
from repro.serve import worker as worker_mod
from repro.serve.protocol import JobSpec, ProtocolError

__all__ = [
    "Job",
    "PoolFull",
    "WorkerDied",
    "WorkerHandle",
    "WorkerPool",
]

#: How long a fresh worker may take to print its ready line.
SPAWN_TIMEOUT = 60.0
#: Consecutive failed spawns before a job is abandoned to a crash
#: record (a machine that cannot start Python at all must not loop).
MAX_SPAWN_ATTEMPTS = 5


class PoolFull(Exception):
    """The bounded job queue is at capacity -- backpressure, not an
    error: the server turns this into a reject-with-retry-after."""


class WorkerDied(Exception):
    """One worker attempt did not produce a result line."""

    def __init__(self, message: str, kind: str, signal: "str | None" = None):
        super().__init__(message)
        #: ``"signal"`` | ``"exit"`` | ``"hang"`` | ``"spawn"``
        self.kind = kind
        self.signal = signal


@dataclass
class Job:
    """One queued analysis; ``wait`` blocks until a record exists."""

    spec: JobSpec
    id: int
    #: Filled by the server when the overload ladder rewrote the spec.
    degraded: bool = False
    attempts: int = 0
    record: "dict | None" = None
    serve_info: dict = field(default_factory=dict)
    enqueued_at: float = field(default_factory=time.monotonic)
    _done: threading.Event = field(default_factory=threading.Event)

    def finish(self, record: dict, **info) -> None:
        self.record = record
        self.serve_info.update(info)
        self.serve_info.setdefault("attempts", self.attempts)
        self.serve_info["degraded"] = self.degraded
        self._done.set()

    def wait(self, timeout: "float | None" = None) -> bool:
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()


class WorkerHandle:
    """One persistent worker process and its protocol pipes."""

    def __init__(
        self,
        index: int,
        generation: int,
        cache_size: int,
        default_mode: str,
        store_path: "str | None" = None,
    ):
        self.index = index
        self.generation = generation
        self.jobs_done = 0
        command = [
            sys.executable,
            "-m",
            "repro.serve.worker",
            "--cache-size",
            str(cache_size),
            "--mode",
            default_mode,
        ]
        if store_path:
            command += ["--store", store_path]
        env = child_env(
            {
                worker_mod.WORKER_ENV: str(index),
                worker_mod.WORKER_GEN_ENV: str(generation),
            }
        )
        self.proc = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            bufsize=0,
        )
        self._buffer = bytearray()
        ready = self._read_message(timeout=SPAWN_TIMEOUT)
        if ready.get("type") != "ready":
            self.kill()
            raise WorkerDied(
                f"worker {index} answered {ready!r} instead of ready",
                kind="spawn",
            )
        self.pid = ready.get("pid")

    # ------------------------------------------------------------------
    def request(self, message: dict, timeout: float) -> dict:
        """One job round-trip; raises :class:`WorkerDied` on EOF (the
        process died) or timeout (it hung -- the caller kills it)."""
        import json

        try:
            payload = json.dumps(
                message, sort_keys=True, separators=(",", ":")
            )
            self.proc.stdin.write(payload.encode("utf-8") + b"\n")
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError):
            raise self._death("write failed: worker pipe is closed")
        return self._read_message(timeout=timeout)

    def _read_message(self, timeout: float) -> dict:
        import json

        deadline = time.monotonic() + timeout
        fd = self.proc.stdout.fileno()
        while b"\n" not in self._buffer:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerDied(
                    f"worker {self.index} gave no answer within "
                    f"{timeout}s (hang past deadline)",
                    kind="hang",
                )
            readable, _, _ = select.select(
                [fd], [], [], min(remaining, 0.5)
            )
            if not readable:
                continue
            chunk = os.read(fd, 65536)
            if not chunk:
                raise self._death("worker closed its pipe")
            self._buffer += chunk
        line, _, rest = bytes(self._buffer).partition(b"\n")
        self._buffer = bytearray(rest)
        try:
            return json.loads(line.decode("utf-8", errors="replace"))
        except json.JSONDecodeError:
            raise self._death(
                f"worker wrote a non-protocol line: {line[:120]!r}"
            )

    def _death(self, message: str) -> WorkerDied:
        """Classify a dead worker: reap it and name the signal."""
        returncode = self.proc.poll()
        if returncode is None:
            try:
                returncode = self.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                returncode = None
        signal = classify_exit(returncode)
        detail = (
            f"killed by {signal}" if signal
            else f"exit code {returncode}" if returncode is not None
            else "still running"
        )
        return WorkerDied(
            f"worker {self.index} (gen {self.generation}): "
            f"{message} ({detail})",
            kind="signal" if signal else "exit",
            signal=signal,
        )

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL and reap; used on hangs and at shutdown."""
        if self.proc.poll() is None:
            self.proc.kill()
        try:
            self.proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            pass
        self._close_pipes()

    def shutdown(self, grace: float = 2.0) -> None:
        """Polite exit: send the exit message, then escalate."""
        try:
            self.proc.stdin.write(b'{"type":"exit"}\n')
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError):
            pass
        try:
            self.proc.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            try:
                self.proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                pass
        self._close_pipes()

    def _close_pipes(self) -> None:
        for pipe in (self.proc.stdin, self.proc.stdout):
            try:
                if pipe is not None:
                    pipe.close()
            except OSError:
                pass

    def info(self) -> dict:
        return {
            "index": self.index,
            "generation": self.generation,
            "pid": self.pid,
            "alive": self.alive,
            "jobs_done": self.jobs_done,
        }


_STOP = object()


class _Slot:
    """One worker position: the current handle plus backoff state and
    the telemetry the live-stats endpoint reports per worker."""

    def __init__(self, index: int):
        self.index = index
        self.handle: "WorkerHandle | None" = None
        self.generation = 0
        self.consecutive_failures = 0
        #: Total deaths of this slot's workers (all generations).
        self.restarts = 0
        #: Latest per-result telemetry the current generation pushed:
        #: entailment-cache stats, store stats, engine-metrics
        #: snapshot.  Reset when the generation dies (but see
        #: ``archive``: dead generations stay reported).
        self.cache_stats: "dict | None" = None
        self.store_stats: "dict | None" = None
        self.metrics_snapshot: "dict | None" = None
        #: Latest fixpoint-table wire dump the current generation
        #: shipped.  Deliberately NOT reset on death: it is the
        #: inheritance a replacement worker is warmed with.
        self.fixpoint_wire: "dict | None" = None
        #: Telemetry of dead generations, newest last -- the
        #: per-generation cache/store hit-rate history that shows a
        #: restarted worker re-warming.
        self.archive: list = []

    def note_result(self, response: dict) -> None:
        """Keep the freshest telemetry the worker attached."""
        if response.get("cache") is not None:
            self.cache_stats = response["cache"]
        if response.get("store") is not None:
            self.store_stats = response["store"]
        if response.get("metrics") is not None:
            self.metrics_snapshot = response["metrics"]
        if response.get("fixpoint") is not None:
            self.fixpoint_wire = response["fixpoint"]

    def archive_generation(self) -> None:
        """Move the dying generation's telemetry into the archive."""
        if (
            self.cache_stats is not None
            or self.store_stats is not None
            or self.metrics_snapshot is not None
        ):
            self.archive.append(
                {
                    "generation": self.generation,
                    "jobs_done": (
                        self.handle.jobs_done if self.handle else 0
                    ),
                    "cache": self.cache_stats,
                    "store": self.store_stats,
                    "metrics": self.metrics_snapshot,
                }
            )
        self.cache_stats = None
        self.store_stats = None
        self.metrics_snapshot = None


class WorkerPool:
    """N supervised workers behind one bounded queue."""

    def __init__(
        self,
        workers: int = 2,
        capacity: int = 64,
        max_retries: int = 2,
        cache_size: int = 65536,
        default_mode: str = "degrade",
        backoff_base: float = 0.25,
        backoff_cap: float = 10.0,
        store_path: "str | None" = None,
        on_event=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.max_retries = max_retries
        self.cache_size = cache_size
        self.default_mode = default_mode
        #: Shared durable store directory every worker mounts (warm
        #: tier surviving restarts); None disables it.
        self.store_path = store_path
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._on_event = on_event or (lambda name, **attrs: None)
        self._queue: "queue.Queue" = queue.Queue(maxsize=capacity)
        self._next_job_id = 1
        self._id_lock = threading.Lock()
        self._stopping = False
        self._slots = [_Slot(i) for i in range(workers)]
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(slot,),
                name=f"repro-serve-worker-{slot.index}",
                daemon=True,
            )
            for slot in self._slots
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, degraded: bool = False) -> Job:
        """Enqueue one job; raises :class:`PoolFull` at capacity (the
        caller owns the backpressure response)."""
        if self._stopping:
            raise PoolFull("pool is shutting down")
        with self._id_lock:
            job_id = self._next_job_id
            self._next_job_id += 1
        job = Job(spec=spec, id=job_id, degraded=degraded)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise PoolFull(
                f"job queue is at capacity ({self.capacity})"
            ) from None
        return job

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def worker_info(self) -> list:
        return [
            slot.handle.info() if slot.handle is not None else {
                "index": slot.index,
                "generation": slot.generation,
                "alive": False,
                "jobs_done": 0,
            }
            for slot in self._slots
        ]

    def stats(self) -> list:
        """Per-worker telemetry for the live ``stats`` op: liveness,
        restart counts, the current generation's cache/store stats and
        engine-metrics snapshot, plus the archived telemetry of every
        dead generation (so per-generation hit rates survive kills)."""
        out = []
        for slot in self._slots:
            info = slot.handle.info() if slot.handle is not None else {
                "index": slot.index,
                "generation": slot.generation,
                "alive": False,
                "jobs_done": 0,
            }
            info.update(
                restarts=slot.restarts,
                cache=slot.cache_stats,
                store=slot.store_stats,
                metrics=slot.metrics_snapshot,
                generations=list(slot.archive),
            )
            out.append(info)
        return out

    def stop(self) -> None:
        """Drain-free shutdown: stop dispatching, fail queued jobs
        with a shutting-down record, stop the workers."""
        self._stopping = True
        for _ in self._slots:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=30.0)
        # Jobs still queued never reached a worker: answer them too --
        # the no-silent-loss contract holds even across shutdown.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is _STOP:
                continue
            diagnostic = worker_crash_diagnostic(
                "server shut down before the job was dispatched"
            )
            job.finish(
                self._crash_record(job, diagnostic, outcome="crashed"),
                worker=None,
            )
        for slot in self._slots:
            if slot.handle is not None:
                slot.handle.shutdown()
                slot.handle = None

    # ------------------------------------------------------------------
    def _worker_loop(self, slot: _Slot) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP or self._stopping:
                break
            self._execute(slot, job)

    def _ensure_worker(self, slot: _Slot) -> "WorkerHandle | None":
        """The slot's live handle, (re)spawning with backoff; None
        after :data:`MAX_SPAWN_ATTEMPTS` consecutive spawn failures."""
        if slot.handle is not None and slot.handle.alive:
            return slot.handle
        for _ in range(MAX_SPAWN_ATTEMPTS):
            if self._stopping:
                return None
            if slot.consecutive_failures:
                delay = min(
                    self.backoff_base
                    * (2 ** (slot.consecutive_failures - 1)),
                    self.backoff_cap,
                )
                self._on_event(
                    "serve.worker.backoff",
                    worker=slot.index,
                    seconds=delay,
                    failures=slot.consecutive_failures,
                )
                time.sleep(delay)
            try:
                slot.handle = WorkerHandle(
                    slot.index,
                    slot.generation,
                    self.cache_size,
                    self.default_mode,
                    store_path=self.store_path,
                )
                self._on_event(
                    "serve.workers.spawned",
                    worker=slot.index,
                    generation=slot.generation,
                )
                self._warm_worker(slot)
                return slot.handle
            except (WorkerDied, OSError):
                if slot.handle is not None:
                    slot.handle.kill()
                    slot.handle = None
                slot.consecutive_failures += 1
                slot.generation += 1
        return None

    def _warm_worker(self, slot: _Slot) -> None:
        """Inject the slot's last-known fixpoint table into a freshly
        spawned worker, so a restarted replacement replays the cone
        math its dead predecessor tabulated instead of starting cold.
        A worker that dies during warm-up propagates :class:`WorkerDied`
        to the spawn loop (counted as a failed spawn); a worker that
        merely rejects the dump (malformed wire) keeps running cold --
        the dump is best-effort warmth, never load-bearing state."""
        if slot.fixpoint_wire is None:
            return
        ack = slot.handle.request(
            {"type": "warm", "fixpoint": slot.fixpoint_wire},
            timeout=SPAWN_TIMEOUT,
        )
        injected = ack.get("injected", 0) if ack.get("type") == "warmed" else 0
        if injected:
            self._on_event(
                "serve.workers.warmed",
                worker=slot.index,
                generation=slot.generation,
                injected=injected,
            )

    def _execute(self, slot: _Slot, job: Job) -> None:
        queue_wait = time.monotonic() - job.enqueued_at
        while True:
            job.attempts += 1
            handle = self._ensure_worker(slot)
            if handle is None:
                diagnostic = worker_crash_diagnostic(
                    f"worker {slot.index} failed to start "
                    f"{MAX_SPAWN_ATTEMPTS} times in a row"
                )
                job.finish(
                    self._crash_record(job, diagnostic, outcome="crashed"),
                    worker=slot.index,
                    queue_wait_seconds=round(queue_wait, 6),
                )
                return
            try:
                response = handle.request(
                    {"type": "job", "id": job.id, "spec": job.spec.to_dict()},
                    timeout=job.spec.timeout,
                )
            except WorkerDied as died:
                if died.kind == "hang":
                    handle.kill()
                self._retire(slot, died)
                if job.attempts <= self.max_retries:
                    self._on_event(
                        "serve.jobs.retried",
                        job=job.id,
                        worker=slot.index,
                        cause=died.kind,
                    )
                    continue
                job.finish(
                    self._death_record(job, died),
                    worker=slot.index,
                    generation=handle.generation,
                    queue_wait_seconds=round(queue_wait, 6),
                    cause=died.kind,
                )
                return
            slot.consecutive_failures = 0
            handle.jobs_done += 1
            slot.note_result(response)
            record = response.get("record")
            if record is None:
                # The worker rejected the spec (protocol error) -- a
                # caller bug, not a worker death; no retry will help.
                diagnostic = worker_crash_diagnostic(
                    response.get("error") or "worker returned no record"
                )
                record = self._crash_record(
                    job, diagnostic, outcome="crashed"
                )
            job.finish(
                record,
                worker=slot.index,
                generation=handle.generation,
                queue_wait_seconds=round(queue_wait, 6),
                cache=response.get("cache"),
                store=response.get("store"),
            )
            return

    def _retire(self, slot: _Slot, died: WorkerDied) -> None:
        """Account one worker death and stage the replacement."""
        slot.archive_generation()
        if slot.handle is not None:
            slot.handle.kill()
        slot.handle = None
        slot.generation += 1
        slot.consecutive_failures += 1
        slot.restarts += 1
        self._on_event(
            "serve.workers.restarts",
            worker=slot.index,
            cause=died.kind,
            signal=died.signal,
            detail=str(died),
        )

    # ------------------------------------------------------------------
    def _crash_record(self, job: Job, diagnostic, outcome: str) -> dict:
        from repro.benchsuite.runner import RunRecord

        return RunRecord(
            name=job.spec.benchmark,
            outcome=outcome,
            seconds=0.0,
            mode=job.spec.mode or self.default_mode,
            error=diagnostic.message,
            diagnostics=[diagnostic.to_dict()],
            trace=surviving_trace(job.spec.trace),
        ).to_dict()

    def _death_record(self, job: Job, died: WorkerDied) -> dict:
        """Retries exhausted: the structured no-silent-loss answer."""
        from repro.benchsuite.runner import RunRecord

        trace = surviving_trace(job.spec.trace)
        if died.kind == "hang":
            diagnostic = timeout_diagnostic(job.spec.timeout, trace=trace)
            outcome = "timeout"
        else:
            diagnostic = worker_crash_diagnostic(
                f"{died} after {job.attempts} attempt(s)",
                signal=died.signal,
                trace=trace,
            )
            outcome = "crashed"
        return RunRecord(
            name=job.spec.benchmark,
            outcome=outcome,
            seconds=0.0,
            mode=job.spec.mode or self.default_mode,
            error=diagnostic.message,
            signal=died.signal,
            diagnostics=[diagnostic.to_dict()],
            trace=trace,
        ).to_dict()
