"""Deterministic structural digests over procedure CFGs.

The incremental-analysis layer needs to answer "did this procedure
change?" without trusting anything environmental: digests must be
byte-identical across processes (PYTHONHASHSEED-independent), invariant
under procedure reordering in the source program and under consistent
renaming of virtual registers and labels, and changed by any semantic
edit to the body (instruction added/removed/replaced, condition
flipped, blocks reordered).

The rendering therefore mirrors what `logic/canonical.py` does for
states: registers are replaced by their first-use index (parameters
first, then body order), labels are replaced by the instruction index
they resolve to, and the result is hashed with SHA-256 over a
repr-stable nested-tuple encoding.

A procedure's cached fixpoint results are only reusable when nothing it
transitively calls changed either, so the store keys on the *cone
digest*: a hash over the (name, digest) pairs of the procedure's callee
cone (itself included).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.ir.callgraph import CallGraph
from repro.ir.instructions import (
    ArithOp,
    Assign,
    Branch,
    Call,
    Free,
    Goto,
    Load,
    Malloc,
    Nop,
    Return,
    Store,
)
from repro.ir.program import Procedure, Program
from repro.ir.values import Global, IntConst, Null, Register

__all__ = [
    "ProgramDiff",
    "cone_digests",
    "diff_programs",
    "procedure_digest",
    "program_digests",
]


class _RegisterIndex:
    """Alpha-canonical register numbering: parameters first, then
    first-use order over the instruction stream."""

    def __init__(self, params: tuple[Register, ...]) -> None:
        self._order: dict[str, int] = {}
        for reg in params:
            self._index(reg)

    def _index(self, reg: Register) -> int:
        idx = self._order.get(reg.name)
        if idx is None:
            idx = len(self._order)
            self._order[reg.name] = idx
        return idx

    def operand(self, value: object) -> tuple:
        if isinstance(value, Register):
            return ("r", self._index(value))
        if isinstance(value, Global):
            return ("g", value.name)
        if isinstance(value, Null):
            return ("null",)
        if isinstance(value, IntConst):
            return ("i", value.value)
        if value is None:
            return ("none",)
        raise TypeError(f"undigestable operand: {value!r}")


def _render(proc: Procedure) -> tuple:
    regs = _RegisterIndex(proc.params)
    # Labels may legally point one past the end of the body (see
    # Procedure.validate); rendering them as target indices makes the
    # digest invariant under label renaming.
    labels = dict(proc.labels)
    rows: list[tuple] = []
    for instr in proc.instrs:
        if isinstance(instr, Nop):
            rows.append(("nop",))
        elif isinstance(instr, Assign):
            rows.append(("assign", regs.operand(instr.dst), regs.operand(instr.src)))
        elif isinstance(instr, ArithOp):
            rows.append(
                (
                    "arith",
                    instr.op,
                    regs.operand(instr.dst),
                    regs.operand(instr.lhs),
                    regs.operand(instr.rhs),
                )
            )
        elif isinstance(instr, Malloc):
            rows.append(("malloc", regs.operand(instr.dst), regs.operand(instr.count)))
        elif isinstance(instr, Free):
            rows.append(("free", regs.operand(instr.ptr)))
        elif isinstance(instr, Load):
            rows.append(
                ("load", regs.operand(instr.dst), regs.operand(instr.addr), instr.field)
            )
        elif isinstance(instr, Store):
            rows.append(
                ("store", regs.operand(instr.addr), instr.field, regs.operand(instr.src))
            )
        elif isinstance(instr, Call):
            rows.append(
                (
                    "call",
                    instr.func,
                    regs.operand(instr.dst),
                    tuple(regs.operand(a) for a in instr.args),
                )
            )
        elif isinstance(instr, Return):
            rows.append(("ret", regs.operand(instr.value)))
        elif isinstance(instr, Goto):
            rows.append(("goto", labels[instr.target]))
        elif isinstance(instr, Branch):
            cond = instr.cond
            rows.append(
                (
                    "br",
                    cond.op,
                    regs.operand(cond.lhs),
                    regs.operand(cond.rhs),
                    labels[instr.target],
                )
            )
        else:
            raise TypeError(f"undigestable instruction: {instr!r}")
    return ("proc", proc.name, len(proc.params), tuple(rows))


def _sha(rendering: tuple) -> str:
    return hashlib.sha256(repr(rendering).encode("utf-8")).hexdigest()


def procedure_digest(proc: Procedure) -> str:
    """PYTHONHASHSEED-stable structural digest of one procedure body."""
    return _sha(_render(proc))


def program_digests(program: Program) -> dict[str, str]:
    """Per-procedure digests, keyed by procedure name."""
    return {name: procedure_digest(proc) for name, proc in program.procedures.items()}


def cone_digests(
    program: Program,
    callgraph: CallGraph | None = None,
    proc_digests: dict[str, str] | None = None,
) -> dict[str, str]:
    """Per-procedure *cone* digests: a hash over the sorted
    (name, digest) pairs of the procedure's transitive callee set,
    itself included.  Two programs agree on a procedure's cone digest
    exactly when the procedure and everything it can reach are
    structurally identical in both — the soundness condition for
    replaying its cached fixpoint."""
    digests = proc_digests if proc_digests is not None else program_digests(program)
    graph = callgraph if callgraph is not None else CallGraph(program)
    cones: dict[str, str] = {}
    for name in program.procedures:
        members = sorted(graph.callee_cone(name))
        cones[name] = _sha(("cone", tuple((m, digests[m]) for m in members)))
    return cones


@dataclass(frozen=True)
class ProgramDiff:
    """What changed between two digest maps, cone-expanded for the new
    program.  Used for `incr.*` reporting; invalidation itself is
    implicit in the cone-digest store keys."""

    changed: tuple[str, ...]  # digests differ, or procedure added/removed
    cone: tuple[str, ...]  # changed + transitive callers (new program)
    depth: int  # caller-ward BFS depth of the cone
    total: int  # procedures in the new program
    reusable: tuple[str, ...] = field(default=())  # total minus cone


def diff_programs(
    old_digests: dict[str, str],
    new_program: Program,
    callgraph: CallGraph | None = None,
) -> ProgramDiff:
    graph = callgraph if callgraph is not None else CallGraph(new_program)
    new_digests = program_digests(new_program)
    changed = {
        name
        for name, digest in new_digests.items()
        if old_digests.get(name) != digest
    }
    changed |= {name for name in old_digests if name not in new_digests}
    cone: set[str] = set()
    for name in changed:
        if name in new_program.procedures:
            cone |= graph.caller_cone(name)
    depth = graph.cone_depth(changed & set(new_digests))
    reusable = tuple(sorted(set(new_digests) - cone))
    return ProgramDiff(
        changed=tuple(sorted(changed)),
        cone=tuple(sorted(cone)),
        depth=depth,
        total=len(new_digests),
        reusable=reusable,
    )
