"""Procedure and Program containers for the low-level IR.

A :class:`Procedure` is a flat list of instructions with a label map
(label name -> instruction index), mirroring the unstructured
machine-level control flow the paper targets.  A :class:`Program` is a
collection of procedures plus declared globals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Branch, Call, Goto, Instruction, Return
from repro.ir.values import Register

__all__ = ["Procedure", "Program", "IRError"]


class IRError(Exception):
    """Raised for malformed IR (unknown labels, missing procedures...)."""


@dataclass
class Procedure:
    """A procedure: parameters, a flat instruction list, and labels.

    ``labels[name]`` is the index of the instruction the label points at;
    a label may point one past the end (an empty epilogue position is
    normalized to an implicit ``return`` during validation).
    """

    name: str
    params: tuple[Register, ...]
    instrs: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)

    def validate(self) -> None:
        """Check label targets and ensure the body ends in control flow."""
        if not self.instrs or not isinstance(self.instrs[-1], (Return, Goto)):
            self.instrs.append(Return())
        if any(i == len(self.instrs) for i in self.labels.values()):
            # A label pointing one past the end is an implicit epilogue.
            self.instrs.append(Return())
        for label, index in self.labels.items():
            if not 0 <= index < len(self.instrs):
                raise IRError(
                    f"{self.name}: label {label!r} points outside the body"
                )
        for i, instr in enumerate(self.instrs):
            if isinstance(instr, (Goto, Branch)) and instr.target not in self.labels:
                raise IRError(
                    f"{self.name}@{i}: jump to undefined label {instr.target!r}"
                )

    def label_of(self, index: int) -> str | None:
        """Return a label naming *index*, if any (for pretty-printing)."""
        for label, i in self.labels.items():
            if i == index:
                return label
        return None

    def successors(self, index: int) -> tuple[int, ...]:
        """Indices of the instructions that may execute after *index*."""
        instr = self.instrs[index]
        if isinstance(instr, Return):
            return ()
        if isinstance(instr, Goto):
            return (self.labels[instr.target],)
        if isinstance(instr, Branch):
            fallthrough = index + 1
            taken = self.labels[instr.target]
            if taken == fallthrough:
                return (fallthrough,)
            return (fallthrough, taken)
        return (index + 1,)

    def callees(self) -> set[str]:
        """Names of procedures this procedure calls."""
        return {i.func for i in self.instrs if isinstance(i, Call)}

    def registers(self) -> set[Register]:
        """All registers referenced in the body or parameter list."""
        regs: set[Register] = set(self.params)
        for instr in self.instrs:
            regs.update(instr.defs())
            regs.update(instr.uses())
        return regs

    def __str__(self) -> str:
        lines = [f"proc {self.name}({', '.join(str(p) for p in self.params)}):"]
        index_to_labels: dict[int, list[str]] = {}
        for label, i in self.labels.items():
            index_to_labels.setdefault(i, []).append(label)
        for i, instr in enumerate(self.instrs):
            for label in sorted(index_to_labels.get(i, ())):
                lines.append(f"{label}:")
            lines.append(f"    {instr}")
        return "\n".join(lines)


@dataclass
class Program:
    """A whole program: procedures by name plus declared globals."""

    procedures: dict[str, Procedure] = field(default_factory=dict)
    globals: tuple[str, ...] = ()
    entry: str = "main"

    def add(self, proc: Procedure) -> None:
        if proc.name in self.procedures:
            raise IRError(f"duplicate procedure {proc.name!r}")
        self.procedures[proc.name] = proc

    def proc(self, name: str) -> Procedure:
        try:
            return self.procedures[name]
        except KeyError:
            raise IRError(f"unknown procedure {name!r}") from None

    def validate(self) -> None:
        """Validate every procedure and check call targets resolve."""
        for proc in self.procedures.values():
            proc.validate()
        known = set(self.procedures)
        for proc in self.procedures.values():
            for callee in proc.callees():
                if callee not in known:
                    raise IRError(f"{proc.name} calls unknown procedure {callee!r}")
        if self.entry not in self.procedures:
            raise IRError(f"entry procedure {self.entry!r} not defined")

    def instruction_count(self) -> int:
        """Total number of instructions (the ``#Insts`` column of Table 4)."""
        return sum(len(p.instrs) for p in self.procedures.values())

    def __str__(self) -> str:
        parts = []
        if self.globals:
            parts.append("globals " + ", ".join(self.globals))
        parts.extend(str(p) for p in self.procedures.values())
        return "\n\n".join(parts)
