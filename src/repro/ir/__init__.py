"""Low-level IR substrate: the paper's Table 1 target language.

Public surface:

* values: :class:`Register`, :class:`Global`, :class:`Null` (``NULL``),
  :class:`IntConst`
* instructions: :class:`Assign`, :class:`ArithOp`, :class:`Malloc`,
  :class:`Free`, :class:`Load`, :class:`Store`, :class:`Call`,
  :class:`Return`, :class:`Goto`, :class:`Branch`, :class:`Cond`
* containers: :class:`Procedure`, :class:`Program`
* construction: :class:`ProcBuilder`, :class:`ProgramBuilder`,
  :func:`parse_program`, :func:`print_program`
* graphs: :class:`CFG`, :class:`Loop`, :class:`CallGraph`
"""

from repro.ir.builder import ProcBuilder, ProgramBuilder
from repro.ir.callgraph import CallGraph
from repro.ir.cfg import CFG, Loop
from repro.ir.instructions import (
    ARITH_OPS,
    COMPARE_OPS,
    ArithOp,
    Assign,
    Branch,
    Call,
    Cond,
    Free,
    Goto,
    Instruction,
    Load,
    Malloc,
    Nop,
    Return,
    Store,
)
from repro.ir.program import IRError, Procedure, Program
from repro.ir.textual import ParseError, parse_program, print_program
from repro.ir.values import NULL, Global, IntConst, Null, Operand, Register

__all__ = [
    "ARITH_OPS",
    "COMPARE_OPS",
    "ArithOp",
    "Assign",
    "Branch",
    "CFG",
    "Call",
    "CallGraph",
    "Cond",
    "Free",
    "Global",
    "Goto",
    "Instruction",
    "IntConst",
    "IRError",
    "Load",
    "Loop",
    "Malloc",
    "NULL",
    "Nop",
    "Null",
    "Operand",
    "ParseError",
    "ProcBuilder",
    "Procedure",
    "Program",
    "ProgramBuilder",
    "Register",
    "Return",
    "Store",
    "parse_program",
    "print_program",
]
