"""Control-flow graph utilities: dominators, back edges, natural loops.

The interprocedural algorithm (paper, Figure 8) needs to recognize when
a propagated edge is "a back edge of loop l" so it can count iterations
and trigger recursion synthesis.  We compute dominators at instruction
granularity (procedures are small after slicing) and derive natural
loops from back edges ``tail -> header`` where the header dominates the
tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import Procedure

__all__ = ["Loop", "CFG"]


@dataclass(frozen=True)
class Loop:
    """A natural loop: its header index and the set of body indices."""

    header: int
    body: frozenset[int]
    back_edges: frozenset[tuple[int, int]]

    def __contains__(self, index: int) -> bool:
        return index in self.body


@dataclass
class CFG:
    """Instruction-granularity CFG of one procedure."""

    proc: Procedure
    succs: dict[int, tuple[int, ...]] = field(default_factory=dict)
    preds: dict[int, list[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.proc.instrs)
        self.preds = {i: [] for i in range(n)}
        for i in range(n):
            targets = self.proc.successors(i)
            self.succs[i] = targets
            for t in targets:
                self.preds[t].append(i)
        self._idom = self._compute_idoms()
        self._back_edges = self._compute_back_edges()
        self._loops = self._compute_loops()

    # ------------------------------------------------------------------
    def reachable(self) -> list[int]:
        """Instruction indices reachable from the entry, in RPO."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(i: int) -> None:
            if i in seen:
                return
            seen.add(i)
            for s in self.succs[i]:
                visit(s)
            order.append(i)

        if self.proc.instrs:
            visit(0)
        order.reverse()
        return order

    def _compute_idoms(self) -> dict[int, int]:
        """Cooper-Harvey-Kennedy iterative dominator algorithm."""
        order = self.reachable()
        if not order:
            return {}
        position = {node: i for i, node in enumerate(order)}
        idom: dict[int, int] = {order[0]: order[0]}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while position[a] > position[b]:
                    a = idom[a]
                while position[b] > position[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in order[1:]:
                candidates = [p for p in self.preds[node] if p in idom]
                if not candidates:
                    continue
                new = candidates[0]
                for p in candidates[1:]:
                    new = intersect(new, p)
                if idom.get(node) != new:
                    idom[node] = new
                    changed = True
        return idom

    def dominates(self, a: int, b: int) -> bool:
        """Does instruction *a* dominate instruction *b*?"""
        node = b
        while True:
            if node == a:
                return True
            parent = self._idom.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    def _compute_back_edges(self) -> list[tuple[int, int]]:
        edges = []
        for tail, targets in self.succs.items():
            if tail not in self._idom and tail != 0:
                continue  # unreachable
            for head in targets:
                if self.dominates(head, tail):
                    edges.append((tail, head))
        return edges

    def _compute_loops(self) -> dict[int, Loop]:
        """Natural loops keyed by header (back edges sharing a header merge)."""
        bodies: dict[int, set[int]] = {}
        edges: dict[int, set[tuple[int, int]]] = {}
        for tail, header in self._back_edges:
            body = bodies.setdefault(header, {header})
            edges.setdefault(header, set()).add((tail, header))
            stack = [tail]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(self.preds[node])
        return {
            header: Loop(header, frozenset(body), frozenset(edges[header]))
            for header, body in bodies.items()
        }

    # ------------------------------------------------------------------
    @property
    def back_edges(self) -> list[tuple[int, int]]:
        return list(self._back_edges)

    @property
    def loops(self) -> dict[int, Loop]:
        return dict(self._loops)

    def is_back_edge(self, tail: int, head: int) -> bool:
        return (tail, head) in self._back_edges

    def loop_of_header(self, header: int) -> Loop | None:
        return self._loops.get(header)

    def innermost_loop(self, index: int) -> Loop | None:
        """The smallest loop containing *index*, if any."""
        best: Loop | None = None
        for loop in self._loops.values():
            if index in loop and (best is None or len(loop.body) < len(best.body)):
                best = loop
        return best
