"""Call graph with Tarjan SCCs.

Recursive procedures are recognized as non-trivial SCCs (or self-loops)
of the call graph; the interprocedural analysis treats every procedure
in such an SCC with the sample-path + recursion-synthesis protocol of
Section 5.2.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import Program

__all__ = ["CallGraph"]


@dataclass
class CallGraph:
    program: Program
    edges: dict[str, set[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.edges = {
            name: {c for c in proc.callees() if c in self.program.procedures}
            for name, proc in self.program.procedures.items()
        }
        self._sccs = self._tarjan()
        self._scc_of: dict[str, frozenset[str]] = {}
        for scc in self._sccs:
            for name in scc:
                self._scc_of[name] = scc

    def _tarjan(self) -> list[frozenset[str]]:
        index_counter = 0
        indices: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        result: list[frozenset[str]] = []

        def strongconnect(v: str) -> None:
            nonlocal index_counter
            indices[v] = lowlink[v] = index_counter
            index_counter += 1
            stack.append(v)
            on_stack.add(v)
            for w in self.edges[v]:
                if w not in indices:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], indices[w])
            if lowlink[v] == indices[v]:
                component = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == v:
                        break
                result.append(frozenset(component))

        for v in self.edges:
            if v not in indices:
                strongconnect(v)
        return result

    # ------------------------------------------------------------------
    @property
    def sccs(self) -> list[frozenset[str]]:
        return list(self._sccs)

    def scc_of(self, name: str) -> frozenset[str]:
        return self._scc_of[name]

    def is_recursive(self, name: str) -> bool:
        """Is *name* part of a recursion (mutual or self)?"""
        scc = self._scc_of[name]
        if len(scc) > 1:
            return True
        return name in self.edges[name]

    def same_scc(self, a: str, b: str) -> bool:
        return self._scc_of[a] is self._scc_of[b]

    def topological_order(self) -> list[frozenset[str]]:
        """SCCs ordered callees-first (Tarjan emits reverse topological)."""
        return list(self._sccs)

    # -- cones ---------------------------------------------------------
    def callee_cone(self, name: str) -> frozenset[str]:
        """*name* plus every procedure transitively reachable from it.

        This is the set whose digests key the procedure's cached
        fixpoint results: a summary for ``name`` can only be replayed
        when nothing in its callee cone changed.
        """
        cones = self._callee_cones()
        return cones[name]

    def caller_cone(self, name: str) -> frozenset[str]:
        """*name* plus every procedure that transitively calls it.

        After an edit to ``name`` this is exactly the set of procedures
        whose cached fixpoints are invalidated (their callee cones all
        contain ``name``).
        """
        self._reverse_edges()
        seen = {name}
        frontier = [name]
        while frontier:
            nxt: list[str] = []
            for n in frontier:
                for caller in self._rev[n]:
                    if caller not in seen:
                        seen.add(caller)
                        nxt.append(caller)
            frontier = nxt
        return frozenset(seen)

    def cone_depth(self, names: "set[str] | frozenset[str]") -> int:
        """BFS depth (in call edges, walked caller-ward) of the union of
        the caller cones of *names*.  0 when nothing is invalidated, 1
        when only the edited procedures themselves are."""
        self._reverse_edges()
        seen = {n for n in names if n in self.edges}
        if not seen:
            return 0
        frontier = list(seen)
        depth = 1
        while frontier:
            nxt: list[str] = []
            for n in frontier:
                for caller in self._rev[n]:
                    if caller not in seen:
                        seen.add(caller)
                        nxt.append(caller)
            if nxt:
                depth += 1
            frontier = nxt
        return depth

    def _reverse_edges(self) -> dict[str, set[str]]:
        if not hasattr(self, "_rev"):
            rev: dict[str, set[str]] = {n: set() for n in self.edges}
            for caller, callees in self.edges.items():
                for callee in callees:
                    rev[callee].add(caller)
            self._rev = rev
        return self._rev

    def _callee_cones(self) -> dict[str, frozenset[str]]:
        if not hasattr(self, "_cones"):
            cones: dict[str, frozenset[str]] = {}
            # Tarjan order is callees-first, so every external callee's
            # cone is ready by the time its SCC is processed; members of
            # one SCC share a cone.
            for scc in self._sccs:
                cone: set[str] = set(scc)
                for member in scc:
                    for callee in self.edges[member]:
                        if callee not in scc:
                            cone |= cones[callee]
                frozen = frozenset(cone)
                for member in scc:
                    cones[member] = frozen
            self._cones = cones
        return self._cones
