"""Call graph with Tarjan SCCs.

Recursive procedures are recognized as non-trivial SCCs (or self-loops)
of the call graph; the interprocedural analysis treats every procedure
in such an SCC with the sample-path + recursion-synthesis protocol of
Section 5.2.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import Program

__all__ = ["CallGraph"]


@dataclass
class CallGraph:
    program: Program
    edges: dict[str, set[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.edges = {
            name: {c for c in proc.callees() if c in self.program.procedures}
            for name, proc in self.program.procedures.items()
        }
        self._sccs = self._tarjan()
        self._scc_of: dict[str, frozenset[str]] = {}
        for scc in self._sccs:
            for name in scc:
                self._scc_of[name] = scc

    def _tarjan(self) -> list[frozenset[str]]:
        index_counter = 0
        indices: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        result: list[frozenset[str]] = []

        def strongconnect(v: str) -> None:
            nonlocal index_counter
            indices[v] = lowlink[v] = index_counter
            index_counter += 1
            stack.append(v)
            on_stack.add(v)
            for w in self.edges[v]:
                if w not in indices:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], indices[w])
            if lowlink[v] == indices[v]:
                component = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == v:
                        break
                result.append(frozenset(component))

        for v in self.edges:
            if v not in indices:
                strongconnect(v)
        return result

    # ------------------------------------------------------------------
    @property
    def sccs(self) -> list[frozenset[str]]:
        return list(self._sccs)

    def scc_of(self, name: str) -> frozenset[str]:
        return self._scc_of[name]

    def is_recursive(self, name: str) -> bool:
        """Is *name* part of a recursion (mutual or self)?"""
        scc = self._scc_of[name]
        if len(scc) > 1:
            return True
        return name in self.edges[name]

    def same_scc(self, a: str, b: str) -> bool:
        return self._scc_of[a] is self._scc_of[b]

    def topological_order(self) -> list[frozenset[str]]:
        """SCCs ordered callees-first (Tarjan emits reverse topological)."""
        return list(self._sccs)
