"""Instruction set of the low-level IR (paper, Table 1).

The grammar of the paper::

    Insts s ::= r = e | r = malloc() | free(r) | r = f(x..)
              | [r1] = r2 | r1 = [r2] | goto l | if c goto l
    Branch Conds c ::= r1 = r2 | r1 != r2

extended, as the paper describes in Section 2, with pointer arithmetic
(``r1 = r2 + n``, ``r1 = r2 * n``) and, for realistic programs, ordinary
integer arithmetic and comparisons (which the slicing pre-pass removes
before shape analysis when they cannot affect recursive pointer fields).

Memory accesses carry a *field* (a string naming the struct member, i.e.
a symbolic offset):

* ``Load(dst, addr, field)``   --  ``dst = [addr.field]``
* ``Store(addr, field, src)``  --  ``[addr.field] = src``

Control flow is unstructured: a procedure body is a flat instruction
list; :class:`Goto` / :class:`Branch` jump to labels which name
instruction indices (see :mod:`repro.ir.program`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.values import IntConst, Operand, Register

__all__ = [
    "Instruction",
    "Nop",
    "Assign",
    "ArithOp",
    "Malloc",
    "Free",
    "Load",
    "Store",
    "Call",
    "Return",
    "Goto",
    "Branch",
    "Cond",
    "COMPARE_OPS",
    "ARITH_OPS",
]

#: Comparison operators allowed in branch conditions.
COMPARE_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Arithmetic operators.  ``add``/``sub`` participate in pointer
#: arithmetic; the others are integer-only and are always sliced away.
ARITH_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr")


class Instruction:
    """Base class for all IR instructions."""

    __slots__ = ()

    def defs(self) -> tuple[Register, ...]:
        """Registers written by this instruction."""
        return ()

    def uses(self) -> tuple[Register, ...]:
        """Registers read by this instruction."""
        return ()


@dataclass(frozen=True, slots=True)
class Nop(Instruction):
    """A no-op; the slicing pre-pass replaces pruned instructions with
    nops so that labels and instruction indices stay stable."""

    def __str__(self) -> str:
        return "nop"


def _regs(*operands: object) -> tuple[Register, ...]:
    return tuple(op for op in operands if isinstance(op, Register))


@dataclass(frozen=True, slots=True)
class Assign(Instruction):
    """``dst = src`` where src is a register, global, null or constant."""

    dst: Register
    src: Operand

    def defs(self) -> tuple[Register, ...]:
        return (self.dst,)

    def uses(self) -> tuple[Register, ...]:
        return _regs(self.src)

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass(frozen=True, slots=True)
class ArithOp(Instruction):
    """``dst = lhs <op> rhs``.

    ``add``/``sub`` with a pointer left operand performs element-level
    pointer arithmetic (``node + 1`` steps to the next array slot, as in
    the 181.mcf builder of the paper's Figure 4).
    """

    dst: Register
    op: str
    lhs: Operand
    rhs: Operand

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic op {self.op!r}")

    def defs(self) -> tuple[Register, ...]:
        return (self.dst,)

    def uses(self) -> tuple[Register, ...]:
        return _regs(self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}"


@dataclass(frozen=True, slots=True)
class Malloc(Instruction):
    """``dst = malloc()``.

    ``count`` distinguishes a single-node allocation from an array
    allocation used for application-level memory management (the
    ``nodes = malloc(MAX_NODES)`` idiom of 181.mcf).  ``count`` may be a
    register or constant; the abstract semantics only cares whether the
    allocation is an array (count given) or a single cell.
    """

    dst: Register
    count: Operand | None = None

    def defs(self) -> tuple[Register, ...]:
        return (self.dst,)

    def uses(self) -> tuple[Register, ...]:
        return _regs(self.count) if self.count is not None else ()

    @property
    def is_array(self) -> bool:
        return self.count is not None and not (
            isinstance(self.count, IntConst) and self.count.value == 1
        )

    def __str__(self) -> str:
        arg = str(self.count) if self.count is not None else ""
        return f"{self.dst} = malloc({arg})"


@dataclass(frozen=True, slots=True)
class Free(Instruction):
    """``free(r)``."""

    ptr: Register

    def uses(self) -> tuple[Register, ...]:
        return (self.ptr,)

    def __str__(self) -> str:
        return f"free({self.ptr})"


@dataclass(frozen=True, slots=True)
class Load(Instruction):
    """``dst = [addr.field]``."""

    dst: Register
    addr: Register
    field: str

    def defs(self) -> tuple[Register, ...]:
        return (self.dst,)

    def uses(self) -> tuple[Register, ...]:
        return (self.addr,)

    def __str__(self) -> str:
        return f"{self.dst} = [{self.addr}.{self.field}]"


@dataclass(frozen=True, slots=True)
class Store(Instruction):
    """``[addr.field] = src``."""

    addr: Register
    field: str
    src: Operand

    def uses(self) -> tuple[Register, ...]:
        return _regs(self.addr, self.src)

    def __str__(self) -> str:
        return f"[{self.addr}.{self.field}] = {self.src}"


@dataclass(frozen=True, slots=True)
class Call(Instruction):
    """``dst = f(args...)``; ``dst`` may be None for void calls."""

    dst: Register | None
    func: str
    args: tuple[Operand, ...] = field(default_factory=tuple)

    def defs(self) -> tuple[Register, ...]:
        return (self.dst,) if self.dst is not None else ()

    def uses(self) -> tuple[Register, ...]:
        return _regs(*self.args)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}call {self.func}({args})"


@dataclass(frozen=True, slots=True)
class Return(Instruction):
    """``return [value]``."""

    value: Operand | None = None

    def uses(self) -> tuple[Register, ...]:
        return _regs(self.value) if self.value is not None else ()

    def __str__(self) -> str:
        return f"return {self.value}" if self.value is not None else "return"


@dataclass(frozen=True, slots=True)
class Cond:
    """A branch condition ``lhs <op> rhs``."""

    op: str
    lhs: Operand
    rhs: Operand

    def __post_init__(self) -> None:
        if self.op not in COMPARE_OPS:
            raise ValueError(f"unknown comparison op {self.op!r}")

    def negated(self) -> "Cond":
        """The condition that holds exactly when this one does not."""
        flip = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "le": "gt", "gt": "le"}
        return Cond(flip[self.op], self.lhs, self.rhs)

    def __str__(self) -> str:
        sym = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
        return f"{self.lhs} {sym[self.op]} {self.rhs}"


@dataclass(frozen=True, slots=True)
class Goto(Instruction):
    """``goto label``."""

    target: str

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True, slots=True)
class Branch(Instruction):
    """``if cond goto label`` (fall through otherwise)."""

    cond: Cond
    target: str

    def uses(self) -> tuple[Register, ...]:
        return _regs(self.cond.lhs, self.cond.rhs)

    def __str__(self) -> str:
        return f"if {self.cond} goto {self.target}"
