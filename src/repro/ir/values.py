"""Value and operand model for the low-level IR (paper, Table 1).

The target language of the analysis is an assembly-like intermediate
language.  Its operands are:

* :class:`Register` -- virtual registers ``r``; the analysis maps these to
  symbolic values.
* :class:`Global` -- names of heap locations allocated for global
  variables ``g``.
* :class:`Null` -- the ``null`` constant.
* :class:`IntConst` -- integer literals.  These only matter to the shape
  analysis through pointer arithmetic; everything else involving them is
  pruned by the slicing pre-pass.

Struct fields are modelled as *named offsets* (plain strings attached to
loads and stores).  The paper addresses memory as ``h + n`` with numeric
offsets; named fields carry exactly the per-field distinction the
analysis needs, while *element-level* pointer arithmetic across array
slots stays numeric (:class:`~repro.logic.symvals.OffsetVal`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Register",
    "Global",
    "Null",
    "IntConst",
    "NULL",
    "Operand",
    "is_operand",
]


@dataclass(frozen=True, slots=True)
class Register:
    """A virtual register.  Identity is the name."""

    name: str

    def __str__(self) -> str:
        return "%" + self.name


@dataclass(frozen=True, slots=True)
class Global:
    """The name of the heap location allocated for a global variable."""

    name: str

    def __str__(self) -> str:
        return "@" + self.name


@dataclass(frozen=True, slots=True)
class Null:
    """The ``null`` pointer constant."""

    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True, slots=True)
class IntConst:
    """An integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


NULL = Null()

# An operand of an instruction: anything that can appear as ``e`` in the
# grammar of Table 1, plus integer literals.
Operand = Register | Global | Null | IntConst


def is_operand(value: object) -> bool:
    """Return True if *value* is a well-formed IR operand."""
    return isinstance(value, (Register, Global, Null, IntConst))
