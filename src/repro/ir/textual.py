"""Textual format for the IR: a line-oriented assembler and printer.

Grammar (one construct per line; ``#`` starts a comment)::

    globals g1, g2
    proc name(%p1, %p2):
    label:
        %r = null | %r2 | @g | 42
        %r = add %a, %b            # add sub mul div mod and or xor shl shr
        %r = malloc() | malloc(%n) | malloc(42)
        free(%r)
        %r = [%p.field]
        [%p.field] = %r | null | @g | 42
        %r = call f(%a, %b)
        call f(%a)
        return | return %r
        goto L
        if %a == %b goto L         # == != < <= > >=

This gives the benchmark suite and the tests a compact, reviewable way
to write whole programs, mirroring how the paper's analysis consumes
compiler-produced assembly rather than C source.
"""

from __future__ import annotations

import re

from repro.ir.instructions import (
    ARITH_OPS,
    ArithOp,
    Assign,
    Branch,
    Call,
    Cond,
    Free,
    Goto,
    Load,
    Malloc,
    Nop,
    Return,
    Store,
)
from repro.ir.program import IRError, Procedure, Program
from repro.ir.values import NULL, Global, IntConst, Operand, Register

__all__ = ["parse_program", "print_program", "ParseError"]


class ParseError(IRError):
    """Raised on malformed textual IR, with a line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_CMP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_CMP_PRINT = {v: k for k, v in _CMP.items()}

_REG = r"%[A-Za-z_.][\w.]*"
_OPERAND = rf"(?:{_REG}|@[A-Za-z_]\w*|null|-?\d+)"
_LABEL = r"[A-Za-z_.][\w.]*"

_PATTERNS: list[tuple[re.Pattern[str], str]] = [
    (re.compile(rf"({_REG}) = malloc\((({_OPERAND})?)\)$"), "malloc"),
    (re.compile(rf"free\(({_REG})\)$"), "free"),
    (re.compile(rf"({_REG}) = \[({_REG})\.(\w+)\]$"), "load"),
    (re.compile(rf"\[({_REG})\.(\w+)\] = ({_OPERAND})$"), "store"),
    (re.compile(rf"({_REG}) = call (\w+)\((.*)\)$"), "call"),
    (re.compile(r"call (\w+)\((.*)\)$"), "call_void"),
    (re.compile(rf"({_REG}) = (\w+) ({_OPERAND}), ({_OPERAND})$"), "arith"),
    (re.compile(rf"({_REG}) = ({_OPERAND})$"), "assign"),
    (re.compile(rf"return ({_OPERAND})$"), "return_val"),
    (re.compile(r"return$"), "return"),
    (re.compile(r"nop$"), "nop"),
    (re.compile(rf"goto ({_LABEL})$"), "goto"),
    (
        re.compile(
            rf"if ({_OPERAND}) (==|!=|<=|>=|<|>) ({_OPERAND}) goto ({_LABEL})$"
        ),
        "branch",
    ),
]


def _operand(text: str) -> Operand:
    if text == "null":
        return NULL
    if text.startswith("%"):
        return Register(text[1:])
    if text.startswith("@"):
        return Global(text[1:])
    return IntConst(int(text))


def _args(text: str) -> tuple[Operand, ...]:
    text = text.strip()
    if not text:
        return ()
    return tuple(_operand(a.strip()) for a in text.split(","))


def parse_program(source: str, entry: str = "main") -> Program:
    """Parse the textual IR format into a validated :class:`Program`."""
    program = Program(entry=entry)
    current: Procedure | None = None
    pending_labels: list[tuple[str, int]] = []

    def finish(lineno: int) -> None:
        nonlocal current
        if current is None:
            return
        for label, _ in pending_labels:
            current.labels[label] = len(current.instrs)
        pending_labels.clear()
        try:
            current.validate()
        except IRError as exc:
            raise ParseError(lineno, str(exc)) from exc
        program.add(current)
        current = None

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("globals "):
            names = tuple(g.strip() for g in line[len("globals "):].split(","))
            program.globals = program.globals + names
            continue
        match = re.fullmatch(rf"proc (\w+)\(((?:{_REG}(?:, {_REG})*)?)\):", line)
        if match:
            finish(lineno)
            params = tuple(
                Register(p.strip()[1:])
                for p in match.group(2).split(",")
                if p.strip()
            )
            current = Procedure(match.group(1), params, [], {})
            continue
        if current is None:
            raise ParseError(lineno, f"instruction outside a procedure: {line!r}")
        label_match = re.fullmatch(rf"({_LABEL}):", line)
        if label_match:
            label = label_match.group(1)
            if label in current.labels:
                raise ParseError(lineno, f"duplicate label {label!r}")
            current.labels[label] = len(current.instrs)
            continue
        current.instrs.append(_parse_instr(line, lineno))

    finish(len(source.splitlines()))
    program.validate()
    return program


def _parse_instr(line: str, lineno: int):
    for pattern, kind in _PATTERNS:
        match = pattern.fullmatch(line)
        if not match:
            continue
        g = match.groups()
        if kind == "malloc":
            count = _operand(g[1]) if g[1] else None
            return Malloc(Register(g[0][1:]), count)
        if kind == "free":
            return Free(Register(g[0][1:]))
        if kind == "load":
            return Load(Register(g[0][1:]), Register(g[1][1:]), g[2])
        if kind == "store":
            return Store(Register(g[0][1:]), g[1], _operand(g[2]))
        if kind == "call":
            return Call(Register(g[0][1:]), g[1], _args(g[2]))
        if kind == "call_void":
            return Call(None, g[0], _args(g[1]))
        if kind == "arith":
            if g[1] not in ARITH_OPS:
                raise ParseError(lineno, f"unknown arithmetic op {g[1]!r}")
            return ArithOp(Register(g[0][1:]), g[1], _operand(g[2]), _operand(g[3]))
        if kind == "assign":
            return Assign(Register(g[0][1:]), _operand(g[1]))
        if kind == "return_val":
            return Return(_operand(g[0]))
        if kind == "return":
            return Return()
        if kind == "nop":
            return Nop()
        if kind == "goto":
            return Goto(g[0])
        if kind == "branch":
            return Branch(Cond(_CMP[g[1]], _operand(g[0]), _operand(g[2])), g[3])
    raise ParseError(lineno, f"cannot parse instruction: {line!r}")


def print_program(program: Program) -> str:
    """Render *program* back to the textual format (parse round-trips)."""
    chunks: list[str] = []
    if program.globals:
        chunks.append("globals " + ", ".join(program.globals))
    for proc in program.procedures.values():
        lines = [f"proc {proc.name}({', '.join(str(p) for p in proc.params)}):"]
        index_to_labels: dict[int, list[str]] = {}
        for label, i in proc.labels.items():
            index_to_labels.setdefault(i, []).append(label)
        for i, instr in enumerate(proc.instrs):
            for label in sorted(index_to_labels.get(i, ())):
                lines.append(f"{label}:")
            lines.append(f"    {_print_instr(instr)}")
        for label in sorted(index_to_labels.get(len(proc.instrs), ())):
            lines.append(f"{label}:")
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + "\n"


def _print_instr(instr) -> str:
    if isinstance(instr, Branch):
        c = instr.cond
        return f"if {c.lhs} {_CMP_PRINT[c.op]} {c.rhs} goto {instr.target}"
    if isinstance(instr, Call):
        args = ", ".join(str(a) for a in instr.args)
        head = f"{instr.dst} = call" if instr.dst is not None else "call"
        return f"{head} {instr.func}({args})"
    return str(instr)
