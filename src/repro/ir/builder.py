"""Fluent construction API for IR procedures.

Writing flat instruction lists with explicit labels by hand is
error-prone; the builder keeps a cursor, auto-generates fresh labels and
registers, and offers structured helpers (``while_``, ``if_``) that
lower to the unstructured gotos the analysis consumes.

Example::

    b = ProcBuilder("length", params=["list"])
    n = b.assign_const("n", 0)
    cur = b.assign("cur", b.reg("list"))
    with b.while_("ne", cur, NULL):
        b.arith(n, "add", n, IntConst(1))
        b.load(cur, cur, "next")
    b.ret(n)
    proc = b.build()
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

from repro.ir.instructions import (
    ArithOp,
    Assign,
    Branch,
    Call,
    Cond,
    Free,
    Goto,
    Instruction,
    Load,
    Malloc,
    Return,
    Store,
)
from repro.ir.program import Procedure, Program
from repro.ir.values import NULL, Global, IntConst, Null, Operand, Register

__all__ = ["ProcBuilder", "ProgramBuilder"]


def _as_operand(value: Operand | int | None) -> Operand:
    if value is None:
        return NULL
    if isinstance(value, int):
        return IntConst(value)
    return value


class ProcBuilder:
    """Accumulates instructions for one procedure."""

    def __init__(self, name: str, params: list[str] | None = None):
        self.name = name
        self.params = tuple(Register(p) for p in (params or []))
        self._instrs: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fresh = 0

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def reg(self, name: str) -> Register:
        return Register(name)

    def fresh_reg(self, hint: str = "t") -> Register:
        self._fresh += 1
        return Register(f"{hint}.{self._fresh}")

    def fresh_label(self, hint: str = "L") -> str:
        self._fresh += 1
        return f"{hint}.{self._fresh}"

    # ------------------------------------------------------------------
    # Raw emission
    # ------------------------------------------------------------------
    def emit(self, instr: Instruction) -> None:
        self._instrs.append(instr)

    def label(self, name: str | None = None) -> str:
        """Attach a (possibly fresh) label to the next instruction."""
        name = name or self.fresh_label()
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instrs)
        return name

    # ------------------------------------------------------------------
    # Instruction helpers
    # ------------------------------------------------------------------
    def assign(self, dst: Register | str, src: Operand | int | None) -> Register:
        dst = Register(dst) if isinstance(dst, str) else dst
        self.emit(Assign(dst, _as_operand(src)))
        return dst

    def assign_const(self, dst: Register | str, value: int) -> Register:
        return self.assign(dst, IntConst(value))

    def arith(
        self,
        dst: Register | str,
        op: str,
        lhs: Operand | int,
        rhs: Operand | int,
    ) -> Register:
        dst = Register(dst) if isinstance(dst, str) else dst
        self.emit(ArithOp(dst, op, _as_operand(lhs), _as_operand(rhs)))
        return dst

    def malloc(self, dst: Register | str, count: Operand | int | None = None) -> Register:
        dst = Register(dst) if isinstance(dst, str) else dst
        count_op = None if count is None else _as_operand(count)
        self.emit(Malloc(dst, count_op))
        return dst

    def free(self, ptr: Register) -> None:
        self.emit(Free(ptr))

    def load(self, dst: Register | str, addr: Register, field: str) -> Register:
        dst = Register(dst) if isinstance(dst, str) else dst
        self.emit(Load(dst, addr, field))
        return dst

    def store(self, addr: Register, field: str, src: Operand | int | None) -> None:
        self.emit(Store(addr, field, _as_operand(src)))

    def call(
        self,
        dst: Register | str | None,
        func: str,
        args: list[Operand | int | None] | None = None,
    ) -> Register | None:
        if isinstance(dst, str):
            dst = Register(dst)
        operands = tuple(_as_operand(a) for a in (args or []))
        self.emit(Call(dst, func, operands))
        return dst

    def ret(self, value: Operand | int | None = None) -> None:
        self.emit(Return(None if value is None else _as_operand(value)))

    def goto(self, target: str) -> None:
        self.emit(Goto(target))

    def branch(
        self, op: str, lhs: Operand | int, rhs: Operand | int | None, target: str
    ) -> None:
        self.emit(Branch(Cond(op, _as_operand(lhs), _as_operand(rhs)), target))

    def emit_branch(self, cond: Cond, target: str) -> None:
        self.emit(Branch(cond, target))

    # ------------------------------------------------------------------
    # Structured control flow (lowered to labels + branches)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def while_(
        self, op: str, lhs: Operand | int, rhs: Operand | int | None
    ) -> Iterator[str]:
        """``while (lhs op rhs) { body }``; yields the header label."""
        header = self.label()
        exit_label = self.fresh_label("exit")
        cond = Cond(op, _as_operand(lhs), _as_operand(rhs))
        self.emit(Branch(cond.negated(), exit_label))
        yield header
        self.goto(header)
        self._labels[exit_label] = len(self._instrs)
        return

    @contextlib.contextmanager
    def if_(
        self, op: str, lhs: Operand | int, rhs: Operand | int | None
    ) -> Iterator[None]:
        """``if (lhs op rhs) { body }`` (no else)."""
        skip = self.fresh_label("skip")
        cond = Cond(op, _as_operand(lhs), _as_operand(rhs))
        self.emit(Branch(cond.negated(), skip))
        yield
        self._labels[skip] = len(self._instrs)

    def if_else(
        self, op: str, lhs: Operand | int, rhs: Operand | int | None
    ) -> "_IfElse":
        """``if (lhs op rhs) {...} else {...}``; see :class:`_IfElse`."""
        return _IfElse(self, Cond(op, _as_operand(lhs), _as_operand(rhs)))

    # ------------------------------------------------------------------
    def build(self) -> Procedure:
        proc = Procedure(self.name, self.params, list(self._instrs), dict(self._labels))
        proc.validate()
        return proc


class _IfElse:
    """Helper for two-armed conditionals::

        ie = b.if_else("eq", x, NULL)
        with ie.then():
            ...
        with ie.otherwise():
            ...
        ie.end()
    """

    def __init__(self, builder: ProcBuilder, cond: Cond):
        self._b = builder
        self._cond = cond
        self._else_label = builder.fresh_label("else")
        self._end_label = builder.fresh_label("end")

    @contextlib.contextmanager
    def then(self) -> Iterator[None]:
        self._b.emit(Branch(self._cond.negated(), self._else_label))
        yield
        self._b.goto(self._end_label)

    @contextlib.contextmanager
    def otherwise(self) -> Iterator[None]:
        self._b._labels[self._else_label] = len(self._b._instrs)
        yield

    def end(self) -> None:
        self._b._labels[self._end_label] = len(self._b._instrs)


class ProgramBuilder:
    """Collects procedures into a validated :class:`Program`."""

    def __init__(self, entry: str = "main", globals: tuple[str, ...] = ()):
        self._program = Program(entry=entry, globals=globals)

    def proc(self, name: str, params: list[str] | None = None) -> ProcBuilder:
        return ProcBuilder(name, params)

    def add(self, builder_or_proc: ProcBuilder | Procedure) -> None:
        proc = (
            builder_or_proc.build()
            if isinstance(builder_or_proc, ProcBuilder)
            else builder_or_proc
        )
        self._program.add(proc)

    def build(self) -> Program:
        self._program.validate()
        return self._program
