"""ASCII tables and figure-style rendering for the experiment harness.

The benchmark scripts print Table 4 / Figure 4 / Table 3 analogues with
these helpers so paper-vs-measured comparisons read uniformly.  The
batch runner's structured report (pass/degraded/failed/crashed/timeout
counts plus per-run diagnostics) renders through
:func:`render_batch_report`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = [
    "render_table",
    "render_header",
    "render_batch_report",
    "indent_block",
]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A boxed, column-aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (w + 2) for w in widths) + "+"

    def format_row(row: Sequence[str]) -> str:
        return (
            "|"
            + "|".join(f" {cell.ljust(widths[i])} " for i, cell in enumerate(row))
            + "|"
        )

    parts = []
    if title:
        parts.append(title)
    parts.append(line("="))
    parts.append(format_row(list(headers)))
    parts.append(line("="))
    for row in cells:
        parts.append(format_row(row))
    parts.append(line())
    return "\n".join(parts)


def render_batch_report(report: Mapping) -> str:
    """Render a batch runner report dict (see
    :meth:`repro.benchsuite.runner.BatchReport.to_dict`): one row per
    run, then the outcome counts and aggregate budget accounting."""
    # The Signal column only appears when some child actually died by a
    # signal -- the common all-clear report stays narrow.
    with_signals = any(run.get("signal") for run in report.get("runs", ()))
    rows = []
    for run in report.get("runs", ()):
        diagnostics = run.get("diagnostics") or []
        note = run.get("error") or ""
        if diagnostics:
            codes = sorted({d.get("code", "?") for d in diagnostics})
            note = ",".join(codes)
        row = [
            run.get("name", "?"),
            run.get("outcome", "?"),
            f"{run.get('seconds', 0.0):.3f}",
            len(diagnostics),
        ]
        if with_signals:
            row.append(run.get("signal") or "")
        row.append(_truncate(note, 60))
        rows.append(row)
    counts = report.get("counts", {})
    counts_line = "  ".join(f"{k}={v}" for k, v in counts.items())
    budget = report.get("budget", {})
    budget_line = "  ".join(f"{k}={v}" for k, v in budget.items())
    headers = ["Benchmark", "Outcome", "Time (s)", "#Diag"]
    if with_signals:
        headers.append("Signal")
    headers.append("Notes")
    parts = [
        render_table(
            headers,
            rows,
            title=(
                f"Batch report (mode={report.get('mode', '?')}, "
                f"isolated={report.get('isolated', '?')})"
            ),
        ),
        f"outcomes: {counts_line}",
    ]
    signals = report.get("signals", {})
    if signals:
        signals_line = "  ".join(f"{k}={v}" for k, v in sorted(signals.items()))
        parts.append(f"signals:  {signals_line}")
    if budget:
        parts.append(f"budget:   {budget_line}")
    return "\n".join(parts)


def _truncate(text: str, width: int) -> str:
    """Clamp to *width* characters, ellipsized so a clipped note is
    visibly clipped rather than silently cut mid-word."""
    if len(text) <= width:
        return text
    return text[: width - 3] + "..."


def render_header(title: str, char: str = "=") -> str:
    bar = char * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"


def indent_block(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
