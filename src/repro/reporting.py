"""ASCII tables and figure-style rendering for the experiment harness.

The benchmark scripts print Table 4 / Figure 4 / Table 3 analogues with
these helpers so paper-vs-measured comparisons read uniformly.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_header", "indent_block"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A boxed, column-aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (w + 2) for w in widths) + "+"

    def format_row(row: Sequence[str]) -> str:
        return (
            "|"
            + "|".join(f" {cell.ljust(widths[i])} " for i, cell in enumerate(row))
            + "|"
        )

    parts = []
    if title:
        parts.append(title)
    parts.append(line("="))
    parts.append(format_row(list(headers)))
    parts.append(line("="))
    for row in cells:
        parts.append(format_row(row))
    parts.append(line())
    return "\n".join(parts)


def render_header(title: str, char: str = "=") -> str:
    bar = char * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"


def indent_block(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
