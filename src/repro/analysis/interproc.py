"""Interprocedural engine (paper, §5.2, Figure 8).

A worklist interpreter per procedure activation with:

* tabulated procedure summaries keyed by equivalent entry local heaps
  (reused through a renaming witness);
* local-heap extraction / Frame-rule recombination at call sites, with
  cutpoints preserved (never folded);
* the loop protocol of §3: propagate raw states around each natural
  loop for a bounded number of iterations (2 suffices, as in the
  paper), then hypothesize an invariant with recursion synthesis and
  *verify* it by executing the body once more -- a back-edge state that
  does not fold into the invariant means the hypothesis failed and the
  analysis halts (:class:`AnalysisFailure`), never silently
  approximates;
* the recursive-procedure protocol of §5.2.1: a sample path enters
  every procedure of a call-graph SCC at least twice (branches that
  reach recursive calls are taken preferentially, then avoided),
  entry/exit invariants are synthesized from the latest entry/exit
  states, and each SCC member is re-executed from its entry invariant
  with recursive calls answered by the hypothesized contracts; exits
  must be subsumed by the exit invariants (a coinductive proof, the
  "invariants derive themselves" check).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.ir.callgraph import CallGraph
from repro.ir.cfg import CFG
from repro.ir.instructions import (
    Branch,
    Call,
    Goto,
    Instruction,
    Load,
    Nop,
    Return,
    Store,
)
from repro.ir.program import Program
from repro.ir.values import Register
from repro.logic import lemmas
from repro.logic.entailment import Mapping, subsumes
from repro.logic.formula import PureFormula, SpatialFormula
from repro.logic.heapnames import (
    FieldPath,
    GlobalLoc,
    HeapName,
    Var,
    fresh_var,
    path_of,
    root_of,
)
from repro.logic.predicates import PredicateEnv
from repro.logic.state import AbstractState, AnalysisStuck
from repro.logic.stateset import StateSet, any_subsumes, structural_signature
from repro.logic.symvals import NULL_VAL, NullVal, Opaque, OffsetVal, SymVal
from repro.logic.assertions import PointsTo, Raw
from repro.prepass.liveness import Liveness
from repro.prepass.wto import WeakTopologicalOrder, compute_wto
from repro.analysis.fold import fold_state
from repro.analysis.invariants import normalize_state
from repro.analysis.localheap import SplitHeap, combine, extract_local_heap
from repro.analysis.resilience import (
    EXECUTION_STUCK,
    INVARIANT_FAILURE,
    SEVERITY_WARNING,
    STORE_INVALID,
    SUMMARY_FAILURE,
    AnalysisFailure,
    Budget,
    BudgetExhausted,
    Diagnostic,
)
from repro.analysis.semantics import apply_instruction, filter_condition
from repro.analysis.unfold import unify_values
from repro import obs
from repro.obs import Metrics

__all__ = [
    "ShapeEngine",
    "AnalysisFailure",
    "Summary",
    "RET_REGISTER",
    "PHASE_BOUNDARIES",
]

#: Pseudo-register holding a procedure's return value in exit states.
RET_REGISTER = Register("$ret")

#: The engine's internal phase boundaries, in pipeline order.  The
#: engine calls :meth:`ShapeEngine.phase_boundary` at each of them; the
#: default hook is a no-op, and the crucible's fault-injection layer
#: overrides it to chaos-test containment (see
#: :mod:`repro.crucible.faults`).
PHASE_BOUNDARIES = (
    "rearrange",
    "fold",
    "entailment",
    "synthesis",
    "tabulation",
    "store",
)


@dataclass
class Summary:
    """A tabulated procedure summary: entry invariant, exit states and
    the cutpoints under which it was computed."""

    entry: AbstractState
    exits: list[AbstractState]
    cutpoints: frozenset[HeapName] = frozenset()
    #: Canonical entry key when this summary was *replayed* from a
    #: fixpoint bundle (None when tabulated in-run).  Replayed summaries
    #: only answer calls whose live entry canonicalizes to exactly this
    #: key: entailment-equivalence is too coarse for cross-program reuse
    #: -- two equivalent-but-differently-spelled entries can steer the
    #: engine down different (both sound) trajectories, and incremental
    #: replay must reproduce the from-scratch trajectory bit for bit.
    entry_key: "str | None" = None


@dataclass
class _Sampler:
    """Bookkeeping for the sample-path execution through a call-graph SCC."""

    scc: frozenset[str]
    max_visits: int
    visits: dict[str, int] = field(default_factory=dict)
    depth: int = 0
    #: per procedure, the sampled activations as (entry, exits,
    #: cutpoints) triples, in completion order; entries and exits of
    #: one triple share names.
    activations: dict[
        str,
        list[tuple[AbstractState, list[AbstractState], frozenset[HeapName]]],
    ] = field(default_factory=dict)
    latest_entry: dict[str, AbstractState] = field(default_factory=dict)

    def head_toward_recursion(self) -> bool:
        """Branch-selection policy of the sample path (§5.2.1).

        While the current *nesting depth* of SCC activations is within
        the quota, branches head toward recursive calls so that every
        recursive call site of every activation in the quota window
        contributes a level of structure; beyond it they head away,
        steering each further activation straight to a base case.
        Depth-based (rather than total-visit-count-based) steering is
        what makes both recursive fields of a tree builder unfold."""
        return self.depth <= self.max_visits * len(self.scc)

    def record_entry(self, name: str, entry: AbstractState) -> None:
        self.visits[name] = self.visits.get(name, 0) + 1
        self.latest_entry[name] = entry.copy()

    def record_activation(
        self,
        name: str,
        entry: AbstractState,
        exits: list[AbstractState],
        cutpoints: frozenset[HeapName],
    ) -> None:
        self.activations.setdefault(name, []).append(
            (entry.copy(), [e.copy() for e in exits], cutpoints)
        )


class _StatsView:
    """Read-only attribute view over the engine's canonical counters.

    Back-compat shim for the old ``_Stats`` dataclass: callers that did
    ``engine.stats.summaries_reused`` keep working; new code reads
    ``engine.metrics`` directly (see :mod:`repro.obs.metrics` for the
    schema)."""

    __slots__ = ("_metrics",)

    def __init__(self, metrics: Metrics):
        self._metrics = metrics

    @property
    def instructions(self) -> int:
        return self._metrics.counter("engine.instructions")

    @property
    def states(self) -> int:
        return self._metrics.counter("engine.states")

    @property
    def invariants(self) -> int:
        return self._metrics.counter("engine.invariants.synthesized")

    @property
    def summaries_reused(self) -> int:
        return self._metrics.counter("engine.summaries.reused")

    @property
    def procedures(self) -> int:
        return self._metrics.counter("engine.procedures.analyzed")


class ShapeEngine:
    """Drives the shape analysis over a (pre-sliced) program."""

    def __init__(
        self,
        program: Program,
        env: PredicateEnv | None = None,
        max_unroll: int = 2,
        state_budget: int = 20000,
        max_invariants_per_header: int = 8,
        max_back_arrivals: int = 40,
        mode: str = "strict",
        budget: Budget | None = None,
        tracer=None,
        metrics: Metrics | None = None,
        schedule: str = "wto",
        store=None,
        incremental: bool = True,
        fixpoint=None,
    ):
        program.validate()
        if mode not in ("strict", "degrade"):
            raise ValueError(f"unknown analysis mode {mode!r}")
        if schedule not in ("wto", "fifo"):
            raise ValueError(f"unknown worklist schedule {schedule!r}")
        self.program = program
        self.env = env if env is not None else PredicateEnv()
        self.max_unroll = max_unroll
        self.budget = budget if budget is not None else Budget(
            state_budget=state_budget
        )
        self.state_budget = self.budget.state_budget
        self.max_invariants_per_header = max_invariants_per_header
        self.max_back_arrivals = max_back_arrivals
        self.mode = mode
        #: structured record of every contained failure (degrade mode).
        self.diagnostics: list[Diagnostic] = []
        #: running total of containment events (diagnostics are
        #: deduplicated, this counter is not).
        self.contained_events = 0
        self._havoc_counter = 0
        #: worklist schedule: "wto" drives a priority queue over the
        #: weak topological order (inner loops stabilize before their
        #: exits are released); "fifo" is the naive order, kept as an
        #: escape hatch and as the differential-testing reference.
        self.schedule = schedule
        self.callgraph = CallGraph(program)
        self.cfgs = {name: CFG(proc) for name, proc in program.procedures.items()}
        #: per-procedure weak topological orders, computed on first use
        #: (sliced-away procedures never pay for theirs).
        self._wtos: dict[str, WeakTopologicalOrder] = {}
        self.liveness = {
            name: Liveness(proc) for name, proc in program.procedures.items()
        }
        self.summaries: dict[str, list[Summary]] = {
            name: [] for name in program.procedures
        }
        #: verified loop invariants, keyed by (procedure, header index);
        #: the paper's point that the analysis infers them from scratch
        #: makes them a first-class output.
        self.loop_invariants: dict[tuple[str, int], list[AbstractState]] = {}
        #: structured tracing (defaults to whatever instruments are
        #: *active* -- ``obs.activate`` inside ``ShapeAnalysis.run`` --
        #: so engine factories need not forward tracer/metrics keywords;
        #: outside an activated run the null tracer costs one ``enabled``
        #: check per instrumentation site) and the canonical registry.
        self.tracer = tracer if tracer is not None else obs.TRACER
        self.metrics = metrics if metrics is not None else (
            obs.METRICS if obs.METRICS.enabled else Metrics()
        )
        self.stats = _StatsView(self.metrics)
        #: optional durable predicate/summary store
        #: (:class:`~repro.store.SummaryStore`), consulted at the
        #: ``store`` phase boundary before synthesis and tabulation.
        #: The store is an *accelerator*: every consult/record call is
        #: exception-contained here, so a broken store degrades to
        #: misses plus ``store-invalid`` diagnostics, never to a
        #: different verdict or an analysis failure.
        self.store = store
        #: incremental re-analysis: when enabled (and a reuse medium is
        #: attached), each procedure's *whole* tabulated summary table
        #: is consulted once -- keyed on the procedure's callee-cone
        #: digest (:mod:`repro.ir.digest`) -- before any per-entry
        #: consult, and exported after a successful run
        #: (:meth:`export_fixpoints`).  ``incremental=False`` restores
        #: the from-scratch path bit-for-bit: no fixpoint object is
        #: read or written.  (Per-entry summary keys carry the cone
        #: digest either way -- that part is a soundness fix, not an
        #: accelerator, so it has no escape hatch.)
        self.incremental = incremental
        #: optional in-memory fixpoint tier
        #: (:class:`repro.store.fixpoint.FixpointTable`), checked before
        #: the durable store; serve workers keep one per benchmark so an
        #: edit-loop replay never touches disk.
        self.fixpoint = fixpoint
        self._fixpoint_consulted: set[str] = set()
        self._cone_digest_cache: "dict[str, str] | None" = None
        self._reach_rec: dict[str, set[int]] = {}

    def _wto(self, name: str) -> WeakTopologicalOrder:
        wto = self._wtos.get(name)
        if wto is None:
            wto = compute_wto(self.cfgs[name])
            self._wtos[name] = wto
        return wto

    # ------------------------------------------------------------------
    # Phase boundaries
    # ------------------------------------------------------------------
    def phase_boundary(self, phase: str, procedure: str | None = None) -> None:
        """Called at every internal phase boundary (one of
        :data:`PHASE_BOUNDARIES`) with the procedure under analysis.

        A no-op in production.  Subclasses may raise here --
        :class:`AnalysisFailure` to simulate a phase failing,
        :class:`BudgetExhausted` to simulate resource exhaustion -- and
        whatever they raise takes exactly the containment path a real
        failure of that phase would take.  This is the seam the
        crucible's :class:`~repro.crucible.faults.FaultPlan` injects
        through.
        """

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def analyze(self) -> list[AbstractState]:
        """Run the analysis from the entry procedure; returns its exit
        states.  Raises :class:`AnalysisFailure` when the analysis
        halts (the paper's failure report).  In degrade mode a failure
        that containment could not absorb lower down still ends the
        entry procedure, but is recorded as a recovered diagnostic and
        the partial results (summaries, loop invariants of everything
        analyzed so far) survive on the engine; only
        :class:`BudgetExhausted` always propagates."""
        self.budget.start()
        entry = AbstractState()
        for name in self.program.globals:
            entry.spatial.add(Raw(GlobalLoc(name)))
        try:
            return self.run_procedure(
                self.program.entry, entry, frozenset(), None, None
            )
        except AnalysisStuck as exc:
            failure = AnalysisFailure(
                f"abstract execution stuck: {exc}",
                code=EXECUTION_STUCK,
                procedure=self.program.entry,
            )
            if self.mode == "degrade":
                self._record_containment(
                    failure, detail="entry procedure abandoned"
                )
                return []
            raise failure from exc
        except BudgetExhausted:
            raise
        except AnalysisFailure as exc:
            if self.mode == "degrade":
                self._record_containment(
                    exc, detail="entry procedure abandoned"
                )
                return []
            raise

    def _record_containment(
        self, exc: AnalysisFailure, detail: str
    ) -> None:
        """Record a contained failure, deduplicated per (code, location)
        so a loop that keeps failing on every back-edge arrival yields
        one diagnostic, not forty."""
        self.contained_events += 1
        diagnostic = Diagnostic.from_exception(
            exc, recovered=True, detail=detail
        )
        for existing in self.diagnostics:
            if (
                existing.code == diagnostic.code
                and existing.procedure == diagnostic.procedure
                and existing.loop_header == diagnostic.loop_header
            ):
                existing.count += 1
                return
        self.diagnostics.append(diagnostic)

    # ------------------------------------------------------------------
    # Procedure dispatch
    # ------------------------------------------------------------------
    def run_procedure(
        self,
        name: str,
        entry: AbstractState,
        cutpoints: frozenset[HeapName],
        sampler: _Sampler | None,
        contracts: dict[str, list[Summary]] | None,
    ) -> list[AbstractState]:
        self.budget.enter_procedure(name)
        try:
            if not self.tracer.enabled:
                return self._run_procedure(
                    name, entry, cutpoints, sampler, contracts
                )
            with self.tracer.span(
                "procedure", procedure=name, sampled=sampler is not None
            ) as span:
                exits = self._run_procedure(
                    name, entry, cutpoints, sampler, contracts
                )
                span["exits"] = len(exits)
                return exits
        finally:
            self.budget.exit_procedure()

    def _run_procedure(
        self,
        name: str,
        entry: AbstractState,
        cutpoints: frozenset[HeapName],
        sampler: _Sampler | None,
        contracts: dict[str, list[Summary]] | None,
    ) -> list[AbstractState]:
        self.metrics.inc("engine.procedures.analyzed")
        # Canonicalize the entry: fold what the environment already
        # explains (cutpoints protected) so that entry matching against
        # summaries and contracts compares folded forms.
        self.phase_boundary("fold", name)
        fold_state(entry, self.env, protect=cutpoints, keep_registers=True)
        if contracts is not None and name in contracts:
            self.phase_boundary("entailment", name)
            for contract in contracts[name]:
                witness = subsumes(contract.entry, entry, env=self.env)
                if witness is not None:
                    return [transplant_state(e, witness) for e in contract.exits]
            raise AnalysisFailure(
                f"call into {name} does not satisfy any of its entry invariants",
                code=SUMMARY_FAILURE,
                procedure=name,
            )
        if sampler is not None and name in sampler.scc:
            # An activation beyond the steering window that recurses
            # anyway has no branch guarding its recursion: the sample
            # path cannot reach a base case.
            if sampler.depth > sampler.max_visits * len(sampler.scc) + 2:
                raise AnalysisFailure(
                    f"sample path through {name} does not terminate; "
                    f"cannot steer execution toward a base case",
                    code=SUMMARY_FAILURE,
                    procedure=name,
                )
            if sum(sampler.visits.values()) > 500:
                raise AnalysisFailure(
                    f"sample path through {name} explodes; too many "
                    f"activations before the quota window closes",
                    code=SUMMARY_FAILURE,
                    procedure=name,
                )
            sampler.record_entry(name, entry)
            sampler.depth += 1
            try:
                exits = self.interpret(
                    name, entry.copy(), cutpoints, sampler, contracts
                )
            finally:
                sampler.depth -= 1
            sampler.record_activation(name, entry, exits, cutpoints)
            return exits
        exits = self._scan_summaries(name, entry, cutpoints)
        if exits is not None:
            return exits
        # Durable-store consult sits between in-memory reuse and
        # (re-)analysis: a validated hit answers the call without
        # synthesis or tabulation.  The boundary is crossed even with
        # no store attached -- it is the fault-injection seam.
        self.phase_boundary("store", name)
        if (
            self.incremental
            and name not in self._fixpoint_consulted
            and (self.store is not None or self.fixpoint is not None)
        ):
            # Incremental replay: the first time a procedure is called,
            # try to install its entire cached summary table (keyed on
            # its callee-cone digest, so any structural edit anywhere
            # below it misses) and answer from the installed summaries.
            # Consulted at most once per procedure: a miss means the
            # cone changed, and re-asking cannot change that.
            self._fixpoint_consulted.add(name)
            if self._consult_fixpoint(name):
                exits = self._scan_summaries(name, entry, cutpoints)
                if exits is not None:
                    self.metrics.inc("incr.procedures.reused")
                    if self.tracer.enabled:
                        self.tracer.event("incr.replay", procedure=name)
                    return exits
            self.metrics.inc("incr.procedures.invalidated")
        if self.store is not None:
            exits = self._consult_store(name, entry, cutpoints)
            if exits is not None:
                return exits
        if self.callgraph.is_recursive(name):
            return self._analyze_recursive(name, entry, cutpoints, contracts)
        contained_before = self.contained_events
        exits = self.interpret(name, entry.copy(), cutpoints, None, contracts)
        if self.contained_events > contained_before:
            # The body was degraded: its exits under-represent the
            # procedure, so the summary must not be tabulated for reuse
            # (each later call re-analyzes and re-contains).
            return [e.copy() for e in exits]
        self.phase_boundary("tabulation", name)
        self.summaries[name].append(Summary(entry.copy(), exits, cutpoints))
        self._store_record(name, entry, exits, cutpoints)
        return [e.copy() for e in exits]

    def _scan_summaries(
        self,
        name: str,
        entry: AbstractState,
        cutpoints: frozenset[HeapName],
    ) -> "list[AbstractState] | None":
        """The in-memory summary-table scan: exits transplanted into the
        caller's name space when a tabulated summary is entailment-
        equivalent to *entry* (cutpoints mapping across), else None."""
        if not self.summaries[name]:
            return None
        self.phase_boundary("entailment", name)
        entry_sig = structural_signature(entry)
        live_key: "str | None | bool" = False  # False = not yet computed
        for summary in self.summaries[name]:
            if summary.entry_key is not None:
                # Replayed summary: exact canonical-key match only (see
                # Summary.entry_key).  The key is computed lazily, once.
                if live_key is False:
                    from repro.logic.canonical import (
                        UntranslatableWitness,
                        canonicalize,
                    )

                    try:
                        live_key = canonicalize(entry).key
                    except UntranslatableWitness:
                        live_key = None
                if live_key != summary.entry_key:
                    continue
            # Reuse needs *equivalence* (both directions), so the
            # structural signatures must be identical -- a mismatch
            # skips both queries.  The directions are short-circuited:
            # the old code issued the reverse query even when the
            # forward one had already failed, wasting a full entailment
            # search (and a cache slot) per incompatible summary.
            if structural_signature(summary.entry) != entry_sig:
                continue
            into = subsumes(summary.entry, entry, env=self.env)
            if into is None:
                continue
            back = subsumes(entry, summary.entry, env=self.env)
            if back is None:
                continue
            mapped_cuts = frozenset(
                into.binding.get(c, c) for c in summary.cutpoints
            )
            if mapped_cuts == cutpoints:
                self.metrics.inc("engine.summaries.reused")
                return [transplant_state(e, into) for e in summary.exits]
        return None

    # ------------------------------------------------------------------
    # Incremental re-analysis: fixpoint replay (repro.store.fixpoint)
    # ------------------------------------------------------------------
    def _cone_digest(self, name: str) -> str:
        """The procedure's callee-cone digest over the program *this
        engine analyzes* (post-slicing), computed once per engine."""
        if self._cone_digest_cache is None:
            from repro.ir.digest import cone_digests

            self._cone_digest_cache = cone_digests(
                self.program, callgraph=self.callgraph
            )
        return self._cone_digest_cache[name]

    def _consult_fixpoint(self, name: str) -> bool:
        """Fetch the procedure's cached fixpoint bundle (in-memory tier
        first, then the durable store) and install its summaries into
        this engine's table.  Returns True when at least one summary was
        installed.  Exception-contained like every store path: anything
        unusable degrades to a from-scratch cone plus a
        ``store-invalid`` diagnostic, never a wrong verdict."""
        import time

        started = time.perf_counter()
        try:
            cone = self._cone_digest(name)
            subs, resolve = self._fixpoint_payloads(name, cone)
            if not subs:
                return False
            installed = self._install_fixpoint(name, cone, subs, resolve)
        except (BudgetExhausted, AnalysisStuck):
            raise
        except Exception as exc:  # containment: a replay bug is a miss
            self.metrics.inc("store.invalid")
            self._store_diagnostic(
                name, f"fixpoint consult raised {type(exc).__name__}: {exc}"
            )
            self._absorb_store_diagnostics()
            return False
        finally:
            self.metrics.observe(
                "incr.table.decode.seconds", time.perf_counter() - started
            )
        self._absorb_store_diagnostics()
        return installed > 0

    def _fixpoint_payloads(self, name: str, cone: str):
        """The raw bundle for (*name*, *cone*) plus the blob resolver of
        the tier it came from, or ``(None, None)``."""
        if self.fixpoint is not None:
            from repro.store.fixpoint import fixpoint_key
            from repro.store.store import STORE_SCHEMA

            key = fixpoint_key(
                name,
                cone,
                unroll=self.max_unroll,
                mode=self.mode,
                schema=STORE_SCHEMA,
            )
            payload = self.fixpoint.get(key)
            if (
                isinstance(payload, dict)
                and isinstance(payload.get("summaries"), list)
            ):
                self.metrics.inc("incr.fixpoint.hits")
                return list(payload["summaries"]), self.fixpoint.get_blob
        if self.store is not None:
            subs = self.store.consult_fixpoint(
                name,
                cone,
                self.metrics,
                unroll=self.max_unroll,
                mode=self.mode,
            )
            self._absorb_store_diagnostics()
            if subs:
                return subs, self.store.get_blob
        return None, None

    def _install_fixpoint(self, name, cone, subs, resolve) -> int:
        """Validate and install bundle sub-payloads one at a time (each
        in exactly the per-entry payload shape, so validation-on-read is
        shared check for check).  Validation interleaves with
        installation: a later sub-payload's new-definition set depends
        on what earlier ones installed.  The first failure abandons the
        *rest* of the bundle -- already-installed summaries passed every
        check and stay."""
        from repro.store.store import STORE_SCHEMA
        from repro.store.validate import InvalidStoreEntry, validate_summary_payload

        installed = 0
        for index, sub in enumerate(subs):
            try:
                if not isinstance(sub, dict):
                    raise InvalidStoreEntry("bundle entry is not an object")
                if (
                    sub.get("unroll") != self.max_unroll
                    or sub.get("mode") != self.mode
                ):
                    raise InvalidStoreEntry(
                        "bundle entry's engine configuration does not match"
                    )
                hit = validate_summary_payload(
                    sub,
                    callee=name,
                    entry_key=sub.get("entry", ""),
                    schema=STORE_SCHEMA,
                    env=self.env,
                    resolve_blob=resolve,
                    cone=cone,
                )
                if index == 0:
                    # Subsumption spot-check: decoding the entry key a
                    # second time mints an independent alpha-variant;
                    # the two decodes must subsume each other, or the
                    # decoded states do not mean what the key says.
                    from repro.store.codec import decode_state

                    twin, _ = decode_state(sub["entry"])
                    if (
                        subsumes(hit.entry, twin, env=self.env) is None
                        or subsumes(twin, hit.entry, env=self.env) is None
                    ):
                        raise InvalidStoreEntry(
                            "entry fails the subsumption spot-check"
                        )
            except (BudgetExhausted, AnalysisStuck):
                raise
            except Exception as exc:
                self.metrics.inc("store.invalid")
                if self.store is not None:
                    self.store.tally("invalid")
                self._store_diagnostic(
                    name,
                    f"fixpoint bundle entry {index} rejected "
                    f"({type(exc).__name__}: {exc}); remaining bundle "
                    "degrades to from-scratch analysis",
                )
                break
            for definition in hit.new_defs:
                self.env.add(definition)
                self.metrics.inc("store.preds.installed")
            self.env.ensure_counter(hit.counter)
            self.summaries[name].append(
                Summary(
                    hit.entry,
                    hit.exits,
                    hit.cutpoints,
                    entry_key=sub.get("entry"),
                )
            )
            installed += 1
            self.metrics.inc("incr.summaries.replayed")
        return installed

    def export_fixpoints(self) -> None:
        """Record every procedure's tabulated summary table as a
        fixpoint bundle -- to the durable store and to the in-memory
        tier, whichever is attached.  Called by the driver after a
        *successful* attempt only (a failed run's tables are partial by
        construction); degraded bodies were never tabulated, so they
        are never exported.  Exception-contained."""
        if not self.incremental:
            return
        if self.store is None and self.fixpoint is None:
            return
        for name, summaries in self.summaries.items():
            if not summaries:
                continue
            triples = [(s.entry, s.exits, s.cutpoints) for s in summaries]
            try:
                cone = self._cone_digest(name)
                if self.store is not None:
                    self.store.record_fixpoint(
                        name,
                        cone,
                        triples,
                        self.env,
                        self.metrics,
                        unroll=self.max_unroll,
                        mode=self.mode,
                    )
                if self.fixpoint is not None:
                    self._export_to_table(name, cone, triples)
            except (BudgetExhausted, AnalysisStuck):
                raise
            except Exception as exc:  # containment: a lost export
                self.metrics.inc("store.io_errors")
                self._store_diagnostic(
                    name,
                    f"fixpoint record raised {type(exc).__name__}: {exc}",
                )
        self._absorb_store_diagnostics()

    def _export_to_table(self, name, cone, triples) -> None:
        from repro.store.fixpoint import encode_fixpoint, fixpoint_key
        from repro.store.store import STORE_SCHEMA

        payload, blobs = encode_fixpoint(
            name,
            cone,
            triples,
            self.env,
            unroll=self.max_unroll,
            mode=self.mode,
            schema=STORE_SCHEMA,
        )
        if payload is None:
            return
        key = fixpoint_key(
            name,
            cone,
            unroll=self.max_unroll,
            mode=self.mode,
            schema=STORE_SCHEMA,
        )
        self.fixpoint.put(key, payload, blobs)

    # ------------------------------------------------------------------
    # Durable store (repro.store): consult / record / diagnostics
    # ------------------------------------------------------------------
    def _consult_store(
        self,
        name: str,
        entry: AbstractState,
        cutpoints: frozenset[HeapName],
    ) -> "list[AbstractState] | None":
        """Look *entry* up in the durable store; exit states transplanted
        into the caller's name space on a validated hit, else None.

        The store's own validation (checksum, schema, decode, canonical
        re-keying, predicate self-derivation) has already run inside
        ``consult``; this method adds the *summary re-application
        check*: the decoded entry must be entailment-equivalent to the
        live entry and the cutpoints must map across, via the very same
        ``subsumes`` machinery in-memory reuse trusts.  Any failure --
        including an unexpected exception, which would be a store bug --
        degrades to a miss with a ``store-invalid`` diagnostic.
        """
        store = self.store
        try:
            hit = store.consult(
                name,
                entry,
                cutpoints,
                self.env,
                self.metrics,
                unroll=self.max_unroll,
                mode=self.mode,
                cone=self._cone_digest(name),
            )
        except (BudgetExhausted, AnalysisStuck):
            raise
        except Exception as exc:  # containment: a store bug is a miss
            store.tally("invalid")
            self.metrics.inc("store.invalid")
            self._store_diagnostic(
                name, f"store consult raised {type(exc).__name__}: {exc}"
            )
            self._absorb_store_diagnostics()
            return None
        self._absorb_store_diagnostics()
        if hit is None:
            return None
        self.phase_boundary("entailment", name)
        into = back = None
        if structural_signature(hit.entry) == structural_signature(entry):
            into = subsumes(hit.entry, entry, env=self.env)
            if into is not None:
                back = subsumes(entry, hit.entry, env=self.env)
        if into is None or back is None:
            store.tally("invalid")
            store.tally("misses")
            self.metrics.inc("store.invalid")
            self.metrics.inc("store.misses")
            self._store_diagnostic(
                name, "summary re-application check failed (entry not "
                "entailment-equivalent to the stored entry)"
            )
            return None
        mapped_cuts = frozenset(
            into.binding.get(c, c) for c in hit.cutpoints
        )
        if mapped_cuts != cutpoints:
            store.tally("invalid")
            store.tally("misses")
            self.metrics.inc("store.invalid")
            self.metrics.inc("store.misses")
            self._store_diagnostic(
                name, "stored cutpoints do not map onto the call's cutpoints"
            )
            return None
        # Commit: install the (already self-derivation-validated)
        # predicate definitions the exits mention, then tabulate the
        # decoded summary so later calls reuse it in memory.
        for definition in hit.new_defs:
            self.env.add(definition)
            self.metrics.inc("store.preds.installed")
        self.env.ensure_counter(hit.counter)
        self.summaries[name].append(
            Summary(hit.entry, hit.exits, hit.cutpoints)
        )
        store.tally("hits")
        self.metrics.inc("store.hits")
        if self.tracer.enabled:
            self.tracer.event(
                "store.hit", procedure=name, exits=len(hit.exits),
                preds=len(hit.new_defs),
            )
        return [transplant_state(e, into) for e in hit.exits]

    def _store_record(
        self,
        name: str,
        entry: AbstractState,
        exits: "list[AbstractState]",
        cutpoints: frozenset[HeapName],
    ) -> None:
        """Record a freshly tabulated summary in the durable store
        (no-op without one); write failures are contained."""
        if self.store is None:
            return
        try:
            # Keyed on unroll + mode so a store-on run's retry
            # trajectory matches store-off exactly: summaries recorded
            # by an escalated attempt are invisible to base attempts.
            self.store.record(
                name,
                entry,
                exits,
                cutpoints,
                self.env,
                self.metrics,
                unroll=self.max_unroll,
                mode=self.mode,
                cone=self._cone_digest(name),
            )
        except (BudgetExhausted, AnalysisStuck):
            raise
        except Exception as exc:  # containment: a store bug loses a write
            self.metrics.inc("store.io_errors")
            self._store_diagnostic(
                name, f"store record raised {type(exc).__name__}: {exc}"
            )
        self._absorb_store_diagnostics()

    def _store_diagnostic(self, procedure: "str | None", message: str) -> None:
        """Append one deduplicated ``store-invalid`` diagnostic."""
        diagnostic = Diagnostic(
            code=STORE_INVALID,
            message=message,
            phase="store",
            procedure=procedure,
            severity=SEVERITY_WARNING,
            recovered=True,
        )
        for existing in self.diagnostics:
            if (
                existing.code == diagnostic.code
                and existing.procedure == diagnostic.procedure
            ):
                existing.count += 1
                return
        self.diagnostics.append(diagnostic)

    def _absorb_store_diagnostics(self) -> None:
        """Drain the store's pending diagnostics into this engine's
        record (deduplicated per procedure like containment events)."""
        if self.store is None:
            return
        for diagnostic in self.store.take_diagnostics():
            for existing in self.diagnostics:
                if (
                    existing.code == diagnostic.code
                    and existing.procedure == diagnostic.procedure
                ):
                    existing.count += diagnostic.count
                    break
            else:
                self.diagnostics.append(diagnostic)

    # ------------------------------------------------------------------
    # Recursive procedures (§5.2.1)
    # ------------------------------------------------------------------
    def _analyze_recursive(
        self,
        name: str,
        entry: AbstractState,
        cutpoints: frozenset[HeapName],
        outer_contracts: dict[str, list[Summary]] | None,
    ) -> list[AbstractState]:
        if not self.tracer.enabled:
            return self._analyze_recursive_traced(
                name, entry, cutpoints, outer_contracts, None
            )
        with self.tracer.span(
            "recursion.synthesize", procedure=name
        ) as span:
            return self._analyze_recursive_traced(
                name, entry, cutpoints, outer_contracts, span
            )

    def _analyze_recursive_traced(
        self,
        name: str,
        entry: AbstractState,
        cutpoints: frozenset[HeapName],
        outer_contracts: dict[str, list[Summary]] | None,
        span,
    ) -> list[AbstractState]:
        self.metrics.inc("engine.recursion.sccs")
        scc = self.callgraph.scc_of(name)
        if span is not None:
            span["scc"] = sorted(scc)
        sampler = _Sampler(scc=scc, max_visits=self.max_unroll)
        sampler.record_entry(name, entry)
        sampler.depth = 1
        outer_exits = self.interpret(
            name, entry.copy(), cutpoints, sampler, outer_contracts
        )
        sampler.depth = 0
        sampler.record_activation(name, entry, outer_exits, cutpoints)

        contracts: dict[str, list[Summary]] = dict(outer_contracts or {})
        visited = [p for p in scc if p in sampler.latest_entry]
        for p in visited:
            contracts[p] = self._build_contracts(p, sampler, cutpoints)
        # Verification: re-execute each body from each entry invariant
        # with recursive calls answered by the hypothesized contracts.
        # An exit the hypothesis missed (e.g. a base case the sample
        # path only saw under a different entry shape) *widens* the
        # contract, and verification restarts -- a bounded Kleene
        # iteration on the exit sets; failure to stabilize means the
        # synthesized invariants do not derive themselves.
        verify_rounds = 0
        for _round in range(8):
            verify_rounds += 1
            self.metrics.inc("engine.recursion.verify_rounds")
            stable = True
            for p in visited:
                for contract in contracts[p]:
                    verify_exits = self.interpret(
                        p, contract.entry.copy(), contract.cutpoints,
                        None, contracts,
                    )
                    for exit_state in verify_exits:
                        self.budget.check_deadline("tabulation")
                        if not any_subsumes(
                            contract.exits, exit_state, env=self.env
                        ):
                            contract.exits.append(exit_state)
                            stable = False
            if stable:
                break
        else:
            if span is not None:
                span["verified"] = False
                span["verify_rounds"] = verify_rounds
            raise AnalysisFailure(
                f"exit states of {name}'s recursion do not stabilize; "
                f"the synthesized exit invariants do not derive themselves",
                code=SUMMARY_FAILURE,
                procedure=name,
            )
        self.phase_boundary("tabulation", name)
        if span is not None:
            span["verified"] = True
            span["verify_rounds"] = verify_rounds
            span["contracts"] = sum(len(contracts[p]) for p in visited)
        for p in visited:
            self.summaries[p].extend(contracts[p])
            self.metrics.inc("engine.invariants.synthesized", len(contracts[p]))
            for contract in contracts[p]:
                self._store_record(
                    p, contract.entry, contract.exits, contract.cutpoints
                )
        for contract in contracts[name]:
            witness = subsumes(contract.entry, entry, env=self.env)
            if witness is not None:
                return [transplant_state(e, witness) for e in contract.exits]
        raise AnalysisFailure(
            f"original entry of {name} does not satisfy its invariant",
            code=SUMMARY_FAILURE,
            procedure=name,
        )

    def _build_contracts(
        self,
        p: str,
        sampler: _Sampler,
        cutpoints: frozenset[HeapName],
    ) -> list[Summary]:
        """Group the sampled activations of *p* by entry shape and
        synthesize one (entry invariant, exit invariants) contract per
        group.  Each activation's exits are re-based into its group's
        name space through the inverted subsumption witness (entry and
        exits of one activation share their names)."""
        params = set(self.program.proc(p).params)
        keep_live = {RET_REGISTER} | params
        groups: list[tuple[AbstractState, list[AbstractState], frozenset]] = []
        for seen_entry, seen_exits, act_cuts in reversed(
            sampler.activations.get(p, [])
        ):
            folded_entry = fold_state(
                seen_entry.copy(), self.env, protect=act_cuts,
                keep_registers=True,
            )
            witness = None
            group_exits = None
            for group_entry, exits_acc, _cuts in groups:
                witness = subsumes(group_entry, folded_entry, env=self.env)
                if witness is not None:
                    group_exits = exits_acc
                    break
            if witness is None:
                self.phase_boundary("synthesis", p)
                if self.tracer.enabled:
                    with self.tracer.span(
                        "contract.synthesize", procedure=p, group=len(groups)
                    ):
                        group_entry = normalize_state(
                            seen_entry.copy(), self.env, live=params,
                            hint="R", protect=act_cuts,
                        )
                else:
                    group_entry = normalize_state(
                        seen_entry.copy(), self.env, live=params, hint="R",
                        protect=act_cuts,
                    )
                if len(groups) >= 4:
                    raise AnalysisFailure(
                        f"entry states of {p} fall into too many shapes; "
                        f"recursion synthesis cannot generalize them",
                        code=SUMMARY_FAILURE,
                        procedure=p,
                    )
                witness = subsumes(group_entry, folded_entry, env=self.env)
                if witness is None:
                    raise AnalysisFailure(
                        f"entry state of {p} is not derivable from its "
                        f"synthesized entry invariant",
                        code=SUMMARY_FAILURE,
                        procedure=p,
                    )
                group_exits = []
                groups.append((group_entry, group_exits, act_cuts))
            inverse = Mapping()
            for inv_name, value in witness.binding.items():
                if isinstance(value, (NullVal, OffsetVal)):
                    continue
                inverse.binding.setdefault(value, inv_name)
            for exit_state in seen_exits:
                normalized = normalize_state(
                    exit_state.copy(), self.env, live=keep_live, hint="R",
                    protect=act_cuts,
                )
                candidate = transplant_state(normalized, inverse)
                if not any_subsumes(group_exits, candidate, env=self.env):
                    group_exits.append(candidate)
        return [
            Summary(entry, exits or [AbstractState()], cuts)
            for entry, exits, cuts in groups
        ]

    # ------------------------------------------------------------------
    # Intraprocedural worklist
    # ------------------------------------------------------------------
    def interpret(
        self,
        name: str,
        entry: AbstractState,
        cutpoints: frozenset[HeapName],
        sampler: _Sampler | None,
        contracts: dict[str, Summary] | None,
    ) -> list[AbstractState]:
        if not self.tracer.enabled:
            return self._interpret(name, entry, cutpoints, sampler, contracts)
        with self.tracer.span("fixpoint", procedure=name) as span:
            states_before = self.metrics.counter("engine.states")
            exits = self._interpret(name, entry, cutpoints, sampler, contracts)
            span["states"] = self.metrics.counter("engine.states") - states_before
            span["exits"] = len(exits)
            return exits

    def _interpret(
        self,
        name: str,
        entry: AbstractState,
        cutpoints: frozenset[HeapName],
        sampler: _Sampler | None,
        contracts: dict[str, Summary] | None,
    ) -> list[AbstractState]:
        proc = self.program.proc(name)
        cfg = self.cfgs[name]
        liveness = self.liveness[name]
        exits: list[AbstractState] = []
        header_invariants: dict[int, list[AbstractState]] = {}
        back_arrivals: dict[int, int] = {}
        processed = 0

        # Under the WTO schedule the worklist is a priority queue over
        # (rank, arrival): rank is the block's position in the weak
        # topological order, so all of an inner loop's work drains
        # before any block after the loop is popped -- a back-edge
        # re-push of the (lower-ranked) header outranks every pending
        # loop-exit block.  Ranks are unique per block, and the
        # sequence tiebreak pops same-rank entries oldest-first (a
        # recency tiebreak measured 2.4x slower on entail-stress:
        # popping the newest header state first starves the older
        # arrivals the invariant-convergence check generalizes from,
        # so loops stopped converging by subsumption), so heap
        # comparisons never reach the states and the order is fully
        # deterministic.
        use_wto = self.schedule == "wto"
        rank_of = self._wto(name).rank_of if use_wto else None
        heap: list[tuple[int, int, int, AbstractState]] = []
        worklist: deque[tuple[int, AbstractState]] = deque()
        seq = 0

        def push(index: int, state: AbstractState) -> None:
            nonlocal seq
            self.metrics.inc("engine.worklist.pushes")
            if use_wto:
                seq += 1
                heapq.heappush(heap, (rank_of(index), seq, index, state))
            else:
                worklist.append((index, state))

        def follow_edge(src: int, dst: int, state: AbstractState) -> None:
            if cfg.is_back_edge(src, dst):
                self._back_edge(
                    name,
                    dst,
                    state,
                    header_invariants,
                    back_arrivals,
                    cutpoints,
                    liveness,
                    push,
                )
            else:
                push(dst, state)

        if not proc.instrs:
            return [entry]
        # Containment applies only to the plain forward analysis: while
        # a sample path is being steered or a synthesized contract is
        # being verified, a failure must surface to the synthesis
        # protocol (which the call-site containment then absorbs).
        containing = (
            self.mode == "degrade" and sampler is None and contracts is None
        )
        push(0, entry)
        seen_blocks: set[int] = set()
        while heap if use_wto else worklist:
            processed += 1
            self.metrics.inc("engine.states")
            self.budget.charge_state(name)
            if processed > self.state_budget:
                raise BudgetExhausted(
                    f"state budget exceeded while analyzing {name}",
                    resource="states",
                    procedure=name,
                )
            if use_wto:
                _, _, index, state = heapq.heappop(heap)
            else:
                index, state = worklist.popleft()
            if index in seen_blocks:
                self.metrics.inc("engine.worklist.revisits")
            else:
                seen_blocks.add(index)
            instr = proc.instrs[index]
            self.metrics.inc("engine.instructions")
            try:
                if isinstance(instr, Nop):
                    follow_edge(index, index + 1, state)
                elif isinstance(instr, Goto):
                    follow_edge(index, proc.labels[instr.target], state)
                elif isinstance(instr, Return):
                    exits.append(
                        self._make_exit(state, instr, cutpoints, proc.params)
                    )
                elif isinstance(instr, Branch):
                    self._branch(
                        name, index, instr, state, sampler, follow_edge, proc
                    )
                elif isinstance(instr, Call):
                    live_after = liveness.live_after(index)
                    for successor in self._call(
                        name, state, instr, sampler, contracts, live_after
                    ):
                        follow_edge(index, index + 1, successor)
                else:
                    if isinstance(instr, (Load, Store)):
                        self.phase_boundary("rearrange", name)
                    for successor in apply_instruction(state, instr, self.env):
                        follow_edge(index, index + 1, successor)
            except BudgetExhausted:
                raise
            except AnalysisFailure as exc:
                if not containing:
                    raise
                if exc.procedure is None:
                    exc.procedure = name
                self._record_containment(
                    exc, detail=f"state dropped at {name}:{index}"
                )
            except AnalysisStuck as exc:
                if not containing:
                    raise
                self._record_containment(
                    AnalysisFailure(
                        f"abstract execution stuck: {exc}",
                        code=EXECUTION_STUCK,
                        procedure=name,
                    ),
                    detail=f"state dropped at {name}:{index}",
                )
        # Predicates synthesized on later paths can fold earlier exits,
        # and exits subsumed by more general siblings are dropped.
        if exits:
            self.phase_boundary("fold", name)
        folded = [
            fold_state(e, self.env, protect=cutpoints, keep_registers=True)
            for e in exits
        ]
        for state in folded:
            # Folding may only now have produced the instance whose base
            # case covers the nullness fact.
            self._drop_covered_nullness(state)
        # Bucketed dedup: exact alpha-variants drop on their canonical
        # key without any entailment query, and the remaining pairwise
        # subsumption only runs between states whose structural
        # signatures are compatible.  On pathological states the dedup
        # can still dwarf the worklist phase, so the deadline is polled
        # per state here and per entailment query inside the set.
        kept = StateSet(
            self.env,
            deadline_poll=lambda: self.budget.check_deadline("fold"),
        )
        for state in folded:
            self.budget.check_deadline("fold")
            kept.insert_maximal(state)
        return kept.states()

    # ------------------------------------------------------------------
    def _make_exit(
        self,
        state: AbstractState,
        instr: Return,
        cutpoints: frozenset[HeapName],
        params: tuple[Register, ...],
    ) -> AbstractState:
        """Exit states keep the formal parameters: they anchor the exit
        heap to the entry names, and constraints discovered on them
        (e.g. a base case that required the argument to be null) are
        unified back into the caller at the combine step."""
        value = (
            state.eval_operand(instr.value) if instr.value is not None else None
        )
        keep = {RET_REGISTER} | set(params)
        rho = {r: v for r, v in state.rho.items() if r in keep}
        if value is not None:
            rho[RET_REGISTER] = state.resolve(value)
        state.rho = rho
        normalize_state(
            state, self.env, live=set(rho), hint="P", protect=cutpoints
        )
        self._drop_covered_nullness(state)
        return state

    @staticmethod
    def _drop_covered_nullness(state: AbstractState) -> None:
        """At procedure exits, drop ``x != null`` facts about roots of
        complete predicate instances: the instance's base case encodes
        the null possibility, and keeping the path fact would stop a
        base-case exit from collapsing into the general disjunct (the
        caller re-learns nullness from its own branches)."""
        for atom in state.pure.atoms():
            if atom.op != "ne":
                continue
            sides = [atom.lhs, atom.rhs]
            if not any(isinstance(side, NullVal) for side in sides):
                continue
            other = sides[0] if isinstance(sides[1], NullVal) else sides[1]
            if isinstance(other, (NullVal, Opaque, OffsetVal)):
                continue
            instance = state.spatial.instance_rooted_at(other)
            if instance is not None and not instance.truncs:
                state.pure.discard(atom)

    def _branch(
        self,
        name: str,
        index: int,
        instr: Branch,
        state: AbstractState,
        sampler: _Sampler | None,
        follow_edge,
        proc,
    ) -> None:
        taken_index = proc.labels[instr.target]
        fall_index = index + 1
        outcomes = []
        taken_state = filter_condition(state.copy(), instr.cond, take=True)
        if taken_state is not None:
            outcomes.append((taken_index, taken_state))
        fall_state = filter_condition(state, instr.cond, take=False)
        if fall_state is not None:
            outcomes.append((fall_index, fall_state))
        if sampler is not None and name in sampler.scc and len(outcomes) == 2:
            outcomes = [self._select_sample_branch(name, sampler, outcomes)]
        for target, outcome in outcomes:
            follow_edge(index, target, outcome)

    def _select_sample_branch(
        self,
        name: str,
        sampler: _Sampler,
        outcomes: list[tuple[int, AbstractState]],
    ) -> tuple[int, AbstractState]:
        """The paper's sample-path branch selection: head toward
        recursive calls until every SCC member has been entered twice,
        then away from them."""
        reach = self._reaches_recursion(name, sampler.scc)
        toward = [o for o in outcomes if o[0] in reach]
        away = [o for o in outcomes if o[0] not in reach]
        if sampler.head_toward_recursion():
            preferred = toward or away
        else:
            preferred = away or toward
        return preferred[0]

    def _reaches_recursion(self, name: str, scc: frozenset[str]) -> set[int]:
        cached = self._reach_rec.get(name)
        if cached is not None:
            return cached
        proc = self.program.proc(name)
        cfg = self.cfgs[name]
        seeds = {
            i
            for i, instr in enumerate(proc.instrs)
            if isinstance(instr, Call) and instr.func in scc
        }
        preds = cfg.preds
        reach = set(seeds)
        frontier = list(seeds)
        while frontier:
            node = frontier.pop()
            for p in preds[node]:
                if p not in reach:
                    reach.add(p)
                    frontier.append(p)
        self._reach_rec[name] = reach
        return reach

    # ------------------------------------------------------------------
    def _call(
        self,
        caller: str,
        state: AbstractState,
        instr: Call,
        sampler: _Sampler | None,
        contracts: dict[str, Summary] | None,
        live_after: set[Register] | None = None,
    ) -> list[AbstractState]:
        callee = self.program.proc(instr.func)
        arg_values = [state.eval_operand(a) for a in instr.args]
        entry_rho: dict[Register, SymVal] = {
            formal: state.resolve(actual)
            for formal, actual in zip(callee.params, arg_values)
        }
        if live_after is not None:
            # Dead caller registers must not manufacture cutpoints (a
            # cutpoint pins its location explicit inside the callee).
            state.rho = {
                r: v for r, v in state.rho.items() if r in live_after
            }
        split = extract_local_heap(state, arg_values, entry_rho)
        containing = (
            self.mode == "degrade" and sampler is None and contracts is None
        )
        contained_before = self.contained_events
        try:
            exits = self.run_procedure(
                instr.func, split.entry, split.cutpoints, sampler, contracts
            )
        except BudgetExhausted:
            raise
        except AnalysisFailure as exc:
            if not containing:
                raise
            self._record_containment(
                exc,
                detail=(
                    f"havoc summary substituted at call site in {caller}"
                ),
            )
            exits = [self._havoc_exit(split)]
        else:
            # A fully-contained callee can lose every exit path (all of
            # its states were dropped); a havoc summary keeps the
            # caller's path alive.  A *legitimately* empty exit set (no
            # feasible path) recorded no diagnostics and stays empty.
            if (
                containing
                and not exits
                and self.contained_events > contained_before
            ):
                exits = [self._havoc_exit(split)]
        results = []
        for exit_state in exits:
            merged = combine(state, split.frame, exit_state, instr.dst, RET_REGISTER)
            feasible = True
            for formal, actual in zip(callee.params, arg_values):
                exit_value = exit_state.rho.get(formal)
                if exit_value is None:
                    continue
                if not unify_values(merged, exit_value, merged.resolve(actual)):
                    feasible = False  # e.g. a null-entry exit for a non-null arg
                    break
            if feasible:
                results.append(merged)
        return results

    def _havoc_exit(self, split: SplitHeap) -> AbstractState:
        """A sound-but-imprecise stand-in for a failed callee: the
        entry local heap with every explicit cell's content forgotten
        (field targets become fresh opaque values) and an opaque return
        value.  Touching a havocked cell later gets the caller stuck,
        which degrade mode then contains in turn -- imprecision stays
        confined to what the failed callee could actually reach, while
        the frame (everything the callee was never given) is untouched."""
        havoc = split.entry.copy()
        for atom in list(havoc.spatial.points_to_atoms()):
            self._havoc_counter += 1
            havoc.spatial.remove(atom)
            havoc.spatial.add(
                PointsTo(
                    atom.src, atom.field, Opaque(f"havoc{self._havoc_counter}")
                )
            )
        self._havoc_counter += 1
        havoc.rho[RET_REGISTER] = Opaque(f"havoc{self._havoc_counter}")
        return havoc

    # ------------------------------------------------------------------
    # Loop protocol
    # ------------------------------------------------------------------
    def _back_edge(
        self,
        name: str,
        header: int,
        state: AbstractState,
        header_invariants: dict[int, list[AbstractState]],
        back_arrivals: dict[int, int],
        cutpoints: frozenset[HeapName],
        liveness: Liveness,
        push,
    ) -> None:
        live = liveness.live_before(header)
        state.rho = {r: v for r, v in state.rho.items() if r in live}
        arrivals = back_arrivals.get(header, 0) + 1
        back_arrivals[header] = arrivals
        self.metrics.inc("engine.loop.back_edges")
        invariants = header_invariants.setdefault(header, [])
        self.phase_boundary("fold", name)
        folded = fold_state(
            state.copy(), self.env, protect=cutpoints, keep_registers=True
        )
        if invariants:
            self.phase_boundary("entailment", name)
            if any_subsumes(invariants, folded, env=self.env, live=live):
                # converged: derivable from an invariant (WEAKEN) --
                # the hypothesis verified against this back-edge state.
                self.metrics.inc("engine.loop.converged")
                if self.tracer.enabled:
                    self.tracer.event(
                        "loop.converged",
                        procedure=name,
                        header=header,
                        arrivals=arrivals,
                    )
                return
        if arrivals < self.max_unroll:
            push(header, state)
            return
        if arrivals > self.max_back_arrivals:
            self.metrics.inc("engine.invariants.failed")
            raise AnalysisFailure(
                f"loop at {name}@{header} did not converge; the "
                f"synthesized invariant does not derive itself",
                code=INVARIANT_FAILURE,
                procedure=name,
                loop_header=header,
            )
        # The candidate cap bounds *live* invariant classes, not raw
        # arrival order.  With the lemma fallback active, subsumption
        # is wider than the purely structural matcher, and a general
        # invariant synthesized from this very arrival may supersede
        # enough older candidates to bring the header back under the
        # cap -- whether it does must not depend on which schedule
        # delivered the arrivals, so at the cap we synthesize one more
        # candidate and fail only if supersession cannot make room.
        # With lemmas disabled the pre-synthesis failure is preserved
        # bit-for-bit.
        at_cap = len(invariants) >= self.max_invariants_per_header
        if at_cap and not lemmas.ACTIVE.enabled:
            self.metrics.inc("engine.invariants.failed")
            raise AnalysisFailure(
                f"too many invariant candidates at {name}@{header}; "
                f"recursion synthesis failed to generalize the loop",
                code=INVARIANT_FAILURE,
                procedure=name,
                loop_header=header,
            )
        self.phase_boundary("synthesis", name)
        if self.tracer.enabled:
            with self.tracer.span(
                "loop.synthesize",
                procedure=name,
                header=header,
                arrivals=arrivals,
                unroll=self.max_unroll,
                prior_candidates=len(invariants),
            ) as span:
                invariant = normalize_state(
                    state.copy(), self.env, live=live, hint="P",
                    protect=cutpoints,
                )
                span["spatial_atoms"] = sum(1 for _ in invariant.spatial)
        else:
            invariant = normalize_state(
                state.copy(), self.env, live=live, hint="P", protect=cutpoints
            )
        # A new, more general invariant supersedes older candidates.
        kept = [
            old
            for old in invariants
            if subsumes(invariant, old, live=live, env=self.env) is None
        ]
        if at_cap and len(kept) + 1 > self.max_invariants_per_header:
            self.metrics.inc("engine.invariants.failed")
            raise AnalysisFailure(
                f"too many invariant candidates at {name}@{header}; "
                f"recursion synthesis failed to generalize the loop",
                code=INVARIANT_FAILURE,
                procedure=name,
                loop_header=header,
            )
        invariants[:] = kept
        invariants.append(invariant)
        self.loop_invariants.setdefault((name, header), []).append(
            invariant.copy()
        )
        self.metrics.inc("engine.invariants.synthesized")
        push(header, invariant.copy())


# ----------------------------------------------------------------------
# Summary transplantation
# ----------------------------------------------------------------------


def transplant_state(recorded: AbstractState, witness: Mapping) -> AbstractState:
    """Rename a recorded exit state into the caller's name space.

    *witness* maps the names of the recorded entry onto the caller's
    values; names created inside the callee (absent from the witness)
    are re-rooted at fresh variables so repeated reuse never collides.
    """
    binding = dict(witness.binding)
    fresh_roots: dict[HeapName, HeapName] = {}

    def map_name(namev: HeapName) -> SymVal:
        prefixes: list[HeapName] = [namev]
        node = namev
        while isinstance(node, FieldPath):
            node = node.base
            prefixes.append(node)
        for prefix in prefixes:  # longest first
            image = binding.get(prefix)
            if image is None:
                continue
            suffix = path_of(namev)[len(path_of(prefix)):]
            if isinstance(image, (NullVal, Opaque)):
                return image if not suffix else Opaque(f"lost:{namev}")
            if isinstance(image, OffsetVal):
                image = image.base
            result: HeapName = image
            for fieldname in suffix:
                result = FieldPath(result, fieldname)
            return result
        root = root_of(namev)
        if isinstance(root, GlobalLoc):
            return namev
        replacement = fresh_roots.get(root)
        if replacement is None:
            replacement = fresh_var()
            fresh_roots[root] = replacement
        result = replacement
        for fieldname in path_of(namev):
            result = FieldPath(result, fieldname)
        return result

    def map_value(value: SymVal) -> SymVal:
        if isinstance(value, (NullVal, Opaque)):
            return value
        if isinstance(value, OffsetVal):
            base = map_name(value.base)
            if isinstance(base, (NullVal, Opaque)):
                return Opaque(f"lost:{value}")
            return OffsetVal(base, value.delta)
        return map_name(value)

    result = AbstractState()
    result.rho = {r: map_value(v) for r, v in recorded.rho.items()}
    result.spatial = _map_spatial(recorded.spatial, map_value, map_name)
    result.pure = _map_pure(recorded.pure, map_value, map_name)
    return result


def _map_spatial(spatial: SpatialFormula, map_value, map_name) -> SpatialFormula:
    from repro.logic.assertions import PointsTo, PredInstance, Raw, Region

    out = SpatialFormula()
    for atom in spatial:
        if isinstance(atom, PointsTo):
            src = map_name(atom.src)
            if isinstance(src, (NullVal, Opaque)):
                continue
            out.add(PointsTo(src, atom.field, map_value(atom.target)))
        elif isinstance(atom, PredInstance):
            args = tuple(map_value(a) for a in atom.args)
            truncs = []
            for t in atom.truncs:
                image = map_name(t)
                if not isinstance(image, (NullVal, Opaque)):
                    truncs.append(image)
            out.add(PredInstance(atom.pred, args, tuple(truncs)))
        elif isinstance(atom, Raw):
            loc = map_name(atom.loc)
            if not isinstance(loc, (NullVal, Opaque)):
                out.add(Raw(loc, atom.written))
        elif isinstance(atom, Region):
            base = map_name(atom.base)
            if not isinstance(base, (NullVal, Opaque)):
                out.add(Region(base, atom.carved))
    return out


def _map_pure(pure: PureFormula, map_value, map_name) -> PureFormula:
    out = PureFormula()
    for offset_val, alias in pure.aliases().items():
        base = map_name(offset_val.base)
        image = map_name(alias)
        if not isinstance(base, (NullVal, Opaque)) and not isinstance(
            image, (NullVal, Opaque)
        ):
            out.record_alias(OffsetVal(base, offset_val.delta), image)
    for atom in pure.atoms():
        out.assume(atom.op, map_value(atom.lhs), map_value(atom.rhs))
    return out
