"""The full pipeline: pre-pass + interprocedural shape analysis.

``ShapeAnalysis(program).run()`` performs, in order and individually
timed (the breakdown Table 4 reports):

1. the Steensgaard-style pointer analysis (§5.1),
2. recursive-type identification + shape-relevance slicing (§5.1),
3. the interprocedural shape analysis with inductive recursion
   synthesis (§2-§4, §5.2) on the sliced program.

Failure semantics (the resilience layer on top of the paper's
halt-and-report, see :mod:`repro.analysis.resilience`):

* ``mode="strict"`` (default) -- the paper's semantics: the first
  synthesis/verification failure halts the analysis and is reported in
  ``result.failure`` / ``result.diagnostics``;
* ``mode="degrade"`` -- a failed run is first *retried* with an
  escalated unroll bound (``escalate_unroll``, the paper's "2
  suffices" knob raised to 3), and if that still fails the engine
  reruns with failure containment: a poisoned loop or procedure is
  confined to a havoc summary and the rest of the program is still
  analyzed, each contained failure recorded as a recovered
  diagnostic.

Either way ``run()`` never raises on analysis failure, and since the
resilience layer it also never lets an *unexpected* exception
(``RecursionError``, ``ModelError``, an engine bug) escape: those
become an ``internal-error`` diagnostic instead of crashing the
caller.  A wall-clock ``deadline_seconds`` bounds the whole run
(including retries) through cooperative checks in the engine worklist.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import obs, perf
from repro.ir.program import Program
from repro.logic import lemmas
from repro.logic.predicates import PredicateEnv
from repro.obs import Metrics, NULL_TRACER, Tracer, with_legacy_aliases
from repro.prepass.rectypes import recursive_types
from repro.prepass.slicing import slice_program
from repro.prepass.steensgaard import PointerAnalysis
from repro.analysis.interproc import AnalysisFailure, ShapeEngine
from repro.analysis.resilience import Budget, BudgetExhausted, Diagnostic
from repro.analysis.results import AnalysisResult

__all__ = ["ShapeAnalysis"]

#: Reusable no-op context manager for the unguarded side of
#: ``with tracer.span(..) if tracer.enabled else _NO_SPAN:`` sites.
_NO_SPAN = contextlib.nullcontext()


@dataclass
class ShapeAnalysis:
    """Configurable front door of the library."""

    program: Program
    name: str = "program"
    max_unroll: int = 2
    enable_slicing: bool = True
    state_budget: int = 20000
    #: ``"strict"`` (paper semantics: halt and report) or ``"degrade"``
    #: (retry with escalated unroll, then contain failures).
    mode: str = "strict"
    #: Fixpoint worklist schedule: ``"wto"`` (default) drives a
    #: priority worklist over each procedure's weak topological order,
    #: stabilizing inner loops before their exits; ``"fifo"`` is the
    #: naive order (``--no-wto``), kept so differential harnesses can
    #: cross-check the two (verdicts must agree; see
    #: tests/test_wto_schedule.py).
    schedule: str = "wto"
    #: Wall-clock deadline for the whole run in seconds (None = off).
    deadline_seconds: float | None = None
    #: Optional global state cap across all procedures and retries.
    max_states: int | None = None
    #: Procedure-activation depth guard (see :class:`Budget`).
    max_depth: int = 96
    #: Unroll bound for the retry attempt in degrade mode (None or a
    #: value <= max_unroll disables escalation).
    escalate_unroll: int | None = 3
    #: Injectable engine constructor -- lets tests and fault-injection
    #: harnesses swap the engine without monkeypatching.
    engine_factory: Callable[..., ShapeEngine] | None = None
    #: Write a hierarchical span trace (JSONL) of the run to this path.
    trace_path: "str | Path | None" = None
    #: Pre-built tracer (overrides ``trace_path``); useful when a batch
    #: harness wants to share a sink or stub the clock.
    tracer: "Tracer | None" = None
    #: Pre-built metrics registry; a fresh one is created per ``run()``
    #: otherwise.  Passing one in lets callers aggregate across runs.
    metrics: "Metrics | None" = None
    #: Memoize entailment verdicts on canonical state keys for the
    #: duration of the run (``--no-cache`` turns this off; verdicts are
    #: identical either way, see tests/test_perf_properties.py).
    enable_cache: bool = True
    #: LRU capacity of the per-run entailment cache.
    cache_size: int = 4096
    #: Pre-built entailment cache (overrides ``enable_cache`` /
    #: ``cache_size``); cache keys are fully structural, so a cache
    #: passed across runs carries verdicts over -- the bench harness
    #: uses this to measure warm-cache throughput.
    cache: "perf.EntailmentCache | None" = None
    #: Pre-built unfold memo / fold identity memo (override the
    #: per-run ones).  Like ``cache``, their keys are canonical forms
    #: plus the structural ``PredicateEnv.cache_token()``, so a memo
    #: handed to several runs legitimately replays across them -- the
    #: serve worker keeps one of each warm across jobs.  Stored states
    #: are replayed through renaming tables, never shared by identity.
    unfold_cache: "perf.EntailmentCache | None" = None
    fold_cache: "perf.IdentityMemo | None" = None
    #: Optional durable predicate/summary store
    #: (:class:`repro.store.SummaryStore`), shared across runs and --
    #: through its on-disk form -- across processes and restarts.
    #: Consulted at the engine's ``store`` phase boundary; every entry
    #: is validated before use, so verdicts are identical with and
    #: without one (the crucible differential gate checks exactly this).
    store: "object | None" = None
    #: Lemma-synthesis fallback in entailment (``--no-lemmas`` turns it
    #: off, restoring the purely structural matcher bit-for-bit; see
    #: :mod:`repro.logic.lemmas` and DESIGN.md §11).  Lemmas may only
    #: *add* passes, never flip a verdict -- the bench harness and the
    #: crucible differential gate both check exactly this.
    enable_lemmas: bool = True
    #: Pre-built lemma cache (:class:`repro.perf.cache.LemmaCache`);
    #: pair keys are fully structural, so a cache passed across runs
    #: carries verified/refuted lemmas over.
    lemma_cache: "perf.LemmaCache | None" = None
    #: Incremental re-analysis (``--no-incremental`` turns it off,
    #: restoring the from-scratch path bit-for-bit).  When a store or
    #: fixpoint table is attached, each procedure's whole tabulated
    #: summary table is replayed from its cone-digest-keyed fixpoint
    #: bundle when nothing in its callee cone changed, and exported
    #: after every successful run.  Verdicts are identical either way
    #: (the incr-smoke differential gate checks exactly this).
    enable_incremental: bool = True
    #: Pre-built in-memory fixpoint tier
    #: (:class:`repro.store.fixpoint.FixpointTable`), checked before
    #: the durable store; a serve worker keeps one per benchmark so
    #: edit-loop replays never touch disk.
    fixpoint_table: "object | None" = None

    def run(self) -> AnalysisResult:
        """Run the whole pipeline; never raises on analysis failure --
        the paper's halt-and-report becomes ``result.failure`` plus a
        structured ``result.diagnostics`` list."""
        tracer = self.tracer
        owns_tracer = False
        if tracer is None:
            if self.trace_path is not None:
                tracer = Tracer.to_path(self.trace_path)
                owns_tracer = True
            else:
                tracer = NULL_TRACER
        metrics = self.metrics if self.metrics is not None else Metrics()
        cache = self.cache
        if cache is None:
            cache = (
                perf.EntailmentCache(self.cache_size)
                if self.enable_cache
                else perf.NULL_CACHE
            )
        # The unfold/fold memos default to per-run instances (they
        # hold state objects, so sharing is opt-in via the
        # ``unfold_cache`` / ``fold_cache`` fields rather than riding
        # along with ``cache=``); ``--no-cache`` disables them
        # together with the entailment cache.
        unfold_cache = self.unfold_cache
        fold_cache = self.fold_cache
        if unfold_cache is None:
            unfold_cache = (
                perf.EntailmentCache(self.cache_size)
                if self.enable_cache
                else perf.NULL_CACHE
            )
        if fold_cache is None:
            fold_cache = (
                perf.IdentityMemo(self.cache_size)
                if self.enable_cache
                else perf.NULL_CACHE
            )
        if self.enable_lemmas:
            lemma_engine = lemmas.LemmaEngine(
                cache=self.lemma_cache, store=self.store
            )
        else:
            lemma_engine = lemmas.NULL_ENGINE
        try:
            with obs.activate(tracer, metrics), perf.activate_cache(
                cache, unfold=unfold_cache, fold=fold_cache
            ), lemmas.activate_lemmas(lemma_engine):
                return self._run(tracer, metrics)
        finally:
            if owns_tracer:
                tracer.close()

    def _run(self, tracer, metrics: Metrics) -> AnalysisResult:
        self.program.validate()
        budget = Budget(
            deadline_seconds=self.deadline_seconds,
            state_budget=self.state_budget,
            max_states=self.max_states,
            max_depth=self.max_depth,
        )
        budget.start()

        root = tracer.span(
            "analysis", benchmark=self.name, mode=self.mode
        ) if tracer.enabled else None
        if root is not None:
            root.__enter__()

        with tracer.span("phase.pointer") if tracer.enabled else _NO_SPAN:
            start = time.perf_counter()
            pointers = PointerAnalysis(self.program)
            pointer_seconds = time.perf_counter() - start

        with tracer.span("phase.slicing") if tracer.enabled else _NO_SPAN:
            start = time.perf_counter()
            kept = pruned = 0
            if self.enable_slicing:
                seeds = recursive_types(self.program, pointers)
                sliced = slice_program(self.program, pointers, seeds)
                target = sliced.program
                kept, pruned = sliced.kept, sliced.pruned
            else:
                target = self.program
            slicing_seconds = time.perf_counter() - start

        plans = self._plans()
        make_engine = self.engine_factory or ShapeEngine
        diagnostics: list[Diagnostic] = []
        failure: str | None = None
        exit_states = []
        engine = None
        attempts = 0
        start = time.perf_counter()
        shape_span = tracer.span("phase.shape") if tracer.enabled else _NO_SPAN
        with shape_span:
            for attempt, (unroll, engine_mode) in enumerate(plans, 1):
                attempts = attempt
                env = PredicateEnv()
                # The engine picks up the activated obs.TRACER/obs.METRICS
                # as defaults, so custom engine factories need not accept
                # (or forward) tracer/metrics keywords.  The schedule
                # keyword is only forwarded when overridden, so factories
                # with closed signatures keep working under the default.
                extra = {} if self.schedule == "wto" else {
                    "schedule": self.schedule
                }
                # Like ``schedule``, the store keyword is only forwarded
                # when one is attached, so closed-signature factories
                # keep working in the common store-less case.  Same for
                # the incremental knobs: only forwarded off-default.
                if self.store is not None:
                    extra["store"] = self.store
                if not self.enable_incremental:
                    extra["incremental"] = False
                if self.fixpoint_table is not None:
                    extra["fixpoint"] = self.fixpoint_table
                engine = make_engine(
                    target,
                    env,
                    max_unroll=unroll,
                    state_budget=self.state_budget,
                    mode=engine_mode,
                    budget=budget,
                    **extra,
                )
                attempt_span = tracer.span(
                    "attempt", number=attempt, unroll=unroll, mode=engine_mode
                ) if tracer.enabled else _NO_SPAN
                fatal: BaseException | None = None
                with attempt_span:
                    try:
                        exit_states = engine.analyze()
                    except AnalysisFailure as exc:
                        fatal = exc
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        # An engine bug must not crash the caller: classify it
                        # as internal-error and report like any other failure.
                        fatal = exc
                    if tracer.enabled:
                        attempt_span["failed"] = fatal is not None
                if fatal is None:
                    failure = None
                    # Export the fixpoint tables of the *successful*
                    # attempt only: a failed attempt's tables are
                    # partial by construction.  The engine method is
                    # exception-contained; the getattr guard keeps
                    # custom engine factories with plain engines alive.
                    if self.enable_incremental:
                        export = getattr(engine, "export_fixpoints", None)
                        if export is not None:
                            export()
                    break
                # Budget exhaustion ends the run: retrying against the same
                # exhausted budget cannot succeed.
                if attempt == len(plans) or isinstance(fatal, BudgetExhausted):
                    diagnostic = Diagnostic.from_exception(fatal)
                    diagnostics.append(diagnostic)
                    # the diagnostic message carries the exception type for
                    # internal errors ("RecursionError: ...")
                    failure = diagnostic.message
                    exit_states = []
                    break
                next_unroll, next_mode = plans[attempt]
                diagnostics.append(
                    Diagnostic.from_exception(
                        fatal,
                        recovered=True,
                        detail=(
                            f"retrying with unroll={next_unroll}"
                            if next_mode == "strict"
                            else "degrading: containing failures"
                        ),
                    )
                )
        shape_seconds = time.perf_counter() - start
        assert engine is not None
        diagnostics.extend(engine.diagnostics)

        metrics.gauge("phase.pointer.seconds", pointer_seconds)
        metrics.gauge("phase.slicing.seconds", slicing_seconds)
        metrics.gauge("phase.shape.seconds", shape_seconds)
        # The gauges are this run's values; the histograms accumulate
        # the distribution when one registry outlives many runs (serve
        # workers, batch aggregation).
        metrics.observe("phase.pointer.seconds.dist", pointer_seconds)
        metrics.observe("phase.slicing.seconds.dist", slicing_seconds)
        metrics.observe("phase.shape.seconds.dist", shape_seconds)
        metrics.gauge("analysis.attempts", attempts)
        if root is not None:
            root["failed"] = failure is not None
            root["attempts"] = attempts
            root.__exit__(None, None, None)

        return AnalysisResult(
            benchmark=self.name,
            instruction_count=self.program.instruction_count(),
            pointer_seconds=pointer_seconds,
            slicing_seconds=slicing_seconds,
            shape_seconds=shape_seconds,
            env=engine.env,
            exit_states=exit_states,
            kept_instructions=kept,
            pruned_instructions=pruned,
            failure=failure,
            mode=self.mode,
            diagnostics=diagnostics,
            attempts=attempts,
            budget_stats=budget.snapshot(),
            loop_invariants=dict(engine.loop_invariants),
            summaries={
                name: [(s.entry, list(s.exits)) for s in summaries]
                for name, summaries in engine.summaries.items()
                if summaries
            },
            stats=with_legacy_aliases(metrics.to_dict()),
        )

    def _plans(self) -> list[tuple[int, str]]:
        """The attempt ladder: (unroll bound, engine mode) per attempt."""
        if self.mode == "strict":
            return [(self.max_unroll, "strict")]
        if self.mode != "degrade":
            raise ValueError(f"unknown analysis mode {self.mode!r}")
        plans = [(self.max_unroll, "strict")]
        if self.escalate_unroll is not None and (
            self.escalate_unroll > self.max_unroll
        ):
            plans.append((self.escalate_unroll, "strict"))
        plans.append((self.max_unroll, "degrade"))
        return plans
