"""The full pipeline: pre-pass + interprocedural shape analysis.

``ShapeAnalysis(program).run()`` performs, in order and individually
timed (the breakdown Table 4 reports):

1. the Steensgaard-style pointer analysis (§5.1),
2. recursive-type identification + shape-relevance slicing (§5.1),
3. the interprocedural shape analysis with inductive recursion
   synthesis (§2-§4, §5.2) on the sliced program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.ir.program import Program
from repro.logic.predicates import PredicateEnv
from repro.prepass.rectypes import recursive_types
from repro.prepass.slicing import slice_program
from repro.prepass.steensgaard import PointerAnalysis
from repro.analysis.interproc import AnalysisFailure, ShapeEngine
from repro.analysis.results import AnalysisResult

__all__ = ["ShapeAnalysis"]


@dataclass
class ShapeAnalysis:
    """Configurable front door of the library."""

    program: Program
    name: str = "program"
    max_unroll: int = 2
    enable_slicing: bool = True
    state_budget: int = 20000

    def run(self) -> AnalysisResult:
        """Run the whole pipeline; never raises on analysis failure --
        the paper's halt-and-report becomes ``result.failure``."""
        self.program.validate()

        start = time.perf_counter()
        pointers = PointerAnalysis(self.program)
        pointer_seconds = time.perf_counter() - start

        start = time.perf_counter()
        kept = pruned = 0
        if self.enable_slicing:
            seeds = recursive_types(self.program, pointers)
            sliced = slice_program(self.program, pointers, seeds)
            target = sliced.program
            kept, pruned = sliced.kept, sliced.pruned
        else:
            target = self.program
        slicing_seconds = time.perf_counter() - start

        env = PredicateEnv()
        engine = ShapeEngine(
            target,
            env,
            max_unroll=self.max_unroll,
            state_budget=self.state_budget,
        )
        failure: str | None = None
        exit_states = []
        start = time.perf_counter()
        try:
            exit_states = engine.analyze()
        except AnalysisFailure as exc:
            failure = str(exc)
        shape_seconds = time.perf_counter() - start

        return AnalysisResult(
            benchmark=self.name,
            instruction_count=self.program.instruction_count(),
            pointer_seconds=pointer_seconds,
            slicing_seconds=slicing_seconds,
            shape_seconds=shape_seconds,
            env=env,
            exit_states=exit_states,
            kept_instructions=kept,
            pruned_instructions=pruned,
            failure=failure,
            loop_invariants=dict(engine.loop_invariants),
            summaries={
                name: [(s.entry, list(s.exits)) for s in summaries]
                for name, summaries in engine.summaries.items()
                if summaries
            },
            stats={
                "states": engine.stats.states,
                "instructions": engine.stats.instructions,
                "invariants": engine.stats.invariants,
                "summaries_reused": engine.stats.summaries_reused,
                "procedures": engine.stats.procedures,
            },
        )
