"""Local heaps, frames and cutpoints (paper, §1, §5.2).

At each procedure call the heap is split into the *local heap* -- the
region reachable from the actual parameters and the globals -- which is
sent to the callee, and a *frame* the callee never sees.  On return the
updated local heap is re-incorporated using the Frame rule.  *Cutpoints*
are the locations of the local heap that the frame (or a caller
register) still references; they are preserved -- told to ``foldT`` not
to fold them away -- so the callee's effects propagate correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.values import Register
from repro.logic.assertions import (
    HeapAssertion,
    PointsTo,
    PredInstance,
    Raw,
    Region,
)
from repro.logic.formula import PureFormula, SpatialFormula
from repro.logic.heapnames import GlobalLoc, HeapName, root_of
from repro.logic.state import AbstractState
from repro.logic.symvals import NullVal, OffsetVal, Opaque, SymVal

__all__ = ["SplitHeap", "extract_local_heap", "combine"]


@dataclass
class SplitHeap:
    """The result of splitting a caller state at a call site."""

    entry: AbstractState
    frame: list[HeapAssertion]
    cutpoints: frozenset[HeapName]


def _anchor(atom: HeapAssertion) -> HeapName:
    if isinstance(atom, PointsTo):
        return atom.src
    if isinstance(atom, PredInstance):
        root = atom.root
        if isinstance(root, (NullVal, OffsetVal, Opaque)):
            raise ValueError(f"instance rooted at non-location {root}")
        return root
    if isinstance(atom, Raw):
        return atom.loc
    return atom.base  # Region


def _mentioned(atom: HeapAssertion) -> set[HeapName]:
    names: set[HeapName] = set()
    if isinstance(atom, PointsTo):
        names.add(atom.src)
        names |= _names_of_value(atom.target)
    elif isinstance(atom, PredInstance):
        for arg in atom.args:
            names |= _names_of_value(arg)
        names.update(atom.truncs)
    elif isinstance(atom, Raw):
        names.add(atom.loc)
    elif isinstance(atom, Region):
        names.add(atom.base)
    return names


def _names_of_value(value: SymVal) -> set[HeapName]:
    if isinstance(value, (NullVal, Opaque)):
        return set()
    if isinstance(value, OffsetVal):
        return {value.base}
    return {value}


def _traversal_targets(atom: HeapAssertion) -> set[HeapName]:
    """Names reachability *traverses into* from an included atom.

    Like :func:`_mentioned`, except that a predicate instance's backward
    arguments (``args[1:]``) are not followed: they point at the
    *surrounding* structure (ancestors), which the callee typically only
    names, never dereferences.  Leaving those cells in the frame keeps
    entry local heaps small and uniform; it is sound (the paper: "any
    other splitting is sound") -- a callee that does dereference an
    ancestor gets stuck and the analysis reports failure rather than
    approximating.
    """
    if isinstance(atom, PredInstance):
        names: set[HeapName] = set(atom.truncs)
        names |= _names_of_value(atom.root)
        return names
    return _mentioned(atom)


def extract_local_heap(
    state: AbstractState,
    roots: list[SymVal],
    entry_rho: dict[Register, SymVal],
) -> SplitHeap:
    """Split *state* into the heap reachable from *roots* and a frame.

    Globals are always part of the local heap (any callee may use
    them), matching the paper's splitting; any other splitting is also
    sound.  The entry state's pure formula is restricted to facts over
    local names so that summaries stay context-independent.
    """
    atoms = list(state.spatial)
    anchored: dict[HeapName, list[HeapAssertion]] = {}
    for atom in atoms:
        anchored.setdefault(_anchor(atom), []).append(atom)

    reachable: set[HeapName] = set()
    worklist: list[HeapName] = []
    for value in roots:
        for name in _names_of_value(state.resolve(value)):
            worklist.append(name)
    for atom in atoms:
        anchor = _anchor(atom)
        if isinstance(root_of(anchor), GlobalLoc):
            worklist.append(anchor)

    local_atoms: list[HeapAssertion] = []
    taken: set[int] = set()
    while worklist:
        name = worklist.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for atom in anchored.get(name, ()):
            if id(atom) in taken:
                continue
            taken.add(id(atom))
            local_atoms.append(atom)
            for mentioned in _traversal_targets(atom):
                if mentioned not in reachable:
                    worklist.append(mentioned)
        # Region slots alias through the pure formula: reaching a region
        # base reaches its carved cells and vice versa.
        for offset_val, alias in state.pure.aliases().items():
            if offset_val.base == name and alias not in reachable:
                worklist.append(alias)

    frame = [atom for atom in atoms if id(atom) not in taken]

    # Cutpoints: local locations the frame or a caller register still
    # references (other than through the passed parameters).
    frame_refs: set[HeapName] = set()
    for atom in frame:
        frame_refs |= _mentioned(atom)
    register_refs: set[HeapName] = set()
    root_names = {n for v in roots for n in _names_of_value(state.resolve(v))}
    for value in state.rho.values():
        register_refs |= _names_of_value(state.resolve(value))
    cutpoints = frozenset(
        (frame_refs | register_refs) & reachable - root_names
    )

    entry_pure = _restrict_pure(state.pure, reachable)
    anchors = frozenset(root_names) | frozenset(
        a for a in reachable if isinstance(root_of(a), GlobalLoc)
    )
    entry = AbstractState(
        dict(entry_rho), SpatialFormula(local_atoms), entry_pure, anchors
    )
    return SplitHeap(entry, frame, cutpoints)


def _restrict_pure(pure: PureFormula, names: set[HeapName]) -> PureFormula:
    restricted = PureFormula()
    for offset_val, alias in pure.aliases().items():
        if offset_val.base in names and alias in names:
            restricted.record_alias(offset_val, alias)
    for atom in pure.atoms():
        mentioned = _names_of_value(atom.lhs) | _names_of_value(atom.rhs)
        if mentioned <= names:
            restricted.assume(atom.op, atom.lhs, atom.rhs)
    return restricted


def combine(
    caller: AbstractState,
    frame: list[HeapAssertion],
    exit_state: AbstractState,
    dst: Register | None,
    ret_register: Register,
) -> AbstractState:
    """Frame rule: conjoin the callee's updated local heap with the
    frame, propagate the return value, keep caller registers."""
    result = AbstractState(
        dict(caller.rho), SpatialFormula(), caller.pure.copy(), caller.anchors
    )
    for atom in frame:
        result.spatial.add(atom)
    for atom in exit_state.spatial:
        result.spatial.add(atom)
    for offset_val, alias in exit_state.pure.aliases().items():
        result.pure.record_alias(offset_val, alias)
    for atom in exit_state.pure.atoms():
        result.pure.assume(atom.op, atom.lhs, atom.rhs)
    if dst is not None:
        value = exit_state.rho.get(ret_register)
        result.rho[dst] = value if value is not None else Opaque("ret")
    return result
