"""Unfolding recursive predicates: ``unfoldT`` (paper, §4, Figure 6).

``expose(state, h, env)`` returns the set of states in which the heap
location *h* carries explicit points-to assertions, unrolling whatever
predicate instance currently describes it.  Three situations arise:

1. *h* already has explicit cells (or is a fresh/array cell): nothing
   to do.
2. *h* roots a predicate instance ``A(h, args; truncs)``: peel the
   structure from the top by instantiating the definition.  When the
   instance carries truncation points their positions relative to the
   newly exposed sub-structures are unknown, so the unfold enumerates
   every consistent placement: each truncation point is either exactly
   the root of one sub-structure (the sub-instance is then *not*
   emitted -- that piece of heap already sits elsewhere in the formula
   -- and the piece's arguments are unified with the arguments the
   definition dictates for that position) or strictly below one
   sub-structure (it becomes a truncation point of that sub-instance).
   Truncation points are mutually disjoint, so at most one may sit
   exactly at each sub-structure.
3. *h* is an interior node of a truncated instance, reached through the
   backward links of a piece that was cut out earlier ("unrolling from
   the bottom up").  *h*'s cells are carved out of the instance: *h*
   becomes a new truncation point, its body is instantiated with fresh
   backward-link targets, and every cut-out piece that references *h*
   is placed relative to *h* with the same exact/below case analysis --
   pruned, as in the paper's Figure 6, by where the definition's
   parameter substitutions can possibly place a node whose backward
   link targets *h* (we compute the paper's one-step check as a
   fixpoint over the definition's parameter flow, removing the
   "neighbours are one pointer traversal away" assumption).

Infeasible placements are discarded when argument unification
contradicts the state; the surviving states exhaustively cover the
concrete possibilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro import obs
from repro.analysis import memo
from repro.logic.assertions import PointsTo, PredInstance, Raw
from repro.logic.heapnames import (
    FieldPath,
    HeapName,
    Var,
    fresh_counter_value,
    fresh_var,
)
from repro.logic.predicates import NullArg, ParamArg, PredicateDef, PredicateEnv, RecTarget
from repro.logic.state import AbstractState, AnalysisStuck
from repro.logic.symvals import NULL_VAL, NullVal, OffsetVal, Opaque, SymVal

__all__ = ["expose", "unfold_root", "unfold_interior", "unify_values", "params_holding_root"]


def expose(state: AbstractState, h: HeapName, env: PredicateEnv) -> list[AbstractState]:
    """States in which *h* carries explicit cell assertions."""
    if state.spatial.points_to_from(h) or state.spatial.raw_at(h):
        return [state]
    instance = state.spatial.instance_rooted_at(h)
    if instance is not None:
        return unfold_root(state, instance, env)
    if not state.spatial.instances_truncated_at(h):
        # h is not a truncation point; it may be an interior node of a
        # truncated instance, reached via a backward link.
        host = _interior_host(state, h)
        if host is not None:
            return unfold_interior(state, host, h, env)
    # A truncation point without its own piece (or any other bare
    # location) only has cells if it is an unmaterialized array slot.
    if state.spatial.region_at(h) is not None:
        state.spatial.add(Raw(h))
        return [state]
    state.materialize_cell(h)
    if state.spatial.raw_at(h):
        return [state]
    raise AnalysisStuck(f"no heap assertion covers location {h}")


def _interior_host(state: AbstractState, h: HeapName) -> PredInstance | None:
    """The truncated instance whose interior *h* must be, if unique."""
    truncated = [i for i in state.spatial.pred_instances() if i.truncs]
    if len(truncated) == 1:
        return truncated[0]
    if not truncated:
        return None
    # Disambiguate via the pieces that reference h: a piece cut out of T
    # (a truncation point of T) whose backward link targets h places h
    # inside T.
    hosts = []
    for instance in truncated:
        for trunc in instance.truncs:
            if _references(state, trunc, h):
                hosts.append(instance)
                break
    if len(hosts) == 1:
        return hosts[0]
    return None


def _references(state: AbstractState, piece: HeapName, h: HeapName) -> bool:
    for atom in state.spatial.points_to_from(piece):
        if atom.target == h:
            return True
    instance = state.spatial.instance_rooted_at(piece)
    return instance is not None and h in instance.args[1:]


# ----------------------------------------------------------------------
# Argument unification
# ----------------------------------------------------------------------


def unify_values(state: AbstractState, a: SymVal, b: SymVal) -> bool:
    """Make two symbolic values equal in *state*, or report impossibility.

    Dangling logic variables (no spatial footprint) are renamed; a
    contradiction (two distinct allocated cells, or null against an
    allocated cell) returns False and leaves the state unusable.
    """
    a, b = state.resolve(a), state.resolve(b)
    if a == b:
        return True
    if state.pure.entails_ne(a, b):
        return False
    for x, y in ((a, b), (b, a)):
        if isinstance(x, Var) and not state.spatial.is_allocated(x) and not (
            state.spatial.instances_truncated_at(x)
        ):
            if isinstance(y, (NullVal, OffsetVal, Opaque)):
                state.substitute_value(x, y)
            else:
                state.rename(x, y)
            return True
    if isinstance(a, NullVal) or isinstance(b, NullVal):
        value = b if isinstance(a, NullVal) else a
        if isinstance(value, (OffsetVal, Opaque)):
            return False
        return state.assume_eq(NULL_VAL, value)
    return False


# ----------------------------------------------------------------------
# Case 2: unfolding from the root
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Placement:
    """One truncation point's position: exactly at sub-structure
    ``call_index`` or strictly below it."""

    trunc: HeapName
    call_index: int
    exact: bool


def unfold_root(
    state: AbstractState, instance: PredInstance, env: PredicateEnv
) -> list[AbstractState]:
    """Peel ``instance`` from the top; enumerate truncation placements.

    Memoized on (canonical state, root address, predicate environment)
    when an unfold cache is active: the fixpoint engine re-unfolds
    alpha-variants of the same state at every loop revisit, and the
    case analysis is a pure function of the key.  Only successful
    unfolds are replayed; ``AnalysisStuck`` is always recomputed so its
    message quotes the live namespace.
    """
    if instance.pred not in env:
        raise AnalysisStuck(f"unknown predicate {instance.pred}")
    key = memo.unfold_memo_key("root", state, instance.root, env)
    if key is None:
        results, _ = _unfold_root_cases(state, instance, env)
        return results
    cached = memo.lookup_unfold(key, state)
    if cached is not None:
        return cached
    fresh_base = fresh_counter_value()
    results, stats = _unfold_root_cases(state, instance, env)
    memo.store_unfold(key, state, results, fresh_base, stats)
    return results


def _unfold_root_cases(
    state: AbstractState, instance: PredInstance, env: PredicateEnv
) -> tuple[list[AbstractState], tuple]:
    definition = env[instance.pred]
    root = instance.root
    if isinstance(root, (NullVal, OffsetVal, Opaque)):
        raise AnalysisStuck(f"cannot unfold a structure rooted at {root}")

    if not instance.truncs:
        result = state.copy()
        result.spatial.remove(instance)
        points_to, subs, bound = definition.unfold_body(instance.args)
        points_to, subs = _path_name_bounds(
            result, definition, root, points_to, subs, bound, skip=set()
        )
        for atom in points_to:
            result.spatial.add(atom)
        for sub in subs:
            result.spatial.add(sub)
        result.pure.assume("ne", root, NULL_VAL)
        stats = ("unfold.root", instance.pred, 1, 0, 0)
        _record_unfold(*stats)
        return [result], stats

    results: list[AbstractState] = []
    exact = below = 0
    for combo in _placement_combos(state, definition, instance.truncs, anchor=root):
        st = state.copy()
        st.spatial.remove(_find(st, instance))
        points_to, subs, bound = definition.unfold_body(instance.args)
        if _apply_placements(
            st, definition, combo, points_to, subs, bound, root=root
        ):
            st.pure.assume("ne", root, NULL_VAL)
            results.append(st)
            exact += sum(1 for p in combo if p.exact)
            below += sum(1 for p in combo if not p.exact)
    if not results:
        raise AnalysisStuck(
            f"no consistent truncation placement unfolding {instance}"
        )
    stats = ("unfold.root", instance.pred, len(results), exact, below)
    _record_unfold(*stats)
    return results, stats


def _record_unfold(
    case: str, pred: str, cases: int, exact: int, below: int
) -> None:
    """Report one Figure-6 unfold to the active instruments: which case
    fired (root vs interior), how many case-split states survived, and
    how the truncation points were placed (exactly at a sub-structure
    root vs strictly below one)."""
    metrics = obs.METRICS
    if metrics.enabled:
        metrics.inc(case)
        metrics.inc("unfold.cases", cases)
        if exact:
            metrics.inc("unfold.placements.exact", exact)
        if below:
            metrics.inc("unfold.placements.below", below)
    tracer = obs.TRACER
    if tracer.enabled:
        tracer.event(
            case, pred=pred, cases=cases, exact=exact, below=below
        )


def _find(state: AbstractState, instance: PredInstance) -> PredInstance:
    for atom in state.spatial:
        if atom == instance:
            return atom
    raise AssertionError("instance vanished from the copied state")


def _placement_combos(
    state: AbstractState,
    definition: PredicateDef,
    truncs: tuple[HeapName, ...],
    anchor: SymVal | None,
) -> list[tuple[_Placement, ...]]:
    """All consistent assignments of truncation points to positions."""
    per_trunc: list[list[_Placement]] = []
    for trunc in truncs:
        options = []
        constraints = (
            _piece_constraints(state, definition, trunc, anchor)
            if isinstance(anchor, HeapName)
            else []
        )
        for i in range(len(definition.rec_calls)):
            if _exact_consistent(definition, i, constraints):
                options.append(_Placement(trunc, i, exact=True))
            if _below_consistent(definition, i, constraints):
                options.append(_Placement(trunc, i, exact=False))
        per_trunc.append(options)
    combos = []
    for combo in product(*per_trunc):
        exact_calls = [p.call_index for p in combo if p.exact]
        if len(exact_calls) == len(set(exact_calls)):
            combos.append(combo)
    return combos


def _exact_consistent(
    definition: PredicateDef, call_index: int, constraints: list[int]
) -> bool:
    """Figure 6: exact placement requires the call to substitute x1 for
    every backward parameter that targets the unfolded node."""
    call = definition.rec_calls[call_index]
    for j in constraints:
        if j - 1 >= len(call.args) or call.args[j - 1] != ParamArg(0):
            return False
    return True


def _below_consistent(
    definition: PredicateDef, call_index: int, constraints: list[int]
) -> bool:
    """Figure 6 (generalized): a node strictly below sub-structure
    ``call_index`` can have parameter ``xj`` equal to the unfolded node
    only if the parameter-flow fixpoint says so."""
    if not constraints:
        return True
    deep = params_holding_root(definition, call_index)
    return all(j in deep for j in constraints)


def params_holding_root(definition: PredicateDef, call_index: int) -> set[int]:
    """Parameter indices that can equal the unfolded node at depth >= 2
    inside sub-structure ``call_index``.

    Depth 1 (the sub-structure's root) receives ``xj == h`` exactly when
    the call's argument is ``x1``; deeper nodes receive it through
    chains of parameter-to-parameter substitutions.  This is the
    transitive closure of the paper's one-step check.
    """
    def level_after(call, current: set[int]) -> set[int]:
        nxt = set()
        for j, arg in enumerate(call.args, start=1):
            if isinstance(arg, ParamArg) and arg.index in current:
                nxt.add(j)
        return nxt

    first = {
        j
        for j, arg in enumerate(definition.rec_calls[call_index].args, start=1)
        if arg == ParamArg(0)
    }
    deep: set[int] = set()
    seen: set[frozenset[int]] = set()
    frontier = [first]
    while frontier:
        current = frontier.pop()
        key = frozenset(current)
        if key in seen or not current:
            continue
        seen.add(key)
        for call in definition.rec_calls:
            if call.pred != definition.name:
                continue  # parameters do not flow into foreign predicates
            nxt = level_after(call, current)
            deep |= nxt
            frontier.append(nxt)
    return deep


def _path_name_bounds(
    state: AbstractState,
    definition: PredicateDef,
    root: SymVal,
    points_to: list[PointsTo],
    subs: list[PredInstance],
    bound: list[Var],
    skip: set[int],
) -> tuple[list[PointsTo], list[PredInstance]]:
    """Rename the fresh sub-structure roots to access-path names.

    ``rearrange_names`` gives stored locations backbone-revealing names;
    unfolding plays the same game so that recursion synthesis can read
    traversal traces (``list(a)`` unfolds to ``a.next |-> a.next *
    list(a.next)`` rather than to an anonymous variable).  A name that
    is already taken in the state stays fresh.
    """
    if not isinstance(root, HeapName):
        return points_to, subs
    taken = state.heap_names()
    for i, var in enumerate(bound):
        if i in skip:
            continue
        path = FieldPath(root, definition.field_of_rec_call(i))
        if path in taken:
            continue
        state.rename(var, path)
        points_to = [p.rename(var, path) for p in points_to]
        subs = [s.rename(var, path) for s in subs]
        bound[i] = path  # type: ignore[call-overload]
    return points_to, subs


def _apply_placements(
    state: AbstractState,
    definition: PredicateDef,
    combo: tuple[_Placement, ...],
    points_to: list[PointsTo],
    subs: list[PredInstance],
    bound: list[Var],
    root: SymVal | None = None,
) -> bool:
    """Install the unfolded body under one placement assignment."""
    exact_at: dict[int, HeapName] = {}
    below_at: dict[int, list[HeapName]] = {}
    for placement in combo:
        if placement.exact:
            exact_at[placement.call_index] = placement.trunc
        else:
            below_at.setdefault(placement.call_index, []).append(placement.trunc)

    # Splice the exact truncation points in place of the bound vars.
    for i, trunc in exact_at.items():
        state.rename(bound[i], trunc)
        points_to = [p.rename(bound[i], trunc) for p in points_to]
        subs = [s.rename(bound[i], trunc) for s in subs]
    if root is not None:
        points_to, subs = _path_name_bounds(
            state, definition, root, points_to, subs, bound, skip=set(exact_at)
        )

    for atom in points_to:
        state.spatial.add(atom)
    for i, sub in enumerate(subs):
        if i in exact_at:
            trunc = exact_at[i]
            piece = state.spatial.instance_rooted_at(trunc)
            if piece is not None:
                if piece.pred != sub.pred or len(piece.args) != len(sub.args):
                    return False
                for computed, actual in zip(sub.args[1:], piece.args[1:]):
                    if not unify_values(state, computed, actual):
                        return False
            else:
                # The piece has explicit cells (or none yet): unify the
                # dictated backward links with the observed ones.
                if not _unify_with_cells(state, definition, sub, trunc):
                    return False
            continue
        state.spatial.add(sub.with_truncs(tuple(below_at.get(i, ()))))
    return True


def _unify_with_cells(
    state: AbstractState,
    definition: PredicateDef,
    sub: PredInstance,
    piece: HeapName,
) -> bool:
    # Map the piece's backward-link fields to its observed targets and
    # unify with the arguments the definition dictates for the position.
    for j, computed in enumerate(sub.args[1:], start=1):
        field = _backward_field(definition, sub.pred, j)
        if field is None:
            continue
        observed = state.spatial.points_to(piece, field)
        if observed is None:
            continue  # piece not expanded here; nothing to check
        if not unify_values(state, computed, observed.target):
            return False
    return True


def _backward_field(
    definition: PredicateDef, pred: str, j: int
) -> str | None:
    if pred != definition.name:
        return None
    for spec in definition.fields:
        if spec.target == ParamArg(j):
            return spec.field
    return None


# ----------------------------------------------------------------------
# Case 3: unfolding an interior node from the bottom up
# ----------------------------------------------------------------------


def unfold_interior(
    state: AbstractState,
    host: PredInstance,
    h: HeapName,
    env: PredicateEnv,
) -> list[AbstractState]:
    """Expose the cells of *h*, an interior node of the truncated *host*.

    Memoized like :func:`unfold_root`, additionally keyed on the host
    instance's root so the cache distinguishes which truncated
    structure *h* is carved out of.
    """
    key = memo.unfold_memo_key("interior", state, host.root, env, extra=h)
    if key is None:
        results, _ = _unfold_interior_cases(state, host, h, env)
        return results
    cached = memo.lookup_unfold(key, state)
    if cached is not None:
        return cached
    fresh_base = fresh_counter_value()
    results, stats = _unfold_interior_cases(state, host, h, env)
    memo.store_unfold(key, state, results, fresh_base, stats)
    return results


def _unfold_interior_cases(
    state: AbstractState,
    host: PredInstance,
    h: HeapName,
    env: PredicateEnv,
) -> tuple[list[AbstractState], tuple]:
    definition = env[host.pred]
    pieces = [t for t in host.truncs if _references(state, t, h)]

    per_piece: list[list[_Placement]] = []
    for piece in pieces:
        options = []
        constraints = _piece_constraints(state, definition, piece, h)
        for i in range(len(definition.rec_calls)):
            if constraints and _exact_consistent(definition, i, constraints):
                options.append(_Placement(piece, i, exact=True))
            if _below_consistent(definition, i, constraints):
                options.append(_Placement(piece, i, exact=False))
        if not options:
            raise AnalysisStuck(
                f"piece {piece} cannot be placed relative to {h}"
            )
        per_piece.append(options)

    results: list[AbstractState] = []
    exact = below = 0
    for combo in product(*per_piece):
        exact_calls = [p.call_index for p in combo if p.exact]
        if len(exact_calls) != len(set(exact_calls)):
            continue
        st = state.copy()
        fresh_args = tuple(fresh_var("g") for _ in range(definition.arity - 1))
        points_to, subs, bound = definition.unfold_body((h,) + fresh_args)
        if not _apply_placements(
            st, definition, combo, points_to, subs, bound, root=h
        ):
            continue
        # h becomes a truncation point of the host; moved pieces leave.
        moved = {p.trunc for p in combo}
        host_atom = st.spatial.instance_rooted_at(host.root)
        if host_atom is None:
            continue
        new_truncs = tuple(t for t in host_atom.truncs if t not in moved) + (h,)
        st.spatial.replace(host_atom, host_atom.with_truncs(new_truncs))
        st.pure.assume("ne", h, NULL_VAL)
        results.append(st)
        exact += sum(1 for p in combo if p.exact)
        below += sum(1 for p in combo if not p.exact)
    if not results:
        raise AnalysisStuck(f"no consistent interior unfolding for {h}")
    stats = ("unfold.interior", host.pred, len(results), exact, below)
    _record_unfold(*stats)
    return results, stats


def _piece_constraints(
    state: AbstractState,
    definition: PredicateDef,
    piece: HeapName,
    h: HeapName,
) -> list[int]:
    """Backward parameters through which *piece* references *h*, whether
    the piece is folded (an instance) or expanded (explicit cells)."""
    constraints: list[int] = []
    instance = state.spatial.instance_rooted_at(piece)
    if instance is not None:
        for j, arg in enumerate(instance.args[1:], start=1):
            if state.resolve(arg) == h:
                constraints.append(j)
        return constraints
    for atom in state.spatial.points_to_from(piece):
        if state.resolve(atom.target) == h:
            j = definition.backward_param_for_field(atom.field)
            if j is not None:
                constraints.append(j)
    return constraints
