"""The shape analysis: abstract semantics, rearrange_names, unfold/fold
with truncation points, loop-invariant inference, and the
interprocedural engine."""

from repro.analysis.engine import ShapeAnalysis
from repro.analysis.fold import fold_state, normalize_nulls
from repro.analysis.interproc import (
    RET_REGISTER,
    AnalysisFailure,
    ShapeEngine,
    Summary,
    transplant_state,
)
from repro.analysis.invariants import guarded_locations, normalize_state
from repro.analysis.localheap import SplitHeap, combine, extract_local_heap
from repro.analysis.rearrange import rearrange_names
from repro.analysis.resilience import Budget, BudgetExhausted, Diagnostic
from repro.analysis.results import AnalysisResult
from repro.analysis.semantics import apply_instruction, filter_condition
from repro.analysis.unfold import (
    expose,
    params_holding_root,
    unfold_interior,
    unfold_root,
    unify_values,
)

__all__ = [
    "AnalysisFailure",
    "AnalysisResult",
    "Budget",
    "BudgetExhausted",
    "Diagnostic",
    "RET_REGISTER",
    "ShapeAnalysis",
    "ShapeEngine",
    "SplitHeap",
    "Summary",
    "apply_instruction",
    "combine",
    "expose",
    "extract_local_heap",
    "filter_condition",
    "fold_state",
    "guarded_locations",
    "normalize_nulls",
    "normalize_state",
    "params_holding_root",
    "rearrange_names",
    "transplant_state",
    "unfold_interior",
    "unfold_root",
    "unify_values",
]
