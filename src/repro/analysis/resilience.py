"""Resilience layer: diagnostics, budgets, and failure containment.

The paper's analysis *halts and reports failure* whenever invariant
synthesis or verification fails (§3.4) -- sound, but brittle for a
batch/service setting where one pathological loop must not take down
an entire run.  This module gives failure a structure:

* a **diagnostic taxonomy** (:class:`Diagnostic`): every way the
  analysis can stop -- invariant-synthesis failure, a stuck abstract
  execution, a blown resource budget, an internal bug -- is classified
  by a stable ``code``, the pipeline ``phase``, a severity, and a
  source location (procedure and, for loops, the header index);

* a structured exception hierarchy: :class:`AnalysisFailure` (the
  paper's halt-and-report, now carrying its own taxonomy fields) and
  its subclass :class:`BudgetExhausted` (a resource cap, never
  retried -- retrying with the same budget cannot help);

* a :class:`Budget` threaded through the engine: wall-clock deadline,
  the per-worklist state budget, an optional global state cap, and a
  procedure-activation depth guard, all checked *cooperatively* at the
  worklist loop and at procedure entry, so a runaway analysis
  terminates promptly with a ``budget-exhausted`` diagnostic instead
  of hanging or hitting Python's recursion limit.

The engine consumes these in two modes (see
:class:`~repro.analysis.interproc.ShapeEngine`):

* ``strict`` -- the paper's semantics: the first failure halts the
  whole analysis and is reported;
* ``degrade`` -- failures are *contained* at the smallest enclosing
  unit (a call site gets a havoc summary, a poisoned worklist state is
  dropped) and recorded as recovered diagnostics, so the rest of the
  program is still analyzed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "AnalysisFailure",
    "Budget",
    "BudgetExhausted",
    "Diagnostic",
    "BUDGET_EXHAUSTED",
    "CONCRETE_DIVERGENCE",
    "DIAGNOSTIC_CODES",
    "DIAGNOSTIC_PHASES",
    "EXECUTION_STUCK",
    "FRONTEND_ERROR",
    "INTERNAL_ERROR",
    "INVARIANT_FAILURE",
    "SUMMARY_FAILURE",
    "STORE_INVALID",
    "SEVERITY_ERROR",
    "SEVERITY_FATAL",
    "SEVERITY_WARNING",
    "WORKER_CRASHED",
]


# ----------------------------------------------------------------------
# Diagnostic codes (stable identifiers, used by batch drivers and CI)
# ----------------------------------------------------------------------

#: A loop-invariant hypothesis failed to synthesize or to verify.
INVARIANT_FAILURE = "invariant-failure"
#: A recursive-procedure contract failed to synthesize or stabilize.
SUMMARY_FAILURE = "summary-failure"
#: The abstract execution got stuck (e.g. a possible null dereference).
EXECUTION_STUCK = "execution-stuck"
#: A resource cap was hit: deadline, state budget, or depth guard.
BUDGET_EXHAUSTED = "budget-exhausted"
#: An unexpected exception escaped the analysis (a bug, not a result).
INTERNAL_ERROR = "internal-error"
#: The input program failed to parse, type-check, or lower.
FRONTEND_ERROR = "frontend-error"
#: The OS process running the analysis died before producing a result
#: (killed by a signal, OOM, or a torn pipe).  Emitted by *parents* --
#: the batch runner and the serve supervisor -- never by the analysis
#: itself, which cannot outlive its own process to report it.  A
#: supervisor retries the victim job a bounded number of times and
#: returns this diagnostic when retries are exhausted, so a job is
#: never silently lost.
WORKER_CRASHED = "worker-crashed"
#: The *concrete* reference interpreter exhausted its fuel or
#: call-depth allowance: the program diverged (or ran long enough that
#: we treat it as divergent).  Distinct from ``internal-error`` so a
#: differential oracle can tell "the program loops forever" apart from
#: "the interpreter itself is broken".
CONCRETE_DIVERGENCE = "concrete-divergence"
#: A durable-store entry was rejected before use -- checksum or schema
#: mismatch, a decode failure, a failed self-derivation / re-application
#: validation check, or a store I/O error (EIO, ENOSPC, permission
#: loss).  Always *recovered*: the store is an accelerator, so every
#: rejection degrades to a cache miss (the analysis recomputes), never
#: to a wrong verdict or an analysis failure.
STORE_INVALID = "store-invalid"

#: Every documented diagnostic code.  Batch drivers, the differential
#: oracle, and CI treat any code outside this tuple as a taxonomy bug.
DIAGNOSTIC_CODES = (
    INVARIANT_FAILURE,
    SUMMARY_FAILURE,
    EXECUTION_STUCK,
    BUDGET_EXHAUSTED,
    INTERNAL_ERROR,
    FRONTEND_ERROR,
    WORKER_CRASHED,
    CONCRETE_DIVERGENCE,
    STORE_INVALID,
)

#: Every documented pipeline phase a diagnostic may name: the coarse
#: phases (frontend, shape, concrete) plus the engine's internal phase
#: boundaries (see :meth:`ShapeEngine.phase_boundary`), which fault
#: injection and fine-grained diagnostics use.
DIAGNOSTIC_PHASES = (
    "frontend",
    "shape",
    "concrete",
    "serve",
    "rearrange",
    "fold",
    "entailment",
    "synthesis",
    "tabulation",
    "store",
)

SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"
SEVERITY_FATAL = "fatal"


# ----------------------------------------------------------------------
# Exceptions
# ----------------------------------------------------------------------


class AnalysisFailure(Exception):
    """The analysis halted: an invariant hypothesis failed to verify,
    the abstract execution got stuck, or a resource cap was hit.  The
    paper's analysis halts and reports failure in the same situations
    (no silent approximation).

    Instances carry the diagnostic taxonomy fields so callers can turn
    them into structured :class:`Diagnostic` records without parsing
    message strings.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = INVARIANT_FAILURE,
        phase: str = "shape",
        procedure: str | None = None,
        loop_header: int | None = None,
    ):
        super().__init__(message)
        self.code = code
        self.phase = phase
        self.procedure = procedure
        self.loop_header = loop_header

    def to_diagnostic(self, recovered: bool = False) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            message=str(self),
            phase=self.phase,
            procedure=self.procedure,
            loop_header=self.loop_header,
            severity=SEVERITY_ERROR if recovered else SEVERITY_FATAL,
            recovered=recovered,
        )


class BudgetExhausted(AnalysisFailure):
    """A resource cap was hit.  Distinguished from other analysis
    failures because retry escalation is pointless: rerunning with a
    *larger* unroll bound against the same exhausted budget can only
    exhaust it again."""

    def __init__(
        self,
        message: str,
        *,
        resource: str,
        phase: str = "shape",
        procedure: str | None = None,
    ):
        super().__init__(
            message,
            code=BUDGET_EXHAUSTED,
            phase=phase,
            procedure=procedure,
        )
        self.resource = resource


# ----------------------------------------------------------------------
# Diagnostics
# ----------------------------------------------------------------------


@dataclass
class Diagnostic:
    """One classified analysis event.

    ``recovered`` distinguishes a *contained* failure (degrade mode
    substituted a havoc summary or dropped a state and carried on) from
    a fatal one that ended the run.
    """

    code: str
    message: str
    phase: str = "shape"
    procedure: str | None = None
    loop_header: int | None = None
    severity: str = SEVERITY_ERROR
    recovered: bool = False
    detail: str | None = None
    #: How many times this (code, location) was contained; repeated
    #: containments are deduplicated into one record with a count.
    count: int = 1

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        *,
        phase: str = "shape",
        recovered: bool = False,
        detail: str | None = None,
    ) -> Diagnostic:
        """Classify *exc*: structured :class:`AnalysisFailure` keeps
        its own taxonomy; anything else is an ``internal-error``."""
        if isinstance(exc, AnalysisFailure):
            diagnostic = exc.to_diagnostic(recovered=recovered)
            diagnostic.detail = detail
            return diagnostic
        return cls(
            code=INTERNAL_ERROR,
            message=f"{type(exc).__name__}: {exc}",
            phase=phase,
            severity=SEVERITY_ERROR if recovered else SEVERITY_FATAL,
            recovered=recovered,
            detail=detail,
        )

    def location(self) -> str:
        """``proc`` or ``proc@header`` or ``<program>``."""
        if self.procedure is None:
            return "<program>"
        if self.loop_header is None:
            return self.procedure
        return f"{self.procedure}@{self.loop_header}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "phase": self.phase,
            "procedure": self.procedure,
            "loop_header": self.loop_header,
            "severity": self.severity,
            "recovered": self.recovered,
            "detail": self.detail,
            "count": self.count,
        }

    def __str__(self) -> str:
        mark = "contained" if self.recovered else self.severity
        return f"[{self.code}] {self.location()}: {self.message} ({mark})"


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------


@dataclass
class Budget:
    """Resource budget threaded through the engine.

    All checks are cooperative: the engine calls :meth:`charge_state`
    once per worklist pop and :meth:`enter_procedure` /
    :meth:`exit_procedure` around every procedure activation.  A budget
    is shared across retry attempts of one :class:`ShapeAnalysis` run,
    so the wall-clock deadline bounds the *total* time including
    escalation and degradation reruns.
    """

    #: Wall-clock deadline in seconds for the whole run (None = off).
    deadline_seconds: float | None = None
    #: Max worklist states per intraprocedural ``interpret`` call (the
    #: paper-era per-procedure cap, preserved).
    state_budget: int = 20000
    #: Optional global cap across all procedures and retries.
    max_states: int | None = None
    #: Max nesting depth of procedure activations (guards the engine's
    #: own recursion: a runaway sample path fails with a diagnostic
    #: long before Python's ``RecursionError``).
    max_depth: int = 96

    # -- runtime accounting -------------------------------------------
    states: int = field(default=0, init=False)
    depth: int = field(default=0, init=False)
    peak_depth: int = field(default=0, init=False)
    _started_at: float | None = field(default=None, init=False)

    def start(self) -> None:
        """Arm the deadline clock (idempotent across retries)."""
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def elapsed_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    @property
    def deadline_expired(self) -> bool:
        return (
            self.deadline_seconds is not None
            and self.elapsed_seconds() > self.deadline_seconds
        )

    def check_deadline(self, phase: str = "shape") -> None:
        if self.deadline_expired:
            raise BudgetExhausted(
                f"deadline of {self.deadline_seconds}s expired after "
                f"{self.elapsed_seconds():.3f}s",
                resource="deadline",
                phase=phase,
            )

    def charge_state(self, procedure: str) -> None:
        """One worklist state processed: count it and poll the caps."""
        self.states += 1
        if self.max_states is not None and self.states > self.max_states:
            raise BudgetExhausted(
                f"global state budget of {self.max_states} exhausted "
                f"while analyzing {procedure}",
                resource="states",
                procedure=procedure,
            )
        self.check_deadline()

    def enter_procedure(self, name: str) -> None:
        self.depth += 1
        if self.depth > self.max_depth:
            self.depth -= 1
            raise BudgetExhausted(
                f"procedure activation depth exceeded {self.max_depth} "
                f"entering {name}",
                resource="depth",
                procedure=name,
            )
        self.peak_depth = max(self.peak_depth, self.depth)

    def exit_procedure(self) -> None:
        self.depth -= 1

    def snapshot(self) -> dict:
        """Budget accounting for reports and bench JSON."""
        return {
            "states": self.states,
            "peak_depth": self.peak_depth,
            "elapsed_seconds": round(self.elapsed_seconds(), 6),
            "deadline_seconds": self.deadline_seconds,
            "state_budget": self.state_budget,
            "max_states": self.max_states,
            "max_depth": self.max_depth,
        }
