"""``rearrange_names`` (paper, Figure 2).

Invoked by the MUTATE rule to encode access-path information in heap
names; the recursion-synthesis algorithm relies on this to identify the
basic structure of a recursion.  Given that the current heap satisfies
``h1.n |-> h2`` and that *v* is about to be written to ``h1.n``:

* if *v* is a simple logic variable, its new name is ``h1.n`` (the
  location inherits the access path of the first location it is linked
  to -- the heuristic that reveals the acyclic backbone, since such a
  link is usually created when adding a new expansion to a recursive
  data structure); if the old content claimed that name, the old
  content is renamed to a fresh variable first;
* if *v* is pointer arithmetic ``h + n``, it most likely addresses an
  array element: the name ``h1.n`` is assigned and the alias
  ``h + n == h1.n`` is recorded in the pure formula so later visits via
  arithmetic resolve to the same cell;
* otherwise *v* already carries an access path ("has already been
  linked to a parent") and nothing happens -- the new link is a
  backward or cross link.

One refinement the prose of the paper implies but Figure 2 leaves
implicit: a variable is never renamed to an access path it is itself a
prefix of (``a`` must not become ``a.child.parent``); such a store is by
construction a backward link to an ancestor, and the target keeps its
name.
"""

from __future__ import annotations

from repro.logic.heapnames import FieldPath, GlobalLoc, HeapName, Var, fresh_var, is_prefix
from repro.logic.state import AbstractState
from repro.logic.symvals import NullVal, OffsetVal, Opaque, SymVal

__all__ = ["rearrange_names"]


def rearrange_names(
    state: AbstractState,
    h1: HeapName,
    field: str,
    old_target: SymVal | None,
    value: SymVal,
) -> SymVal:
    """Choose (and install) the name for *value* stored into ``h1.field``.

    Mutates *state* (renamings, alias recording) and returns the
    symbolic value the points-to fact should carry.
    """
    value = state.resolve(value)
    if isinstance(value, (NullVal, Opaque)):
        return value

    new_name = FieldPath(h1, field)

    if isinstance(value, OffsetVal):
        _evict_old_claimant(state, old_target, new_name)
        state.pure.record_alias(value, new_name)
        return new_name

    if (
        isinstance(value, Var)
        and value not in state.anchors
        and not is_prefix(value, new_name)
    ):
        _evict_old_claimant(state, old_target, new_name)
        state.rename(value, new_name)
        return new_name

    # GlobalLoc, FieldPath (already linked), or a prefix of the source's
    # access path (a backward link): keep the existing name.
    return value


def _evict_old_claimant(
    state: AbstractState, old_target: SymVal | None, name: HeapName
) -> None:
    """If the overwritten content holds the name we are about to assign,
    rename it to a fresh variable everywhere first."""
    if old_target == name:
        state.rename(name, fresh_var())
