"""Abstract operational semantics of the IR (paper, Table 2).

Each transformer takes an abstract state and returns the list of
successor states (unfolding a predicate to reveal a points-to fact may
require case analysis, so loads and stores can split states).  Strong
updates are performed throughout -- flow-sensitivity is what the
slicing pre-pass buys back for realistic programs.

Branches are handled by :func:`filter_condition` (the paper's
``filter(c)``): the state is refined with the taken condition, or
dropped when the pure formula refutes it.
"""

from __future__ import annotations

from repro.ir.instructions import (
    ArithOp,
    Assign,
    Cond,
    Free,
    Instruction,
    Load,
    Malloc,
    Store,
)
from repro.ir.values import IntConst
from repro.logic.assertions import PointsTo, Raw, Region
from repro.logic.heapnames import fresh_var
from repro.logic.predicates import PredicateEnv
from repro.logic.state import AbstractState, AnalysisStuck
from repro.logic.symvals import NULL_VAL, NullVal, Opaque, OffsetVal, offset
from repro.analysis.rearrange import rearrange_names
from repro.analysis.unfold import expose

__all__ = [
    "apply_instruction",
    "filter_condition",
]

_opaque_counter = [0]


def _fresh_opaque(hint: str) -> Opaque:
    _opaque_counter[0] += 1
    return Opaque(f"{hint}.{_opaque_counter[0]}")


def apply_instruction(
    state: AbstractState, instr: Instruction, env: PredicateEnv
) -> list[AbstractState]:
    """Successor states of one non-control-flow instruction."""
    if isinstance(instr, Assign):
        state.rho[instr.dst] = state.eval_operand(instr.src)
        return [state]
    if isinstance(instr, ArithOp):
        return _apply_arith(state, instr)
    if isinstance(instr, Malloc):
        return _apply_malloc(state, instr)
    if isinstance(instr, Free):
        return _apply_free(state, instr, env)
    if isinstance(instr, Load):
        return _apply_load(state, instr, env)
    if isinstance(instr, Store):
        return _apply_store(state, instr, env)
    raise AnalysisStuck(f"no transformer for {instr}")


def _apply_arith(state: AbstractState, instr: ArithOp) -> list[AbstractState]:
    if instr.op in ("add", "sub") and isinstance(instr.rhs, IntConst):
        base = state.eval_operand(instr.lhs)
        if not isinstance(base, (NullVal, Opaque)):
            delta = instr.rhs.value if instr.op == "add" else -instr.rhs.value
            state.rho[instr.dst] = offset(base, delta)
            return [state]
    # Integer arithmetic (or symbolically indexed pointer arithmetic,
    # which collapses array elements): outside the shape domain.
    state.rho[instr.dst] = _fresh_opaque(instr.op)
    return [state]


def _apply_malloc(state: AbstractState, instr: Malloc) -> list[AbstractState]:
    cell = fresh_var()
    if instr.is_array:
        state.spatial.add(Region(cell))
        state.spatial.add(Raw(cell))
    else:
        state.spatial.add(Raw(cell))
    state.rho[instr.dst] = cell
    state.pure.assume("ne", cell, NULL_VAL)
    return [state]


def _apply_free(
    state: AbstractState, instr: Free, env: PredicateEnv
) -> list[AbstractState]:
    location = state.eval_to_location(instr.ptr)
    results = []
    for st in expose(state, location, env):
        for atom in st.spatial.points_to_from(location):
            st.spatial.remove(atom)
        raw = st.spatial.raw_at(location)
        if raw is not None:
            st.spatial.remove(raw)
        region = st.spatial.region_at(location)
        if region is not None:
            st.spatial.remove(region)
        results.append(st)
    return results


def _apply_load(
    state: AbstractState, instr: Load, env: PredicateEnv
) -> list[AbstractState]:
    location = state.eval_to_location(instr.addr)
    results = []
    for st in expose(state, location, env):
        atom = st.spatial.points_to(location, instr.field)
        if atom is not None:
            st.rho[instr.dst] = st.resolve(atom.target)
        else:
            # Reading a field the shape domain does not track (or an
            # uninitialized field of a fresh cell): an opaque value.
            st.rho[instr.dst] = _fresh_opaque(f"load.{instr.field}")
        results.append(st)
    return results


def _apply_store(
    state: AbstractState, instr: Store, env: PredicateEnv
) -> list[AbstractState]:
    location = state.eval_to_location(instr.addr)
    value = state.eval_operand(instr.src)
    results = []
    for st in expose(state, location, env):
        atom = st.spatial.points_to(location, instr.field)
        old_target = atom.target if atom is not None else None
        new_target = rearrange_names(st, location, instr.field, old_target, value)
        if atom is not None:
            # The atom may have been renamed by rearrange_names; find it
            # again before the strong update.
            current = st.spatial.points_to(location, instr.field)
            st.spatial.replace(
                current, PointsTo(location, instr.field, new_target)
            )
        else:
            st.spatial.add(PointsTo(location, instr.field, new_target))
            raw = st.spatial.raw_at(location)
            if raw is not None:
                st.spatial.replace(raw, raw.with_field(instr.field))
        results.append(st)
    return results


def filter_condition(
    state: AbstractState, cond: Cond, take: bool
) -> AbstractState | None:
    """The paper's ``filter``: refine *state* with the branch outcome.

    Returns None when the refined state is infeasible.  Comparisons
    other than equality carry no shape information and pass through.
    """
    op = cond.op if take else cond.negated().op
    if op not in ("eq", "ne"):
        return state
    lhs = state.resolve(state.eval_operand(cond.lhs))
    rhs = state.resolve(state.eval_operand(cond.rhs))
    if isinstance(lhs, Opaque) and isinstance(rhs, Opaque):
        return state  # untracked data; no information either way
    if op == "eq":
        return state if state.assume_eq(lhs, rhs) else None
    return state if state.assume_ne(lhs, rhs) else None
