"""Memoization of rearrangement: unfold case analyses and identity folds.

The fixpoint engine re-runs ``unfold``'s Figure-6 case analysis and
``fold``'s absorb/wrap search at every loop revisit, usually on states
it has rearranged before (alpha-variants of them, at least).  Both are
pure functions of the state, the focus address and the predicate
environment, so their outcomes can be replayed from a cache: the
unfold memo keys on the PR-4 canonical form plus
``PredicateEnv.cache_token()`` (alpha-variants share entries, which
the replay renaming below depends on); the fold memo keys on exact
revision-memoized content tokens instead (see :func:`fold_memo_key`
for the measured rationale).

Two subtleties make the unfold memo more than a dict lookup:

* **Name translation.**  A cached result mentions the *stored* input's
  variable names.  Equal canonical keys mean the new input is an exact
  alpha-variant, so the stored form's ``index`` (root -> canonical
  slot) composed with the new form's ``roots`` (slot -> root) is a
  total renaming between the two namespaces; replay copies the stored
  result states and pushes that renaming through them (two-phase, via
  temporaries, when the namespaces overlap).

* **Fresh-counter alignment.**  The original unfold minted fresh
  variables from the process-global counter; a replay that minted none
  would leave the counter behind an uncached run and desynchronize
  every later fresh name -- breaking the cache-on/off verdict
  differential, whose failure messages embed heap names.  The memo
  therefore records the counter window the original consumed;  replay
  advances the counter by the same width and maps each stored
  in-window name positionally onto the replay window, which is exactly
  the set of names ``fresh_var`` would have produced.

Only *successful* unfolds are cached.  Negative outcomes
(``AnalysisStuck``) are cheap to recompute and their messages embed
namespace-specific names; recomputing keeps diagnostics byte-identical
with the uncached run.

The fold memo is deliberately identity-only: it records keys of states
a prior ``fold_state`` call returned unchanged ("no rule applies"),
which is an alpha/order-invariant property, and replays by doing
nothing.  Caching *productive* folds would have to replay a mutation
sequence; identity hits already remove the bulk of the cost because
the engine folds at every exit and back edge, and almost all of those
states are already folded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs, perf
from repro.logic.canonical import (
    CanonicalForm,
    UntranslatableWitness,
    canonicalize,
)
from repro.logic.heapnames import (
    GlobalLoc,
    Var,
    advance_fresh_counter,
    fresh_counter_value,
)
from repro.logic.state import AbstractState
from repro.logic.stateset import content_key

__all__ = [
    "unfold_memo_key",
    "lookup_unfold",
    "store_unfold",
    "fold_memo_key",
    "lookup_fold_identity",
    "store_fold_identity",
]


def _report(name: str) -> None:
    metrics = obs.METRICS
    if metrics.enabled:
        metrics.inc(name)


# ----------------------------------------------------------------------
# Unfold memo
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _StoredResult:
    """One result state plus the renaming recipe for its Var roots.

    ``renames`` maps each Var root occurring anywhere in ``state`` to
    either ``("idx", i)`` -- canonical slot *i* of the input form -- or
    ``("fresh", hint, n)`` -- the *n*-th fresh name of the recorded
    counter window, to be re-aimed at the replay window.
    """

    state: AbstractState
    renames: tuple


@dataclass(frozen=True)
class _UnfoldEntry:
    results: tuple[_StoredResult, ...]
    fresh_base: int
    fresh_used: int
    stats: tuple  # (case, pred, cases, exact, below) for re-emission


def unfold_memo_key(
    case: str, state: AbstractState, focus, env, extra=None
) -> tuple | None:
    """Cache key for one unfold call, or None when not keyable.

    *focus* (and the optional *extra* address) are encoded through the
    state's canonical form, so alpha-variant states asking about the
    corresponding location produce the same key.
    """
    if not perf.UNFOLD_CACHE.enabled:
        return None
    form = canonicalize(state)
    try:
        tokens = [form.encode_name(focus)]
        if extra is not None:
            tokens.append(form.encode_name(extra))
    except UntranslatableWitness:
        return None
    return (case, form.key, tuple(tokens), env.cache_token())


def lookup_unfold(key: tuple, state: AbstractState) -> list[AbstractState] | None:
    """Replay a cached unfold against *state*, or None on miss."""
    hit = perf.UNFOLD_CACHE.lookup(key)
    if hit is None:
        _report("unfold.cache.misses")
        return None
    entry: _UnfoldEntry = hit[0]
    form = canonicalize(state)
    replay_base = advance_fresh_counter(entry.fresh_used)
    results = []
    for stored in entry.results:
        results.append(
            _replay_state(stored, form, entry.fresh_base, replay_base)
        )
    _report("unfold.cache.hits")
    case, pred, cases, exact, below = entry.stats
    _record = _unfold_recorder()
    _record(case, pred, cases, exact, below)
    return results


def _unfold_recorder():
    from repro.analysis.unfold import _record_unfold

    return _record_unfold


def _replay_state(
    stored: _StoredResult,
    form: CanonicalForm,
    fresh_base: int,
    replay_base: int,
) -> AbstractState:
    state = stored.state.copy()
    mapping = []
    for root, how in stored.renames:
        if how[0] == "idx":
            target = form.roots[how[1]]
        else:
            _, hint, n = how
            target = Var(f"{hint}{replay_base + n}")
        if target != root:
            mapping.append((root, target))
    if not mapping:
        return state
    targets = {target for _, target in mapping}
    sources = {root for root, _ in mapping}
    if targets & sources:
        # Namespaces overlap: rename through unique temporaries first.
        for i, (root, _) in enumerate(mapping):
            state.rename(root, Var(f"~memo{i}"))
        for i, (_, target) in enumerate(mapping):
            state.rename(Var(f"~memo{i}"), target)
    else:
        for root, target in mapping:
            state.rename(root, target)
    return state


def store_unfold(
    key: tuple,
    state: AbstractState,
    results: list[AbstractState],
    fresh_base: int,
    stats: tuple,
) -> None:
    """Record a successful unfold of *state* for later replay.

    Refuses (silently) when some result mentions a Var root that is
    neither an input root nor a fresh name from the recorded counter
    window -- such a name could not be translated at replay time.
    """
    form = canonicalize(state)
    fresh_used = fresh_counter_value() - fresh_base
    stored_results = []
    for result in results:
        renames = _result_renames(result, form, fresh_base, fresh_used)
        if renames is None:
            return
        stored_results.append(_StoredResult(result.copy(), renames))
    perf.UNFOLD_CACHE.store(
        key,
        _UnfoldEntry(tuple(stored_results), fresh_base, fresh_used, stats),
    )


def _result_renames(
    result: AbstractState, form: CanonicalForm, fresh_base: int, fresh_used: int
) -> tuple | None:
    renames = []
    for root in canonicalize(result).index:
        if not isinstance(root, Var):
            continue
        slot = form.index.get(root)
        if slot is not None:
            renames.append((root, ("idx", slot)))
            continue
        parsed = _parse_fresh(root.name, fresh_base, fresh_used)
        if parsed is None:
            return None
        renames.append((root, ("fresh",) + parsed))
    return tuple(renames)


def _parse_fresh(name: str, fresh_base: int, fresh_used: int) -> tuple | None:
    """Split ``hint<N>`` and check N lies in the recorded window.

    Returns ``(hint, offset)`` with ``offset`` 1-based inside the
    window, so the replay name is ``hint + (replay_base + offset)``.
    """
    i = len(name)
    while i > 0 and name[i - 1].isdigit():
        i -= 1
    if i == len(name) or i == 0:
        return None
    n = int(name[i:])
    if fresh_base < n <= fresh_base + fresh_used:
        return (name[:i], n - fresh_base)
    return None


# ----------------------------------------------------------------------
# Fold identity memo
# ----------------------------------------------------------------------


def fold_memo_key(
    state: AbstractState, env, protect, keep_registers: bool
) -> tuple | None:
    """Cache key for one ``fold_state`` call, or None when disabled.

    The key is the state's *exact* content (spatial and pure content
    tokens, register frame, anchors) plus the fold parameters -- not
    the canonical form.  Profiling showed the canonical key's greedy
    ordering costing more than the identity folds it skipped; the
    content tokens are revision-memoized on the formula objects, so
    the key is a handful of dict freezes at worst and three integer
    compares when the state has not mutated since the last token.
    Exact keys are a sound refinement: equal keys mean equal states
    (same names), for which the identity-fold property transfers
    trivially.  The engine re-folds copies of states along loop
    revisits and exit paths, and copies share names, so exactness
    keeps nearly all of the hits alpha-keys would see.
    """
    if not perf.FOLD_CACHE.enabled:
        return None
    return (
        content_key(state),
        frozenset(protect),
        bool(keep_registers),
        env.cache_token(),
    )


def lookup_fold_identity(key: tuple) -> bool:
    """True when *key* is a known identity fold (state already folded)."""
    if perf.FOLD_CACHE.lookup(key) is None:
        _report("fold.cache.misses")
        return False
    _report("fold.cache.hits")
    return True


def store_fold_identity(key: tuple) -> None:
    perf.FOLD_CACHE.store(key, True)
