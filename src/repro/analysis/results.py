"""Analysis results: inferred data types, timing breakdown, statistics.

This is the information Table 4 of the paper reports per benchmark:
the recursive data type the analysis inferred, the instruction count,
and the time split between the pointer-analysis pre-pass, slicing, and
the shape phase proper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.predicates import PredicateDef, PredicateEnv
from repro.logic.state import AbstractState
from repro.obs import with_legacy_aliases
from repro.analysis.resilience import STORE_INVALID, Diagnostic

__all__ = ["AnalysisResult"]


@dataclass
class AnalysisResult:
    """Everything a run of the full pipeline produces."""

    benchmark: str
    instruction_count: int
    pointer_seconds: float
    slicing_seconds: float
    shape_seconds: float
    env: PredicateEnv
    exit_states: list[AbstractState]
    kept_instructions: int = 0
    pruned_instructions: int = 0
    failure: str | None = None
    #: ``"strict"`` or ``"degrade"`` -- the mode the run used.
    mode: str = "strict"
    #: Structured record of every failure, contained or fatal.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: How many engine attempts ran (1 unless retry escalation fired).
    attempts: int = 1
    #: Budget accounting (states, peak depth, elapsed, caps).
    budget_stats: dict = field(default_factory=dict)
    stats: dict[str, int] = field(default_factory=dict)
    #: verified loop invariants: (procedure, header index) -> states
    loop_invariants: dict[tuple[str, int], list[AbstractState]] = field(
        default_factory=dict
    )
    #: procedure summaries: name -> list of (entry state, exit states)
    summaries: dict[str, list[tuple[AbstractState, list[AbstractState]]]] = (
        field(default_factory=dict)
    )

    @property
    def succeeded(self) -> bool:
        return self.failure is None

    @property
    def degraded(self) -> bool:
        """The run completed, but only by containing failures or by
        escalating past the configured unroll bound.

        ``store-invalid`` diagnostics are excluded: a rejected durable-
        store entry degrades to a cache *miss* -- the analysis recomputes
        exactly what it would have computed with no store attached -- so
        it must not degrade the *verdict* (store-on and store-off runs
        must agree on outcomes, which the crucible differential gate
        enforces)."""
        return self.succeeded and any(
            d.recovered and d.code != STORE_INVALID for d in self.diagnostics
        )

    @property
    def outcome(self) -> str:
        """``"pass"``, ``"degraded"`` or ``"failed"`` -- the coarse
        classification batch drivers aggregate on."""
        if not self.succeeded:
            return "failed"
        return "degraded" if self.degraded else "pass"

    def to_record(self) -> dict:
        """JSON-serializable summary for batch reports and bench logs."""
        return {
            "benchmark": self.benchmark,
            "outcome": self.outcome,
            "mode": self.mode,
            "failure": self.failure,
            "attempts": self.attempts,
            "instruction_count": self.instruction_count,
            "pointer_seconds": round(self.pointer_seconds, 6),
            "slicing_seconds": round(self.slicing_seconds, 6),
            "shape_seconds": round(self.shape_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "recursive_predicates": len(self.recursive_predicates()),
            "loop_invariants": len(self.loop_invariants),
            "summaries": sum(len(v) for v in self.summaries.values()),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "budget": dict(self.budget_stats),
            # Records always carry both the canonical dotted metric
            # names and the legacy flat keys, whichever the result was
            # built with (idempotent either way).
            "stats": with_legacy_aliases(dict(self.stats)),
        }

    @property
    def total_seconds(self) -> float:
        return self.pointer_seconds + self.slicing_seconds + self.shape_seconds

    def predicates(self) -> list[PredicateDef]:
        return list(self.env)

    def recursive_predicates(self) -> list[PredicateDef]:
        """Predicates with at least one recursive call (the inferred
        data types of Table 4's second column)."""
        return [d for d in self.env if d.rec_calls]

    def describe_invariants(self) -> str:
        """Human-readable dump of the inferred loop invariants and
        procedure summaries (everything the paper says the analysis
        infers from scratch)."""
        lines = []
        for (proc, header), states in sorted(
            self.loop_invariants.items(), key=lambda kv: kv[0]
        ):
            lines.append(f"loop {proc}@{header}:")
            for state in states:
                lines.append(f"    {state}")
        for name, entries in sorted(self.summaries.items()):
            for entry, exits in entries:
                lines.append(f"proc {name}:")
                lines.append(f"    requires  {entry}")
                for exit_state in exits:
                    lines.append(f"    ensures   {exit_state}")
        return "\n".join(lines)

    def describe(self) -> str:
        lines = [f"benchmark: {self.benchmark}"]
        lines.append(f"#insts:    {self.instruction_count}")
        lines.append(
            "time (s):  pointer={:.4f} slicing={:.4f} shape={:.4f}".format(
                self.pointer_seconds, self.slicing_seconds, self.shape_seconds
            )
        )
        if self.failure is not None:
            lines.append(f"FAILED: {self.failure}")
        else:
            if self.degraded:
                lines.append(
                    f"DEGRADED: {sum(d.recovered for d in self.diagnostics)} "
                    f"contained failure(s)"
                )
            lines.append("inferred data types:")
            for definition in self.recursive_predicates():
                lines.append(f"  {definition}")
        for diagnostic in self.diagnostics:
            lines.append(f"  diagnostic: {diagnostic}")
        return "\n".join(lines)
