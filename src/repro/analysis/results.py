"""Analysis results: inferred data types, timing breakdown, statistics.

This is the information Table 4 of the paper reports per benchmark:
the recursive data type the analysis inferred, the instruction count,
and the time split between the pointer-analysis pre-pass, slicing, and
the shape phase proper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.predicates import PredicateDef, PredicateEnv
from repro.logic.state import AbstractState

__all__ = ["AnalysisResult"]


@dataclass
class AnalysisResult:
    """Everything a run of the full pipeline produces."""

    benchmark: str
    instruction_count: int
    pointer_seconds: float
    slicing_seconds: float
    shape_seconds: float
    env: PredicateEnv
    exit_states: list[AbstractState]
    kept_instructions: int = 0
    pruned_instructions: int = 0
    failure: str | None = None
    stats: dict[str, int] = field(default_factory=dict)
    #: verified loop invariants: (procedure, header index) -> states
    loop_invariants: dict[tuple[str, int], list[AbstractState]] = field(
        default_factory=dict
    )
    #: procedure summaries: name -> list of (entry state, exit states)
    summaries: dict[str, list[tuple[AbstractState, list[AbstractState]]]] = (
        field(default_factory=dict)
    )

    @property
    def succeeded(self) -> bool:
        return self.failure is None

    @property
    def total_seconds(self) -> float:
        return self.pointer_seconds + self.slicing_seconds + self.shape_seconds

    def predicates(self) -> list[PredicateDef]:
        return list(self.env)

    def recursive_predicates(self) -> list[PredicateDef]:
        """Predicates with at least one recursive call (the inferred
        data types of Table 4's second column)."""
        return [d for d in self.env if d.rec_calls]

    def describe_invariants(self) -> str:
        """Human-readable dump of the inferred loop invariants and
        procedure summaries (everything the paper says the analysis
        infers from scratch)."""
        lines = []
        for (proc, header), states in sorted(
            self.loop_invariants.items(), key=lambda kv: kv[0]
        ):
            lines.append(f"loop {proc}@{header}:")
            for state in states:
                lines.append(f"    {state}")
        for name, entries in sorted(self.summaries.items()):
            for entry, exits in entries:
                lines.append(f"proc {name}:")
                lines.append(f"    requires  {entry}")
                for exit_state in exits:
                    lines.append(f"    ensures   {exit_state}")
        return "\n".join(lines)

    def describe(self) -> str:
        lines = [f"benchmark: {self.benchmark}"]
        lines.append(f"#insts:    {self.instruction_count}")
        lines.append(
            "time (s):  pointer={:.4f} slicing={:.4f} shape={:.4f}".format(
                self.pointer_seconds, self.slicing_seconds, self.shape_seconds
            )
        )
        if self.failure is not None:
            lines.append(f"FAILED: {self.failure}")
        else:
            lines.append("inferred data types:")
            for definition in self.recursive_predicates():
                lines.append(f"  {definition}")
        return "\n".join(lines)
