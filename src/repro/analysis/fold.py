"""Folding heap back into recursive predicates: ``foldT`` (paper, §4).

Folding restores global invariants after local updates: it looks for
locations not pointed to by any live register and merges them into a
neighbouring data structure.  Unlike unfolding, no case analysis is
needed -- absorbing explicit cells into a predicate can never create
implicit aliasing.  It works from two directions:

* *bottom-up*: a truncation point ``t`` of ``A(h..; ..t..)`` whose
  explicit cells fit ``A``'s definition body is absorbed; sub-structure
  roots that dangle (no cells yet -- e.g. the frontier slot of an
  array-based builder) become new truncation points of the enclosing
  instance, and sub-instances rooted at the cells' targets are consumed
  after their dictated arguments unify with the recorded ones.  This
  generalizes the paper's list rule ``list(p, k) * k |-> q => list(p, q)``.
* *top-down*: a location sitting atop a structure whose cells fit the
  body and whose sub-structure targets all root instances (or are null)
  is wrapped into a new instance -- the generalization of
  ``p |-> k * list(k, q) => list(p, q)``.

Cutpoints (and any location a live register still needs) are protected
from folding, as required by the interprocedural analysis (§5.2).
"""

from __future__ import annotations

from repro import obs
from repro.analysis import memo
from repro.logic.assertions import PointsTo, PredInstance, Raw
from repro.logic.heapnames import HeapName, Var
from repro.logic.predicates import (
    AnyArg,
    ArgExpr,
    NullArg,
    ParamArg,
    PredicateDef,
    PredicateEnv,
    RecTarget,
)
from repro.logic.state import AbstractState
from repro.logic.symvals import NULL_VAL, NullVal, OffsetVal, Opaque, SymVal

__all__ = ["fold_state", "normalize_nulls"]


def fold_state(
    state: AbstractState,
    env: PredicateEnv,
    protect: frozenset[HeapName] = frozenset(),
    keep_registers: bool = True,
) -> AbstractState:
    """Fold *state* in place until no rule applies; returns it.

    ``protect`` lists locations that must stay explicit (cutpoints) --
    they are neither absorbed nor wrapped.  When ``keep_registers`` is
    set, locations held by a register (callers pass states whose dead
    registers have been dropped -- the paper's "not pointed to by any
    live register") are protected from *absorption into the interior*
    of a structure; they may still become the root of an instance or a
    truncation point, both of which keep the location addressable.

    When a fold cache is active, states a previous call returned
    unchanged are recognized by canonical key and skipped outright:
    the engine folds at every exit and back edge, and most of those
    states are already in folded form ("no rule applies" is an
    alpha-invariant property, so the identity replay is exact).
    """
    key = memo.fold_memo_key(state, env, protect, keep_registers)
    if key is not None and memo.lookup_fold_identity(key):
        metrics = obs.METRICS
        if metrics.enabled:
            metrics.inc("fold.calls")
        return state
    before = (
        (state.spatial.revision, state.pure.revision, dict(state.rho), state.anchors)
        if key is not None
        else None
    )
    normalize_nulls(state)
    hard = set(protect)
    soft = set(protect)
    if keep_registers:
        for value in state.rho.values():
            resolved = state.resolve(value)
            if isinstance(resolved, (NullVal, Opaque)):
                continue
            if isinstance(resolved, OffsetVal):
                resolved = resolved.base
            soft.add(resolved)
    absorbed = wrapped = 0
    changed = True
    while changed:
        changed = _fold_bottom_up(state, env, soft)
        if changed:
            absorbed += 1
        else:
            changed = _fold_top_down(state, env, hard, soft)
            if changed:
                wrapped += 1
        normalize_nulls(state)
    collect_pure_garbage(state)
    metrics = obs.METRICS
    if metrics.enabled:
        metrics.inc("fold.calls")
        if absorbed:
            metrics.inc("fold.absorbed", absorbed)
        if wrapped:
            metrics.inc("fold.wrapped", wrapped)
    if before is not None and before == (
        state.spatial.revision,
        state.pure.revision,
        state.rho,
        state.anchors,
    ):
        memo.store_fold_identity(key)
    return state


def collect_pure_garbage(state: AbstractState) -> None:
    """Drop pure condition atoms about names that no longer occur
    anywhere (folded away); they can never be consulted again and would
    otherwise accumulate across loop iterations."""
    alive = state.heap_names()
    for offset_val in state.pure.aliases():
        alive.add(offset_val.base)
    for atom in state.pure.atoms():
        keep = True
        for side in (atom.lhs, atom.rhs):
            if isinstance(side, (NullVal, Opaque)):
                continue
            name = side.base if isinstance(side, OffsetVal) else side
            if name not in alive:
                keep = False
        if not keep:
            state.pure.discard(atom)


def normalize_nulls(state: AbstractState) -> None:
    """Remove base-case instances (null root) and null truncation points."""
    for atom in list(state.spatial):
        if not isinstance(atom, PredInstance):
            continue
        if isinstance(atom.root, NullVal) and not atom.truncs:
            state.spatial.remove(atom)
        elif any(isinstance(t, NullVal) for t in atom.truncs):
            state.spatial.replace(
                atom,
                atom.with_truncs(
                    tuple(t for t in atom.truncs if not isinstance(t, NullVal))
                ),
            )


# ----------------------------------------------------------------------


def _observed_params(
    state: AbstractState, definition: PredicateDef, loc: HeapName
) -> tuple[dict[int, SymVal], dict[int, SymVal], bool] | None:
    """Match *loc*'s explicit cells against the definition body.

    Returns (param values by index, sub-structure targets by rec-call
    index, complete) or None when some required field is missing or
    contradicts the body.
    """
    params: dict[int, SymVal] = {0: loc}
    targets: dict[int, SymVal] = {}
    for spec in definition.fields:
        atom = state.spatial.points_to(loc, spec.field)
        if atom is None:
            return None
        value = state.resolve(atom.target)
        target = spec.target
        if isinstance(target, NullArg):
            if not isinstance(value, NullVal):
                return None
        elif isinstance(target, ParamArg):
            if target.index in params and params[target.index] != value:
                return None
            params[target.index] = value
        elif isinstance(target, RecTarget):
            targets[target.index] = value
        elif isinstance(target, AnyArg):
            pass
    return params, targets, True


def _eval_call_args(
    definition: PredicateDef,
    call_index: int,
    params: dict[int, SymVal],
    targets: dict[int, SymVal],
) -> list[SymVal] | None:
    values: list[SymVal] = []
    for expr in definition.rec_calls[call_index].args:
        value = _eval_arg(expr, params, targets)
        if value is None:
            return None
        values.append(value)
    return values


def _eval_arg(
    expr: ArgExpr, params: dict[int, SymVal], targets: dict[int, SymVal]
) -> SymVal | None:
    if isinstance(expr, NullArg):
        return NULL_VAL
    if isinstance(expr, ParamArg):
        return params.get(expr.index)
    if isinstance(expr, RecTarget):
        return targets.get(expr.index)
    return None


def _try_absorb(
    state: AbstractState,
    env: PredicateEnv,
    definition: PredicateDef,
    loc: HeapName,
    guarded: set[HeapName],
) -> tuple[list[PredInstance], list[HeapName], dict[int, SymVal]] | None:
    """Can *loc*'s cells be absorbed as one unfolding of *definition*?

    Returns (consumed sub-instances, new dangling truncation points,
    observed params) without mutating the state, or None.
    """
    present = {atom.field for atom in state.spatial.points_to_from(loc)}
    if present != {spec.field for spec in definition.fields}:
        return None  # the cell's fields must match the body exactly
    observed = _observed_params(state, definition, loc)
    if observed is None:
        return None
    params, targets, _ = observed
    consumed: list[PredInstance] = []
    dangling: list[HeapName] = []
    for i, call in enumerate(definition.rec_calls):
        value = targets[i]
        if isinstance(value, NullVal):
            continue
        if isinstance(value, (OffsetVal, Opaque)):
            return None
        if value in guarded:
            # A protected location (cutpoint / live register target)
            # becomes a truncation point: its sub-structure is cut out.
            dangling.append(value)
            continue
        sub = state.spatial.instance_rooted_at(value)
        if sub is not None:
            if sub.pred != call.pred:
                return None
            expected = _eval_call_args(definition, i, params, targets)
            if expected is None:
                return None
            for want, have in zip(expected, sub.args[1:]):
                have = state.resolve(have)
                # A dangling argument unifies later (during the merge);
                # a definite mismatch blocks the fold.
                if want != have and not _either_dangling(state, want, have):
                    return None
            consumed.append(sub)
            continue
        if state.spatial.is_allocated(value):
            return None  # inner structure must fold first
        dangling.append(value)
    return consumed, dangling, params


def _either_dangling(state: AbstractState, a: SymVal, b: SymVal) -> bool:
    for value in (a, b):
        if isinstance(value, Var) and not state.spatial.is_allocated(value):
            return True
    return False


def _consume(
    state: AbstractState,
    definition: PredicateDef,
    loc: HeapName,
    consumed: list[PredInstance],
    params: dict[int, SymVal],
) -> tuple[HeapName, ...]:
    """Remove *loc*'s cells and the consumed sub-instances; returns the
    truncation points inherited from the consumed instances."""
    from repro.analysis.unfold import unify_values

    inherited: list[HeapName] = []
    targets: dict[int, SymVal] = {}
    for spec in definition.fields:
        atom = state.spatial.points_to(loc, spec.field)
        if isinstance(spec.target, RecTarget):
            targets[spec.target.index] = state.resolve(atom.target)
        state.spatial.remove(atom)
    raw = state.spatial.raw_at(loc)
    if raw is not None:
        state.spatial.remove(raw)
    for i, call in enumerate(definition.rec_calls):
        value = targets.get(i)
        sub = state.spatial.instance_rooted_at(value) if value is not None else None
        if sub is None or sub not in consumed:
            continue
        expected = _eval_call_args(definition, i, params, targets)
        state.spatial.remove(sub)
        inherited.extend(sub.truncs)
        if expected is not None:
            for want, have in zip(expected, sub.args[1:]):
                unify_values(state, want, have)
    return tuple(inherited)


def _reachable_preds(env: PredicateEnv, name: str) -> frozenset[str]:
    """Predicates reachable through the recursive calls of *name*'s
    definition (including itself)."""
    reachable = {name}
    frontier = [name]
    while frontier:
        current = frontier.pop()
        if current not in env:
            continue
        for call in env[current].rec_calls:
            if call.pred not in reachable:
                reachable.add(call.pred)
                frontier.append(call.pred)
    return frozenset(reachable)


def _fold_bottom_up(
    state: AbstractState, env: PredicateEnv, guarded: set[HeapName]
) -> bool:
    """Absorb one truncation point whose cells fit its host's body, or
    merge a truncation point that roots a folded instance of the same
    predicate (the inverse of the exact-placement unfolding)."""
    for host in state.spatial.pred_instances():
        if not host.truncs or host.pred not in env:
            continue
        definition = env[host.pred]
        for trunc in host.truncs:
            if trunc in guarded:
                continue
            sub = state.spatial.instance_rooted_at(trunc)
            if sub is not None and sub is not host and (
                sub.pred in _reachable_preds(env, host.pred)
            ):
                # The cut-out piece may be a sub-structure of the host
                # itself or of any structure nested inside it (e.g. a
                # cursor into the waiting list of a tree-of-lists).
                state.spatial.remove(sub)
                new_truncs = tuple(
                    t for t in host.truncs if t != trunc
                ) + tuple(sub.truncs)
                state.spatial.replace(host, host.with_truncs(new_truncs))
                return True
            if not state.spatial.points_to_from(trunc):
                continue
            plan = _try_absorb(state, env, definition, trunc, guarded)
            if plan is None:
                continue
            consumed, dangling, params = plan
            root = host.root
            inherited = _consume(state, definition, trunc, consumed, params)
            # Unification inside _consume may have rewritten the host
            # atom; re-locate it through its root.
            located = state.spatial.instance_rooted_at(state.resolve(root))
            if located is None:
                return True  # host vanished (degenerate); treat as progress
            new_truncs = (
                tuple(t for t in located.truncs if t != trunc)
                + tuple(dangling)
                + inherited
            )
            state.spatial.replace(located, located.with_truncs(new_truncs))
            return True
    return False


def _fold_top_down(
    state: AbstractState,
    env: PredicateEnv,
    hard: set[HeapName],
    soft: set[HeapName],
) -> bool:
    """Wrap one location sitting atop folded sub-structures.

    Register-held locations may be wrapped (the instance root stays
    addressable); only hard-protected cutpoints are skipped.  Interior
    targets that are register-held become truncation points (``soft``)."""
    sources: dict = {}
    for atom in state.spatial.points_to_atoms():
        sources.setdefault(atom.src, []).append(atom.field)
    for loc in sorted(sources, key=str, reverse=True):
        if loc in hard:
            continue
        for definition in env.candidates_for_fields(tuple(sources[loc])):
            plan = _try_absorb(state, env, definition, loc, soft)
            if plan is None:
                continue
            consumed, dangling, params = plan
            if loc in soft and not consumed:
                # A live (register-held) cell is only wrapped when the
                # wrap actually absorbs sub-structures; wrapping a bare
                # frontier cell would just be unfolded again on the next
                # store, leaking orphan instances each round.
                continue
            inherited = _consume(state, definition, loc, consumed, params)
            args = tuple(
                state.resolve(params.get(j, NULL_VAL))
                for j in range(definition.arity)
            )
            instance = PredInstance(
                definition.name, args, tuple(dangling) + inherited
            )
            state.spatial.add(instance)
            return True
    return False
