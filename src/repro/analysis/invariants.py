"""Loop-invariant inference via recursion synthesis (paper, §3).

``normalize_state`` is the paper's *normalize* rule: it runs recursion
synthesis over the heap of a state that has been symbolically executed
through a bounded number of loop iterations, folds the trace into the
synthesized truncated predicate instances, and then applies the generic
``foldT`` to absorb whatever remains.  The result is the *hypothesized*
invariant; soundness comes from the engine's verification protocol
(execute the loop body once more from the invariant and check that
every state arriving back at the header folds to something subsumed by
it -- the "invariant derives itself" check).

Structure held by a live register stays addressable: an interior
location a register still points to becomes a truncation point of the
synthesized instance and keeps its explicit cells (exactly the
``A(root..; cursor) * A(cursor..)`` shape of the paper's examples).
"""

from __future__ import annotations

from repro.ir.values import Register
from repro.logic.assertions import PointsTo, PredInstance, Raw
from repro.logic.heapnames import HeapName
from repro.logic.predicates import PredicateEnv
from repro.logic.state import AbstractState
from repro.logic.symvals import NullVal, OffsetVal, Opaque
from repro.synthesis.synthesize import SynthesizedInstance, synthesize_forest
from repro.synthesis.terms import PredTerm, StarTerm, Term
from repro.synthesis.translate import translate_heap
from repro.analysis.fold import fold_state, normalize_nulls

__all__ = ["normalize_state", "guarded_locations"]


def guarded_locations(
    state: AbstractState, live: set[Register] | None
) -> frozenset[HeapName]:
    """Heap locations a live register can still reach directly."""
    guarded: set[HeapName] = set()
    for register, value in state.rho.items():
        if live is not None and register not in live:
            continue
        resolved = state.resolve(value)
        if isinstance(resolved, OffsetVal):
            resolved = resolved.base
        if not isinstance(resolved, (NullVal, Opaque)):
            guarded.add(resolved)
    return frozenset(guarded)


def normalize_state(
    state: AbstractState,
    env: PredicateEnv,
    live: set[Register] | None = None,
    hint: str = "P",
    protect: frozenset[HeapName] = frozenset(),
) -> AbstractState:
    """Synthesize + fold *state* in place (the normalize rule).

    ``live`` restricts the register file (dead registers are dropped so
    their targets can fold); ``protect`` lists cutpoints that must stay
    explicit.
    """
    normalize_nulls(state)
    if live is not None:
        state.rho = {r: v for r, v in state.rho.items() if r in live}
    guarded = guarded_locations(state, None) | protect
    # Fold with the predicates already in T first: a structure an
    # earlier invariant explains should not spawn a path-specialized
    # sibling definition.  Only what stays unfolded feeds synthesis.
    fold_state(state, env, protect=protect, keep_registers=True)
    for term in translate_heap(state.spatial):
        for synthesized in synthesize_forest(term, env, hint):
            _install(state, term, synthesized, guarded)
    fold_state(state, env, protect=protect, keep_registers=True)
    return state


def _install(
    state: AbstractState,
    term: Term,
    synthesized: SynthesizedInstance,
    guarded: frozenset[HeapName],
) -> None:
    """Fold the portion of the trace *synthesized* covers.

    Locations a live register reaches stay out: an interior guarded
    location truncates the instance and keeps its cells (its own
    sub-structures stay explicit too, to be folded separately by
    ``fold_state``); a guarded location that roots an already-folded
    sub-structure keeps its instance and truncates the new one.
    """
    sub = _subterm_of(term, synthesized)
    if sub is None:
        return
    root = synthesized.args[0]
    kept: set[HeapName] = set()
    extra_truncs: list[HeapName] = []

    def walk(node: Term, under_cut: bool) -> None:
        if isinstance(node, StarTerm):
            if node.loc is not None:
                cut_here = (
                    not under_cut and node.loc in guarded and node.loc != root
                )
                if cut_here:
                    extra_truncs.append(node.loc)
                    under_cut = True
                if under_cut:
                    kept.add(node.loc)
            for target in node.targets:
                walk(target, under_cut)
        elif isinstance(node, PredTerm) and node.loc is not None:
            if not under_cut and node.loc in guarded and node.loc != root:
                extra_truncs.append(node.loc)
                kept.add(node.loc)
            elif under_cut:
                kept.add(node.loc)

    walk(sub, False)

    for loc in synthesized.covered_sources - kept:
        for atom in state.spatial.points_to_from(loc):
            state.spatial.remove(atom)
        raw = state.spatial.raw_at(loc)
        if raw is not None:
            state.spatial.remove(raw)
    for loc in synthesized.covered_instance_roots - kept:
        instance = state.spatial.instance_rooted_at(loc)
        if instance is not None:
            state.spatial.remove(instance)
    truncs = tuple(
        t for t in synthesized.truncs if t not in kept
    ) + tuple(extra_truncs)
    state.spatial.add(
        PredInstance(synthesized.definition.name, synthesized.args, truncs)
    )


def _subterm_of(term: Term, synthesized: SynthesizedInstance) -> Term | None:
    """Locate the subtree the synthesis result describes (it may be a
    proper subtree when the recursion does not start at the root)."""
    root = synthesized.args[0]
    if isinstance(term, StarTerm):
        if term.loc == root:
            return term
        for target in term.targets:
            found = _subterm_of(target, synthesized)
            if found is not None:
                return found
    return None
