"""Validation-on-read for the durable store.

Nothing read from disk is trusted.  The checksum (the content digest
that names each object) only proves the bytes are the bytes that were
written; it does not prove they *mean* anything, that they were written
by a compatible code version, or that installing them into the live
predicate environment is sound.  A stored summary is an input to a
soundness-critical decision -- "skip analyzing this procedure" -- so a
wrong entry that slipped through would silently change verdicts.  The
store therefore re-earns every entry before use, and every failed check
degrades the lookup to a miss (plus a structured ``store-invalid``
diagnostic), never to a wrong answer:

1. **Schema**: the payload's schema number must match this build's.
2. **Decode + re-key**: the entry state, every exit state, and every
   cutpoint must decode through the canonical-key grammar, and
   re-canonicalizing each decoded state must reproduce the stored key
   byte-for-byte.  This catches any corruption that preserves JSON
   well-formedness but changes meaning, and any drift in the canonical
   form between writer and reader.
3. **Predicate environment parity**: for each bundled definition that
   already exists in the live environment under the same name, the
   structures must match exactly (a mismatch means the entry predates
   an environment change -- stale).  A bundled definition whose
   structure exists in the live environment under a *different* name is
   name drift and is also rejected: installing it would fork the
   deterministic name sequence the differential gate relies on.
4. **Self-derivation**: each genuinely new definition must pass the
   synthesizer's own sanity loop -- unfolding its recursive case at
   fresh arguments and folding the resulting heap back (in a scratch
   environment built from the bundle alone) must yield exactly one
   complete instance of the definition at the unfold root.  A
   definition that cannot re-derive itself is not installed.
"""

from __future__ import annotations

from repro.analysis.fold import fold_state
from repro.logic.assertions import PredInstance
from repro.logic.canonical import canonical_key
from repro.logic.predicates import PredicateDef, PredicateEnv
from repro.logic.state import AbstractState, AnalysisStuck
from repro.logic.heapnames import fresh_var
from repro.store.codec import (
    decode_cutpoints,
    decode_predicate,
    decode_state,
)

__all__ = ["InvalidStoreEntry", "ValidatedEntry", "validate_summary_payload"]


class InvalidStoreEntry(Exception):
    """A stored entry failed validation-on-read (degrades to a miss)."""


class ValidatedEntry:
    """A fully validated, decoded summary ready for the engine."""

    __slots__ = ("entry", "exits", "cutpoints", "new_defs", "counter")

    def __init__(self, entry, exits, cutpoints, new_defs, counter):
        self.entry: AbstractState = entry
        self.exits: list[AbstractState] = exits
        self.cutpoints: frozenset = cutpoints
        self.new_defs: list[PredicateDef] = new_defs
        self.counter: int = counter


def validate_summary_payload(
    payload: dict,
    *,
    callee: str,
    entry_key: str,
    schema: int,
    env: PredicateEnv,
    resolve_blob,
    cone: str = "",
) -> ValidatedEntry:
    """Run every check in the module docstring over *payload*.

    *resolve_blob* maps a predicate digest to its verified bytes (the
    disk layer's ``get_object``); it may raise ``StoreCorrupt``/OSError,
    which the caller maps to the appropriate containment path.  Raises
    :class:`InvalidStoreEntry` on any semantic failure.
    """
    if not isinstance(payload, dict):
        raise InvalidStoreEntry("payload is not an object")
    if payload.get("schema") != schema:
        raise InvalidStoreEntry(
            f"stale schema {payload.get('schema')!r} (expected {schema})"
        )
    # The lookup digest covers callee + cone + entry key, so a mismatch
    # here means a digest collision or a mis-indexed object -- reject.
    if payload.get("callee") != callee or payload.get("entry") != entry_key:
        raise InvalidStoreEntry("payload does not match its lookup key")
    if payload.get("cone", "") != cone:
        raise InvalidStoreEntry(
            "payload's callee-cone digest does not match this program"
        )

    try:
        entry_state, entry_roots = decode_state(entry_key)
        if canonical_key(entry_state) != entry_key:
            raise InvalidStoreEntry("entry state fails re-canonicalization")
        cutpoints = decode_cutpoints(
            list(payload["cutpoints"]), entry_roots
        )
        exits = []
        for item in payload["exits"]:
            links = {
                int(exit_index): entry_roots[int(entry_index)]
                for exit_index, entry_index in item["links"].items()
            }
            exit_state, _ = decode_state(item["key"], links)
            if canonical_key(exit_state) != item["key"]:
                raise InvalidStoreEntry("exit state fails re-canonicalization")
            exits.append(exit_state)
        counter = int(payload["counter"])
        defs = payload["defs"]
        if not isinstance(defs, dict):
            raise InvalidStoreEntry("malformed predicate table")
        bundle = _decode_bundle(defs, resolve_blob)
    except InvalidStoreEntry:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise InvalidStoreEntry(f"undecodable entry: {exc}") from exc

    new_defs = _check_bundle_against_env(bundle, env)
    _self_derivation_check(new_defs, bundle)
    return ValidatedEntry(entry_state, exits, cutpoints, new_defs, counter)


def _decode_bundle(defs: dict, resolve_blob) -> "list[PredicateDef]":
    """Resolve and decode the bundled environment snapshot, in the
    recording run's installation order (the payload preserves it)."""
    import json

    bundle = []
    for name, digest in defs.items():
        if not isinstance(digest, str):
            raise InvalidStoreEntry(f"malformed digest for predicate {name!r}")
        blob = resolve_blob(digest)
        definition = decode_predicate(json.loads(blob))
        if definition.name != name:
            raise InvalidStoreEntry(
                f"predicate object {digest[:12]} names "
                f"{definition.name!r}, table says {name!r}"
            )
        bundle.append(definition)
    return bundle


def _check_bundle_against_env(
    bundle: "list[PredicateDef]", env: PredicateEnv
) -> "list[PredicateDef]":
    """Check 3: environment parity.  Returns the definitions that are
    new to *env* (the ones a hit would install)."""
    new_defs = []
    for definition in bundle:
        if definition.name in env:
            if env[definition.name].structure_key() != definition.structure_key():
                raise InvalidStoreEntry(
                    f"stale predicate {definition.name!r}: stored structure "
                    "differs from the live environment's"
                )
            continue
        drifted = env.find_structural(definition)
        if drifted is not None:
            raise InvalidStoreEntry(
                f"name drift: stored predicate {definition.name!r} already "
                f"exists here as {drifted.name!r}"
            )
        new_defs.append(definition)
    return new_defs


def _self_derivation_check(
    new_defs: "list[PredicateDef]", bundle: "list[PredicateDef]"
) -> None:
    """Check 4: every new definition re-derives itself in a scratch
    environment built from the bundle alone (the bundle is a complete
    snapshot, so mutual references resolve within it)."""
    if not new_defs:
        return
    scratch = PredicateEnv()
    for definition in bundle:
        try:
            scratch.add(definition)
        except ValueError as exc:
            raise InvalidStoreEntry(f"inconsistent bundle: {exc}") from exc
    for definition in new_defs:
        try:
            args = tuple(
                fresh_var("r" if i == 0 else "a")
                for i in range(definition.arity)
            )
            points_to, instances, _bound = definition.unfold_body(args)
            state = AbstractState()
            for atom in points_to:
                state.spatial.add(atom)
            for instance in instances:
                state.spatial.add(instance)
            fold_state(state, scratch, keep_registers=True)
        except (ValueError, AnalysisStuck) as exc:
            raise InvalidStoreEntry(
                f"predicate {definition.name!r} fails self-derivation: {exc}"
            ) from exc
        atoms = list(state.spatial)
        if not (
            len(atoms) == 1
            and isinstance(atoms[0], PredInstance)
            and atoms[0].pred == definition.name
            and atoms[0].args[0] == args[0]
            and not atoms[0].truncs
        ):
            raise InvalidStoreEntry(
                f"predicate {definition.name!r} fails self-derivation: "
                f"unfold+fold yields {atoms!r}"
            )
