"""Durable predicate/summary store with validation-on-read.

``repro.store`` persists two kinds of facts across processes and
restarts: synthesized recursive predicate definitions and tabulated
procedure summaries, both keyed by canonical (alpha-invariant) forms.
The engine consults the store before re-analyzing a procedure; serve
worker pools share one store directory as a warm tier that survives
worker crashes and restarts.

Every entry is crash-safe on the way in (atomic rename + fsync +
content-digest checksums + torn-tolerant append-only index) and
re-validated on the way out (:mod:`repro.store.validate`): corruption,
staleness and version skew degrade to cache misses with structured
``store-invalid`` diagnostics -- never to wrong verdicts.
"""

from repro.store.chaos import CHAOS_ENV, STORE_FAULT_KINDS, StoreChaos, StoreFaultSpec
from repro.store.disk import DiskStore, StoreCorrupt
from repro.store.store import STORE_SCHEMA, StoreHit, SummaryStore
from repro.store.validate import InvalidStoreEntry

__all__ = [
    "CHAOS_ENV",
    "DiskStore",
    "InvalidStoreEntry",
    "STORE_FAULT_KINDS",
    "STORE_SCHEMA",
    "StoreChaos",
    "StoreCorrupt",
    "StoreFaultSpec",
    "StoreHit",
    "SummaryStore",
]
