"""``python -m repro store-smoke`` -- the store chaos/parity gate.

The durable store is an accelerator with a soundness obligation: a
corrupt, stale or torn entry must degrade to a *miss* (plus a
``store-invalid`` diagnostic), never to a wrong verdict.  This gate
proves that differentially over a sweep of crucible seeds.  Per seed:

1. run store-off -- the baseline core verdict;
2. run store-on against a shared store directory (the *cold* run,
   which populates it).  Every sixth seed instead populates in a
   **subprocess that is SIGKILLed mid-write** (``REPRO_STORE_CHAOS=
   kill@2``) and then re-runs cold in-process over the crash debris;
3. corrupt what the cold run wrote, rotating through the fault menu:
   flip a byte in every summary object (checksum), truncate them to
   half (torn write), rewrite them with a bumped payload schema
   (stale entry), or append a half-line to the index (torn tail);
4. run store-on again (the *warm* run) and require the **core verdict
   -- outcome, failure, attempts, non-store diagnostic codes -- to be
   byte-identical across all three runs**.

Any mismatch exits 1.  The gate additionally requires that every
checksum/torn/stale corruption surfaced as a structured
``store-invalid`` rejection (silent acceptance would be unsound,
silent crash a robustness bug) and that the warm sweep as a whole hit
the store at least once (a store that never hits is dead weight, and
a gate that only ever exercises misses proves nothing).
"""

from __future__ import annotations

import json
import subprocess
import sys
import time

from repro.analysis import ShapeAnalysis
from repro.analysis.resilience import STORE_INVALID
from repro.benchsuite.runner import _resolve_benchmark
from repro.childproc import child_env
from repro.store.chaos import CHAOS_ENV
from repro.store.codec import payload_bytes
from repro.store.disk import DiskStore
from repro.store.store import STORE_SCHEMA, SummaryStore

__all__ = ["main", "run_gate"]

#: Per-seed fault rotation.  ``none`` seeds keep the happy path (and
#: the warm-hit requirement) honest; ``kill`` seeds crash the writer
#: instead of corrupting afterwards.
FAULT_ROTATION = (
    "none",
    "checksum-flip",
    "torn-write",
    "stale-schema",
    "torn-index",
    "kill",
)

#: Faults that rewrite committed, indexed data -- validation MUST
#: surface each of these as a ``store-invalid`` rejection.  (A torn
#: index tail and a mid-write kill leave crash debris, not corrupt
#: committed entries; readers skip those silently by design.)
_MUST_REJECT = ("checksum-flip", "torn-write", "stale-schema")


def _core_verdict(record: dict) -> dict:
    """The store-independent slice of a run record.  ``store-invalid``
    diagnostics are *expected* to differ (they describe the store, not
    the program); everything else must not."""
    return {
        "outcome": record["outcome"],
        "failure": record["failure"],
        "attempts": record["attempts"],
        "diagnostics": sorted(
            d["code"]
            for d in record["diagnostics"]
            if d["code"] != STORE_INVALID
        ),
    }


def _run(name: str, options: dict, store: "SummaryStore | None") -> dict:
    program = _resolve_benchmark(name)
    return ShapeAnalysis(
        program,
        name=name,
        mode=options["mode"],
        max_unroll=options["unroll"],
        state_budget=options["state_budget"],
        store=store,
    ).run().to_record()


def _live_index(store_dir: str) -> dict:
    probe = DiskStore(store_dir)
    probe.open(STORE_SCHEMA)
    return dict(probe._index)


def _corrupt(kind: str, store_dir: str) -> int:
    """Apply *kind* to every indexed summary object (corrupting them
    all guarantees the entry-procedure summary -- the one a repeat run
    consults first -- is among the victims; alpha-invariant canonical
    keys make consecutive crucible seeds share entries, so "what this
    seed wrote" is not a usable target set).  Returns how many entries
    were touched."""
    disk = DiskStore(store_dir)
    disk.open(STORE_SCHEMA)
    if kind == "torn-index":
        with open(disk.index_path, "ab") as handle:
            handle.write(b'{"k": "torn-by-store-smoke", "o": "dead')
        return 1
    touched = 0
    entries = dict(disk._index)
    for lookup in sorted(entries):
        digest = entries[lookup]
        path = disk.objects_dir / f"{digest}.json"
        if not path.exists():
            continue
        if kind == "checksum-flip":
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
        elif kind == "torn-write":
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
        elif kind == "stale-schema":
            try:
                payload = json.loads(path.read_bytes())
                payload["schema"] = int(payload.get("schema", STORE_SCHEMA)) + 1
            except (ValueError, TypeError):
                # Debris of an earlier seed's torn-write that no run has
                # consulted (and therefore healed) yet -- already corrupt,
                # nothing more to do to it.
                continue
            disk.put(lookup, payload_bytes(payload))
        touched += 1
    return touched


def _populate_in_killed_child(name: str, store_dir: str, options: dict) -> int:
    """Cold-populate in a subprocess armed to SIGKILL itself at its
    second store write (object committed, index append pending) --
    the realistic mid-commit crash.  Returns the child's returncode
    (negative = died by signal, 0 = too few writes for the fault to
    fire; both leave a store the next run must cope with)."""
    command = [
        sys.executable, "-m", "repro", "store-smoke",
        "--populate", name,
        "--store", store_dir,
        "--mode", options["mode"],
        "--unroll", str(options["unroll"]),
        "--state-budget", str(options["state_budget"]),
    ]
    child = subprocess.run(
        command,
        env=child_env({CHAOS_ENV: "kill@2"}),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        timeout=600,
    )
    return child.returncode


def run_gate(
    store_dir: str,
    seeds: int = 50,
    base_seed: int = 1,
    mode: str = "degrade",
    unroll: int = 2,
    state_budget: int = 20000,
) -> dict:
    """The differential sweep; returns the report dict (``failures``
    empty iff the gate passed)."""
    options = {"mode": mode, "unroll": unroll, "state_budget": state_budget}
    failures: list[str] = []
    mismatches: list[dict] = []
    fault_counts = {kind: 0 for kind in FAULT_ROTATION}
    total_warm_hits = 0
    total_invalid = 0
    seeds_checked = 0
    start = time.perf_counter()

    for index in range(seeds):
        seed = base_seed + index
        name = f"crucible:{seed}"
        kind = FAULT_ROTATION[index % len(FAULT_ROTATION)]
        fault_counts[kind] += 1
        try:
            baseline = _core_verdict(_run(name, options, None))

            if kind == "kill":
                _populate_in_killed_child(name, store_dir, options)
            cold_store = SummaryStore(store_dir)
            cold = _core_verdict(_run(name, options, cold_store))

            corrupted = 0
            if kind in _MUST_REJECT or kind == "torn-index":
                corrupted = _corrupt(kind, store_dir)
                if kind in _MUST_REJECT and corrupted == 0:
                    failures.append(
                        f"{name}: store empty after the cold run -- "
                        f"fault {kind} not exercised"
                    )

            warm_store = SummaryStore(store_dir)
            warm = _core_verdict(_run(name, options, warm_store))
            warm_stats = warm_store.stats()
            total_warm_hits += warm_stats["hits"]
            total_invalid += warm_stats["invalid"]

            if kind in _MUST_REJECT and corrupted:
                if warm_stats["invalid"] == 0:
                    failures.append(
                        f"{name}: fault {kind} corrupted {corrupted} "
                        "entr(ies) but the warm run rejected nothing -- "
                        "validation-on-read failed to notice"
                    )
            if baseline != cold or baseline != warm:
                mismatches.append(
                    {
                        "seed": seed,
                        "fault": kind,
                        "store_off": baseline,
                        "cold": cold,
                        "warm": warm,
                    }
                )
            seeds_checked += 1
        except Exception as exc:  # the gate itself must never crash
            failures.append(
                f"{name}: gate crashed ({type(exc).__name__}: {exc}) -- "
                "the store leaked a failure into the analysis"
            )

    for miss in mismatches:
        failures.append(
            f"crucible:{miss['seed']} (fault {miss['fault']}): core "
            f"verdict diverged -- store-off {miss['store_off']} vs "
            f"cold {miss['cold']} vs warm {miss['warm']}"
        )
    if seeds_checked and total_warm_hits == 0:
        failures.append(
            "warm sweep never hit the store: the gate only exercised "
            "misses, so parity proves nothing"
        )

    return {
        "seeds": seeds,
        "base_seed": base_seed,
        "seeds_checked": seeds_checked,
        "faults": fault_counts,
        "warm_hits": total_warm_hits,
        "invalid_rejections": total_invalid,
        "mismatches": len(mismatches),
        "failures": failures,
        "seconds": round(time.perf_counter() - start, 3),
    }


def _populate(name: str, store_dir: str, options: dict) -> int:
    """Child mode for the kill fault: one store-on run whose
    ``SummaryStore.open`` honors ``REPRO_STORE_CHAOS`` from the
    environment (that is how the SIGKILL reaches us)."""
    _run(name, options, SummaryStore.open(store_dir))
    return 0


def main(argv: "list[str] | None" = None) -> int:
    import argparse
    import shutil
    import tempfile

    parser = argparse.ArgumentParser(
        prog="repro store-smoke",
        description="store corruption/crash parity gate (see module doc)",
    )
    parser.add_argument("--seeds", type=int, default=50)
    parser.add_argument("--base-seed", type=int, default=1)
    parser.add_argument("--mode", choices=("strict", "degrade"), default="degrade")
    parser.add_argument("--unroll", type=int, default=2)
    parser.add_argument("--state-budget", type=int, default=20000)
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store directory (default: a fresh temp dir, removed after)",
    )
    parser.add_argument("--json", action="store_true")
    parser.add_argument(
        "--populate",
        default=None,
        metavar="BENCHMARK",
        help=argparse.SUPPRESS,  # internal child mode for the kill fault
    )
    args = parser.parse_args(argv)

    options = {
        "mode": args.mode,
        "unroll": args.unroll,
        "state_budget": args.state_budget,
    }
    if args.populate:
        if not args.store:
            parser.error("--populate requires --store")
        return _populate(args.populate, args.store, options)

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-store-smoke-")
    try:
        report = run_gate(
            store_dir,
            seeds=args.seeds,
            base_seed=args.base_seed,
            mode=args.mode,
            unroll=args.unroll,
            state_budget=args.state_budget,
        )
    finally:
        if not args.store:
            shutil.rmtree(store_dir, ignore_errors=True)

    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(
            f"store-smoke: {report['seeds_checked']}/{report['seeds']} "
            f"seeds checked in {report['seconds']}s, faults "
            f"{report['faults']}, {report['warm_hits']} warm hit(s), "
            f"{report['invalid_rejections']} store-invalid rejection(s), "
            f"{report['mismatches']} verdict mismatch(es)"
        )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"store-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print("store-smoke: verdict parity held under every fault")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
