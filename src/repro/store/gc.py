"""``python -m repro store-gc``: bounded retention for store directories.

The durable store is append-mostly: every new program variant writes
content-addressed objects, and a CI machine that analyzes every commit
grows its store without bound.  This module evicts least-recently-used
objects until the directory fits a byte budget, with two safety rails:

* **Liveness.**  Long-running consumers (the serve pool) register a
  pidfile under ``<store>/pids/``; the collector refuses to evict while
  any registered pid is alive unless ``--force`` is given, and reaps
  pidfiles whose processes are gone.  Evicting under a live server is
  not a *correctness* hazard (validation-on-read treats a vanished
  object as a miss), but it silently destroys the warm working set the
  pool exists to keep.
* **Atomicity.**  Eviction happens under the store's writer lock, and
  the index is rewritten with the same tmp-file + ``os.replace``
  discipline the store itself uses, dropping entries for evicted and
  already-missing (quarantined) objects -- a reader that races the
  collector sees either the old index or the new one, never a torn
  file.

Recency is ``max(atime, mtime)`` per object file; on ``relatime``
mounts atime is coarse, which only makes the LRU approximate -- never
unsafe, since any evicted entry is re-derivable by re-analysis.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.store.disk import DiskStore, StoreCorrupt, _FlockGuard
from repro.store.store import STORE_SCHEMA

__all__ = [
    "collect",
    "live_store_pids",
    "main",
    "register_store_pid",
    "release_store_pid",
]


def _pids_dir(store_dir) -> Path:
    return Path(store_dir) / "pids"


def register_store_pid(store_dir, role: str = "serve") -> Path:
    """Mark this process as a live consumer of *store_dir*.

    Written atomically so a concurrent collector never reads a torn
    pidfile.  Returns the pidfile path (hand it to
    :func:`release_store_pid`, and release in a ``finally``)."""
    pids = _pids_dir(store_dir)
    pids.mkdir(parents=True, exist_ok=True)
    path = pids / f"{os.getpid()}.pid"
    tmp = pids / f"tmp-{os.getpid()}.pid"
    tmp.write_text(f"{os.getpid()} {role}\n")
    os.replace(tmp, path)
    return path


def release_store_pid(store_dir) -> None:
    try:
        (_pids_dir(store_dir) / f"{os.getpid()}.pid").unlink()
    except OSError:
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def live_store_pids(store_dir, reap: bool = False) -> "list[int]":
    """Registered pids whose processes are still alive.  With *reap*,
    stale pidfiles (dead pid, or unparseable) are removed."""
    pids = _pids_dir(store_dir)
    alive = []
    if not pids.is_dir():
        return alive
    for path in sorted(pids.glob("*.pid")):
        try:
            pid = int(path.read_text().split()[0])
        except (OSError, ValueError, IndexError):
            pid = None
        if pid is not None and _pid_alive(pid):
            alive.append(pid)
        elif reap:
            try:
                path.unlink()
            except OSError:
                pass
    return alive


def _object_files(objects_dir: Path) -> "list[tuple[float, int, Path]]":
    """(recency, size, path) per object, oldest first."""
    entries = []
    for path in objects_dir.glob("*.json"):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((max(stat.st_atime, stat.st_mtime), stat.st_size, path))
    entries.sort()
    return entries


def collect(store_dir, max_bytes: int, force: bool = False) -> dict:
    """Shrink *store_dir* to at most *max_bytes* of object data.

    Returns a report dict; ``refused`` is True (and nothing was
    touched) when live consumers are registered and *force* is off."""
    root = Path(store_dir)
    report = {
        "store": str(root),
        "max_bytes": max_bytes,
        "live_pids": [],
        "stale_pidfiles_reaped": 0,
        "orphans_removed": 0,
        "bytes_before": 0,
        "bytes_after": 0,
        "evicted": 0,
        "evicted_bytes": 0,
        "dangling_dropped": 0,
        "refused": False,
    }
    pids_before = len(list(_pids_dir(root).glob("*.pid"))) if _pids_dir(root).is_dir() else 0
    alive = live_store_pids(root, reap=True)
    report["stale_pidfiles_reaped"] = pids_before - (
        len(list(_pids_dir(root).glob("*.pid"))) if _pids_dir(root).is_dir() else 0
    )
    report["live_pids"] = alive
    if alive and not force:
        report["refused"] = True
        return report

    disk = DiskStore(root)
    disk.open(STORE_SCHEMA)  # verifies schema, sweeps tmp-* orphans

    with _FlockGuard(disk.lock_path):
        disk.refresh()
        objects = _object_files(disk.objects_dir)
        total = sum(size for _, size, _ in objects)
        report["bytes_before"] = total
        present = {path.name[: -len(".json")] for _, _, path in objects}
        # Quarantine cleanup: index entries whose object vanished
        # (validation-on-read unlinks corrupt objects locally; the
        # on-disk index can still reference them).
        index = {
            lookup: digest
            for lookup, digest in disk._index.items()
            if digest in present
        }
        report["dangling_dropped"] = len(disk._index) - len(index)
        for recency, size, path in objects:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            report["evicted"] += 1
            report["evicted_bytes"] += size
            digest = path.name[: -len(".json")]
            index = {k: o for k, o in index.items() if o != digest}
        report["bytes_after"] = total
        if report["evicted"] or report["dangling_dropped"]:
            lines = b"".join(
                json.dumps({"k": k, "o": o}).encode() + b"\n"
                for k, o in sorted(index.items())
            )
            disk._write_file(disk.index_path, lines)
    return report


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro store-gc",
        description="evict least-recently-used store objects down to a "
        "byte budget (see the module doc for the safety rails)",
    )
    parser.add_argument("--store", required=True, metavar="DIR")
    parser.add_argument(
        "--max-bytes", type=int, required=True, metavar="N",
        help="object-data budget; oldest objects are evicted until the "
        "store fits",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="evict even while registered consumers are alive",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.max_bytes < 0:
        print("repro store-gc: --max-bytes must be >= 0", file=sys.stderr)
        return 2
    root = Path(args.store)
    if not root.is_dir():
        print(f"repro store-gc: no store at {root}", file=sys.stderr)
        return 2
    try:
        report = collect(root, args.max_bytes, force=args.force)
    except StoreCorrupt as exc:
        print(f"repro store-gc: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    elif report["refused"]:
        pass
    else:
        print(
            f"store-gc: {report['bytes_before']} -> {report['bytes_after']} "
            f"bytes ({report['evicted']} object(s) evicted, "
            f"{report['dangling_dropped']} dangling index entr(ies) "
            f"dropped, {report['stale_pidfiles_reaped']} stale pidfile(s) "
            f"reaped)"
        )
    if report["refused"]:
        print(
            "store-gc: refusing to evict: live consumer pid(s) "
            f"{report['live_pids']} registered under {root / 'pids'} "
            "(re-run with --force to override)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
