"""Fixpoint objects: whole-procedure summary tables as a unit of reuse.

PR 7's per-entry summary objects accelerate one call at a time: a hit
still requires the engine to walk the whole interprocedural fixpoint,
consulting the store once per (callee, entry-state) pair.  Incremental
re-analysis wants a coarser unit -- "this procedure and everything it
can reach are unchanged, replay its entire tabulated summary table" --
so the store grows a second object kind:

* keyed on ``(procedure name, callee-cone digest, unroll, mode)``
  (:mod:`repro.ir.digest`), so any structural edit anywhere in the
  procedure's callee cone silently invalidates the object (the key no
  longer matches -- invalidation needs no dirty lists);
* valued as a *bundle*: the procedure's tabulated summaries, each in
  exactly the per-entry payload shape :func:`repro.store.codec
  .encode_summary` produces, so validation-on-read reuses
  :func:`repro.store.validate.validate_summary_payload` per summary,
  check for check.

The module also provides :class:`FixpointTable`, an in-memory tier
holding the same payloads under the same keys.  It is JSON-wireable
(predicate blobs are themselves canonical JSON), which is how a serve
worker ships its table to the supervisor and a restarted successor
gets it injected back.
"""

from __future__ import annotations

from repro.logic.canonical import UntranslatableWitness
from repro.store.codec import encode_summary, payload_digest

__all__ = ["FixpointTable", "encode_fixpoint", "fixpoint_key"]


def fixpoint_key(
    procedure: str, cone: str, *, unroll: int, mode: str, schema: int
) -> str:
    parts = ["fixpoint", str(schema), procedure, cone, str(unroll), mode]
    return payload_digest("\x00".join(parts).encode("utf-8"))


def encode_fixpoint(
    procedure: str,
    cone: str,
    summaries,
    env,
    *,
    unroll: int,
    mode: str,
    schema: int,
) -> "tuple[dict | None, dict[str, bytes]]":
    """The bundle payload for *summaries* (an iterable of
    ``(entry, exits, cutpoints)`` triples) plus the predicate blobs the
    sub-payloads reference.  Summaries whose cutpoints cannot be
    spelled in the entry's canonical form are skipped (same rule as
    per-entry recording); returns ``(None, {})`` when nothing survives.
    """
    subs: list[dict] = []
    blobs: dict[str, bytes] = {}
    for entry, exits, cutpoints in summaries:
        try:
            sub, sub_blobs = encode_summary(
                procedure,
                entry,
                list(exits),
                cutpoints,
                env,
                unroll=unroll,
                mode=mode,
                schema=schema,
                cone=cone,
            )
        except UntranslatableWitness:
            continue
        subs.append(sub)
        blobs.update(sub_blobs)
    if not subs:
        return None, {}
    payload = {
        "schema": schema,
        "kind": "fixpoint",
        "procedure": procedure,
        "cone": cone,
        "unroll": unroll,
        "mode": mode,
        "summaries": subs,
    }
    return payload, blobs


def merge_fixpoint_payloads(new: dict, old) -> dict:
    """Union *old*'s summaries into *new* without replacing any entry
    *new* already covers.  *old* is untrusted bytes-from-disk territory
    (possibly ``None``, possibly garbage): anything unusable is simply
    dropped -- every retained sub-payload is re-validated on read
    anyway."""
    if not isinstance(old, dict) or not isinstance(old.get("summaries"), list):
        return new
    seen = {
        (sub.get("entry"), tuple(sub.get("cutpoints", ())))
        for sub in new["summaries"]
    }
    for sub in old["summaries"]:
        if not isinstance(sub, dict):
            continue
        ident = (sub.get("entry"), tuple(sub.get("cutpoints", ())))
        if ident in seen:
            continue
        seen.add(ident)
        new["summaries"].append(sub)
    return new


class FixpointTable:
    """In-memory fixpoint tier: ``key -> payload`` plus the predicate
    blobs the payloads reference.  Same keys, same payload shapes, same
    validation-on-read as the durable tier -- a table received over a
    pipe from a dead worker's generation earns exactly as little trust
    as bytes from disk."""

    def __init__(self) -> None:
        self.payloads: dict[str, dict] = {}
        self.blobs: dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.payloads)

    def get(self, key: str) -> "dict | None":
        payload = self.payloads.get(key)
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def put(self, key: str, payload: dict, blobs: "dict[str, bytes]") -> None:
        existing = self.payloads.get(key)
        if existing is not None:
            payload = merge_fixpoint_payloads(payload, existing)
        self.payloads[key] = payload
        self.blobs.update(blobs)

    def get_blob(self, digest: str) -> bytes:
        blob = self.blobs[digest]
        if payload_digest(blob) != digest:
            raise ValueError(f"fixpoint table blob {digest[:12]} is corrupt")
        return blob

    def stats(self) -> dict:
        return {
            "entries": len(self.payloads),
            "blobs": len(self.blobs),
            "hits": self.hits,
            "misses": self.misses,
        }

    # -- wire format (supervisor warm-injection) -----------------------
    def to_wire(self) -> dict:
        return {
            "payloads": dict(self.payloads),
            "blobs": {
                digest: blob.decode("utf-8")
                for digest, blob in self.blobs.items()
            },
        }

    @classmethod
    def from_wire(cls, wire) -> "FixpointTable":
        """Rebuild a table from :meth:`to_wire` output.  Malformed input
        raises ``ValueError`` (callers contain it); individual payloads
        are *not* deep-checked here -- consumption re-validates."""
        table = cls()
        if not isinstance(wire, dict):
            raise ValueError("fixpoint wire format is not an object")
        payloads = wire.get("payloads", {})
        blobs = wire.get("blobs", {})
        if not isinstance(payloads, dict) or not isinstance(blobs, dict):
            raise ValueError("malformed fixpoint wire tables")
        for key, payload in payloads.items():
            if isinstance(key, str) and isinstance(payload, dict):
                table.payloads[key] = payload
        for digest, text in blobs.items():
            if isinstance(digest, str) and isinstance(text, str):
                table.blobs[digest] = text.encode("utf-8")
        return table

    def merge_wire(self, wire) -> int:
        """Merge another table's wire dump into this one; returns the
        number of payload keys added or replaced."""
        other = FixpointTable.from_wire(wire)
        for key, payload in other.payloads.items():
            self.put(key, payload, {})
        self.blobs.update(other.blobs)
        return len(other.payloads)
