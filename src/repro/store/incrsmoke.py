"""``python -m repro incr-smoke`` -- the incremental re-analysis gate.

Incremental replay is an accelerator with the same soundness obligation
as the rest of the store: replaying a cached fixpoint table may change
*how fast* a verdict is reached, never *which* verdict.  This gate
proves that differentially over seeded (base, edited) program pairs --
the "developer changed one procedure, re-analyze" workload.  Per seed:

1. derive the pair: ``crucible:<seed>`` plus ``edit:crucible:<seed>@k``
   (one deterministic crucible mutation -- branch flip, dead store,
   statement deletion or block reordering);
2. analyze both programs from scratch (no store) -- the baseline core
   verdicts.  An edit can push a program into pathological analysis
   territory (a flipped loop exit, say); pairs whose from-scratch run
   needs more than half the gate deadline are *skipped*, not compared
   -- near the deadline cliff, wall-clock verdicts are not
   deterministic enough to differentiate against;
3. cold-analyze the *base* program against a shared store, populating
   per-entry summaries and whole-procedure fixpoint bundles.  Every
   sixth seed populates in a subprocess SIGKILLed mid-write
   (``REPRO_STORE_CHAOS=kill@2``) instead;
4. corrupt what the populate run wrote, rotating through the store
   fault menu (byte flips, torn writes, stale schemas, torn index
   tails) -- fixpoint bundles are indexed objects, so they are among
   the victims;
5. warm re-run the *base* program (every procedure unchanged, so every
   corrupt fixpoint bundle is consulted -- the rejection path cannot
   hide), then the *edited* program (unchanged procedures replay
   cached tables, the changed cone re-analyzes), both against the
   damaged store, and require every **core verdict -- outcome,
   failure, attempts, non-store diagnostic codes -- to be identical
   to its from-scratch baseline**.

Any divergence exits 1.  The gate additionally requires that the sweep
replayed cached fixpoints at least once (an incremental path that
never fires proves nothing), and that each seed whose fault rewrote
committed data surfaced at least one structured ``store-invalid``
rejection (corrupt bundles must degrade to a from-scratch cone,
loudly -- silent acceptance would be unsound, silent crash a
robustness bug).
"""

from __future__ import annotations

import json
import sys
import time

from repro.analysis import ShapeAnalysis
from repro.benchsuite.runner import _resolve_benchmark
from repro.store.smoke import (
    FAULT_ROTATION,
    _MUST_REJECT,
    _core_verdict,
    _corrupt,
    _populate_in_killed_child,
)
from repro.store.store import SummaryStore

__all__ = ["main", "pair_names", "run_gate"]

#: Seed offset between a pair's program seed and its edit seed, so the
#: edit RNG stream never coincides with the generator's.
_EDIT_SEED_OFFSET = 101


def pair_names(seed: int) -> "tuple[str, str]":
    """The (base, edited) benchmark names for one gate seed."""
    base = f"crucible:{seed}"
    return base, f"edit:{base}@{seed + _EDIT_SEED_OFFSET}"


def _run(name: str, options: dict, store: "SummaryStore | None") -> dict:
    program = _resolve_benchmark(name)
    return ShapeAnalysis(
        program,
        name=name,
        mode=options["mode"],
        max_unroll=options["unroll"],
        state_budget=options["state_budget"],
        deadline_seconds=options["deadline"],
        store=store,
    ).run().to_record()


def run_gate(
    store_dir: str,
    seeds: int = 50,
    base_seed: int = 1,
    mode: str = "degrade",
    unroll: int = 2,
    state_budget: int = 20000,
    deadline: float = 20.0,
) -> dict:
    """The differential sweep; returns the report dict (``failures``
    empty iff the gate passed)."""
    options = {
        "mode": mode,
        "unroll": unroll,
        "state_budget": state_budget,
        "deadline": deadline,
    }
    failures: list[str] = []
    mismatches: list[dict] = []
    fault_counts = {kind: 0 for kind in FAULT_ROTATION}
    skipped: list[str] = []
    replay_hits = 0
    replay_lookups = 0
    total_invalid = 0
    seeds_checked = 0
    start = time.perf_counter()

    def diverged(seed: int, kind: str, which: str, scratch: dict, warm: dict):
        mismatches.append(
            {
                "seed": seed,
                "fault": kind,
                "program": which,
                "from_scratch": scratch,
                "warm": warm,
            }
        )

    for index in range(seeds):
        seed = base_seed + index
        base, edited = pair_names(seed)
        kind = FAULT_ROTATION[index % len(FAULT_ROTATION)]
        fault_counts[kind] += 1
        try:
            slow = None
            for which in (base, edited):
                clock = time.perf_counter()
                verdict = _core_verdict(_run(which, options, None))
                if time.perf_counter() - clock > deadline / 2:
                    slow = which
                    break
                if which == base:
                    base_scratch = verdict
                else:
                    edited_scratch = verdict
            if slow is not None:
                skipped.append(
                    f"seed {seed}: {slow} needed more than {deadline / 2}s "
                    "from scratch -- too close to the deadline cliff to "
                    "compare deterministically"
                )
                continue

            if kind == "kill":
                _populate_in_killed_child(base, store_dir, options)
            else:
                cold = _core_verdict(_run(base, options, SummaryStore(store_dir)))
                if cold != base_scratch:
                    diverged(seed, kind, f"{base} (cold)", base_scratch, cold)

            corrupted = 0
            if kind in _MUST_REJECT or kind == "torn-index":
                corrupted = _corrupt(kind, store_dir)
                if kind in _MUST_REJECT and corrupted == 0:
                    failures.append(
                        f"seed {seed}: store empty after the populate run "
                        f"-- fault {kind} not exercised"
                    )

            warm_store = SummaryStore(store_dir)
            warm_base = _core_verdict(_run(base, options, warm_store))
            incr_edited = _core_verdict(_run(edited, options, warm_store))
            stats = warm_store.stats()
            replay_hits += stats.get("fixpoint_hits", 0)
            replay_lookups += stats.get("fixpoint_lookups", 0)
            total_invalid += stats["invalid"]

            if warm_base != base_scratch:
                diverged(seed, kind, base, base_scratch, warm_base)
            if incr_edited != edited_scratch:
                diverged(seed, kind, edited, edited_scratch, incr_edited)
            if kind in _MUST_REJECT and corrupted and stats["invalid"] == 0:
                failures.append(
                    f"seed {seed}: fault {kind} corrupted {corrupted} "
                    "entr(ies) but the warm runs rejected nothing -- "
                    "validation-on-read failed to notice"
                )
            seeds_checked += 1
        except Exception as exc:  # the gate itself must never crash
            failures.append(
                f"seed {seed}: gate crashed ({type(exc).__name__}: {exc}) "
                "-- incremental replay leaked a failure into the analysis"
            )

    for miss in mismatches:
        failures.append(
            f"seed {miss['seed']} (fault {miss['fault']}, "
            f"{miss['program']}): core verdict diverged -- from-scratch "
            f"{miss['from_scratch']} vs warm {miss['warm']}"
        )
    if seeds_checked and replay_hits == 0:
        failures.append(
            "the sweep never replayed a cached fixpoint table: the "
            "incremental path never fired, so parity proves nothing"
        )

    return {
        "seeds": seeds,
        "base_seed": base_seed,
        "seeds_checked": seeds_checked,
        "skipped": skipped,
        "faults": fault_counts,
        "replay_hits": replay_hits,
        "replay_lookups": replay_lookups,
        "invalid_rejections": total_invalid,
        "mismatches": len(mismatches),
        "failures": failures,
        "seconds": round(time.perf_counter() - start, 3),
    }


def main(argv: "list[str] | None" = None) -> int:
    import argparse
    import shutil
    import tempfile

    parser = argparse.ArgumentParser(
        prog="repro incr-smoke",
        description="incremental re-analysis parity gate (see module doc)",
    )
    parser.add_argument("--seeds", type=int, default=50)
    parser.add_argument("--base-seed", type=int, default=1)
    parser.add_argument("--mode", choices=("strict", "degrade"), default="degrade")
    parser.add_argument("--unroll", type=int, default=2)
    parser.add_argument("--state-budget", type=int, default=20000)
    parser.add_argument(
        "--deadline",
        type=float,
        default=20.0,
        metavar="S",
        help="per-run analysis deadline; pairs needing more than half "
        "of it from scratch are skipped as nondeterministic (default 20)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store directory (default: a fresh temp dir, removed after)",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-incr-smoke-")
    try:
        report = run_gate(
            store_dir,
            seeds=args.seeds,
            base_seed=args.base_seed,
            mode=args.mode,
            unroll=args.unroll,
            state_budget=args.state_budget,
            deadline=args.deadline,
        )
    finally:
        if not args.store:
            shutil.rmtree(store_dir, ignore_errors=True)

    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(
            f"incr-smoke: {report['seeds_checked']}/{report['seeds']} "
            f"pairs checked ({len(report['skipped'])} skipped) in "
            f"{report['seconds']}s, faults {report['faults']}, "
            f"{report['replay_hits']}/{report['replay_lookups']} fixpoint "
            f"replay hit(s), {report['invalid_rejections']} store-invalid "
            f"rejection(s), {report['mismatches']} verdict mismatch(es)"
        )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"incr-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print("incr-smoke: incremental verdicts matched from-scratch under every fault")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
