"""Codec between in-memory analysis objects and store payloads.

The durable store does not invent a serialization format for abstract
states: a state's *canonical key* (:mod:`repro.logic.canonical`) is
already a deterministic, alpha-invariant, ``ast.literal_eval``-able
spelling of the whole state -- register frame, spatial conjunction,
pure formula and anchors.  Encoding a state is ``canonical_key``;
decoding materializes a fresh alpha-variant by minting one fresh logic
variable per canonical index and replaying the key's tokens through
the same token grammar ``canonicalize`` emits.  This buys two
properties for free:

* **cross-process stability** -- canonical keys contain no interpreter
  identities (no ``id()``, no hash order, no live names), so the same
  program produces byte-identical keys under any ``PYTHONHASHSEED``
  (tests/test_canonical_key_stability.py);
* **self-checking decode** -- re-canonicalizing a decoded state must
  reproduce the stored key exactly (alpha-invariance), which
  validation-on-read uses to reject any corruption that survives the
  checksum but changes meaning.

A *summary* payload bundles the callee's entry key, its exit keys
(with a root-linkage table tying exit indices back to entry indices,
so decoded exits share the decoded entry's variables), the encoded
cutpoints, and a content-addressed snapshot of the predicate
environment at tabulation time.  Predicate definitions are enumerable
structures (fields over a four-constructor ``ArgExpr`` grammar plus
recursive calls), encoded as plain JSON.
"""

from __future__ import annotations

import ast
import hashlib
import json

from repro.ir.values import Register
from repro.logic.canonical import canonicalize, parse_canonical_key
from repro.logic.heapnames import FieldPath, GlobalLoc, Var, fresh_var
from repro.logic.predicates import (
    AnyArg,
    ArgExpr,
    FieldSpec,
    NullArg,
    ParamArg,
    PredicateDef,
    RecCallSpec,
    RecTarget,
)
from repro.logic.state import AbstractState
from repro.logic.symvals import NULL_VAL, OffsetVal, Opaque
from repro.logic.assertions import PointsTo, PredInstance, Raw, Region

__all__ = [
    "decode_cutpoints",
    "decode_predicate",
    "decode_state",
    "encode_predicate",
    "encode_summary",
    "payload_bytes",
    "payload_digest",
    "predicate_blob",
]


def payload_bytes(payload: dict) -> bytes:
    """The canonical JSON bytes of *payload* (sorted keys, no spaces),
    which is also the checksummed, content-addressed unit on disk."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def payload_digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# State decode (canonical key -> fresh alpha-variant)
# ----------------------------------------------------------------------


class _KeyDecoder:
    """Replays canonical-key tokens into fresh (or seeded) variables.

    ``roots`` maps canonical index -> logic variable; unseen indices
    mint a fresh variable on first use, so one decoder instance keeps
    every token of one state (or of an exit state linked to its entry)
    consistent.  Every structural mismatch raises :class:`ValueError`:
    the store treats any decode error as a rejected entry.
    """

    __slots__ = ("roots",)

    def __init__(self, roots: "dict[int, Var] | None" = None):
        self.roots: dict[int, Var] = dict(roots or {})

    def root(self, token):
        if not isinstance(token, tuple) or len(token) != 2:
            raise ValueError(f"malformed root token {token!r}")
        kind, payload = token
        if kind == "g":
            return GlobalLoc(str(payload))
        if kind != "v":
            raise ValueError(f"unknown root token kind {kind!r}")
        index = int(payload)
        var = self.roots.get(index)
        if var is None:
            var = self.roots[index] = fresh_var("s")
        return var

    def name(self, token):
        if not isinstance(token, tuple) or len(token) != 3 or token[0] != "nm":
            raise ValueError(f"malformed name token {token!r}")
        name = self.root(token[1])
        for field in token[2]:
            if not isinstance(field, str):
                raise ValueError(f"malformed field path in {token!r}")
            name = FieldPath(name, field)
        return name

    def value(self, token):
        if not isinstance(token, tuple) or not token:
            raise ValueError(f"malformed value token {token!r}")
        if token[0] == "null":
            return NULL_VAL
        if token[0] == "?":
            return Opaque(str(token[1]))
        if token[0] == "off":
            return OffsetVal(self.name(token[1]), int(token[2]))
        return self.name(token)


def decode_state(
    key: str, seed_roots: "dict[int, Var] | None" = None
) -> "tuple[AbstractState, dict[int, Var]]":
    """Materialize the state a canonical *key* spells out.

    Returns the state plus the index -> variable table used, so callers
    can decode linked states (exits against their entry) in the same
    variable space.  Raises :class:`ValueError` on any malformed token.
    """
    rho_tokens, spatial_tokens, pure_tokens, anchor_tokens = (
        parse_canonical_key(key)
    )
    decoder = _KeyDecoder(seed_roots)
    state = AbstractState()
    for token in spatial_tokens:
        if not isinstance(token, tuple) or not token:
            raise ValueError(f"malformed spatial token {token!r}")
        kind = token[0]
        if kind == "pt" and len(token) == 4:
            state.spatial.add(
                PointsTo(
                    decoder.name(token[1]),
                    str(token[2]),
                    decoder.value(token[3]),
                )
            )
        elif kind == "pred" and len(token) == 4:
            state.spatial.add(
                PredInstance(
                    str(token[1]),
                    tuple(decoder.value(a) for a in token[2]),
                    tuple(decoder.name(t) for t in token[3]),
                )
            )
        elif kind == "raw" and len(token) == 3:
            state.spatial.add(
                Raw(
                    decoder.name(token[1]),
                    frozenset(str(w) for w in token[2]),
                )
            )
        elif kind == "rgn" and len(token) == 3:
            state.spatial.add(
                Region(
                    decoder.name(token[1]),
                    frozenset(int(c) for c in token[2]),
                )
            )
        else:
            raise ValueError(f"unknown spatial token {token!r}")
    for token in pure_tokens:
        if not isinstance(token, tuple) or not token:
            raise ValueError(f"malformed pure token {token!r}")
        if token[0] == "pa" and len(token) == 4:
            state.pure.assume(
                str(token[1]), decoder.value(token[2]), decoder.value(token[3])
            )
        elif token[0] == "al" and len(token) == 3:
            offset = decoder.value(token[1])
            if not isinstance(offset, OffsetVal):
                raise ValueError(f"alias token without offset: {token!r}")
            state.pure.record_alias(offset, decoder.name(token[2]))
        else:
            raise ValueError(f"unknown pure token {token!r}")
    state.anchors = frozenset(decoder.name(t) for t in anchor_tokens)
    for item in rho_tokens:
        if not isinstance(item, tuple) or len(item) != 2:
            raise ValueError(f"malformed rho entry {item!r}")
        register_name, value_token = item
        state.rho[Register(str(register_name))] = decoder.value(value_token)
    return state, decoder.roots


def decode_cutpoints(
    cutpoint_reprs: "list[str]", decoder_roots: "dict[int, Var]"
) -> frozenset:
    """Decode stored cutpoint name tokens against the decoded entry's
    variable table.  A cutpoint referencing an index outside the entry
    is malformed (cutpoints are names *of* the entry heap)."""
    decoder = _KeyDecoder(decoder_roots)
    known = frozenset(decoder.roots)
    cutpoints = []
    for text in cutpoint_reprs:
        token = ast.literal_eval(text)
        name = decoder.name(token)
        cutpoints.append(name)
    if frozenset(decoder.roots) != known:
        raise ValueError("cutpoint names escape the entry's root table")
    return frozenset(cutpoints)


# ----------------------------------------------------------------------
# Predicate codec
# ----------------------------------------------------------------------

_ARG_TAGS = {"null": NullArg, "any": AnyArg, "param": ParamArg, "rec": RecTarget}


def _encode_arg(arg: ArgExpr) -> list:
    if isinstance(arg, NullArg):
        return ["null"]
    if isinstance(arg, AnyArg):
        return ["any"]
    if isinstance(arg, ParamArg):
        return ["param", arg.index]
    if isinstance(arg, RecTarget):
        return ["rec", arg.index]
    raise ValueError(f"unknown ArgExpr {arg!r}")


def _decode_arg(payload) -> ArgExpr:
    if not isinstance(payload, list) or not payload:
        raise ValueError(f"malformed ArgExpr payload {payload!r}")
    tag = payload[0]
    if tag in ("null", "any"):
        if len(payload) != 1:
            raise ValueError(f"malformed ArgExpr payload {payload!r}")
        return _ARG_TAGS[tag]()
    if tag in ("param", "rec") and len(payload) == 2:
        return _ARG_TAGS[tag](int(payload[1]))
    raise ValueError(f"malformed ArgExpr payload {payload!r}")


def encode_predicate(definition: PredicateDef) -> dict:
    return {
        "name": definition.name,
        "arity": definition.arity,
        "fields": [
            [spec.field, _encode_arg(spec.target)]
            for spec in definition.fields
        ],
        "rec_calls": [
            [call.pred, [_encode_arg(a) for a in call.args]]
            for call in definition.rec_calls
        ],
    }


def decode_predicate(payload: dict) -> PredicateDef:
    """Inverse of :func:`encode_predicate`; :class:`ValueError` on any
    malformed payload (``PredicateDef.__post_init__`` re-validates the
    structural invariants, so a tampered definition cannot even be
    constructed)."""
    if not isinstance(payload, dict):
        raise ValueError(f"malformed predicate payload {payload!r}")
    try:
        fields = tuple(
            FieldSpec(str(field), _decode_arg(target))
            for field, target in payload["fields"]
        )
        rec_calls = tuple(
            RecCallSpec(str(pred), tuple(_decode_arg(a) for a in args))
            for pred, args in payload["rec_calls"]
        )
        return PredicateDef(
            str(payload["name"]), int(payload["arity"]), fields, rec_calls
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed predicate payload: {exc}") from exc


def predicate_blob(definition: PredicateDef) -> bytes:
    """Content-addressed unit for one definition."""
    return payload_bytes(encode_predicate(definition))


# ----------------------------------------------------------------------
# Summary payload
# ----------------------------------------------------------------------


def encode_summary(
    callee: str,
    entry: AbstractState,
    exits: "list[AbstractState]",
    cutpoints: frozenset,
    env,
    *,
    unroll: int,
    mode: str,
    schema: int,
    cone: str = "",
) -> "tuple[dict, dict[str, bytes]]":
    """The summary payload plus the predicate blobs it references
    (digest -> bytes), ready for the disk layer.

    Raises :class:`~repro.logic.canonical.UntranslatableWitness` when a
    cutpoint is not indexed by the entry's canonical form (the caller
    skips recording such a summary).

    The predicate section snapshots the *whole* environment at
    tabulation time, not just the definitions the exits mention: a
    store hit skips the callee's body, and the body may have
    synthesized predicates that later folds would use as candidates.
    Installing the full snapshot keeps a store-on run's environment
    step-for-step identical to the recording run's -- which is what the
    store-on vs store-off differential gate relies on.
    """
    entry_form = canonicalize(entry)
    cutpoint_reprs = sorted(
        repr(entry_form.encode_name(c)) for c in cutpoints
    )
    exits_payload = []
    for exit_state in exits:
        exit_form = canonicalize(exit_state)
        links = {}
        for root, exit_index in exit_form.index.items():
            entry_index = entry_form.index.get(root)
            if entry_index is not None:
                links[str(exit_index)] = entry_index
        exits_payload.append({"key": exit_form.key, "links": links})
    defs: dict[str, str] = {}
    blobs: dict[str, bytes] = {}
    for definition in env:
        blob = predicate_blob(definition)
        digest = payload_digest(blob)
        defs[definition.name] = digest
        blobs[digest] = blob
    payload = {
        "schema": schema,
        "callee": callee,
        "cone": cone,
        "unroll": unroll,
        "mode": mode,
        "entry": entry_form.key,
        "cutpoints": cutpoint_reprs,
        "exits": exits_payload,
        "defs": defs,
        "counter": env.counter,
    }
    return payload, blobs
