"""The durable predicate/summary store facade.

One :class:`SummaryStore` fronts one store directory.  The engine
consults it after its in-memory summary table misses and before it
(re-)analyzes a procedure body; a validated hit answers the call with
the recorded exits (plus the predicate-environment snapshot the
recording run had), and every tabulated summary is recorded back.

Design rules, enforced here:

* **The store is an accelerator, never an oracle.**  Every entry is
  re-validated on read (:mod:`repro.store.validate`) and the engine
  additionally re-runs the summary-application check against the live
  entry state before trusting a hit.  Anything questionable degrades
  to a miss plus a ``store-invalid`` diagnostic.
* **The store never fails an analysis.**  Disk trouble (EIO, ENOSPC,
  permission loss, a vanished directory) is contained in *both*
  resilience modes: a store that cannot read or write simply stops
  accelerating.  This is deliberate -- the strict/degrade split guards
  the *analysis semantics*, and the store has none: its only
  observable effect is speed, so the only sound containment is to
  shed it.  After ``max_io_errors`` consecutive I/O failures the
  store disables itself for the rest of the process (one more
  diagnostic records that).
* **Lookups are keyed on everything that shapes the recorded result**:
  store schema, callee name, engine unroll bound and mode, the entry
  state's canonical key, and the canonicalized cutpoint set.  Keying
  on unroll/mode matters for verdict parity: a retry-escalation run
  records summaries at a higher unroll, and a later cold attempt at
  the base unroll must *not* hit them -- it must fail exactly like a
  store-off run would, so the attempt/diagnostic trajectory matches.
"""

from __future__ import annotations

import json
import os

from repro.analysis.resilience import (
    Diagnostic,
    SEVERITY_WARNING,
    STORE_INVALID,
)
from repro.logic.canonical import UntranslatableWitness, canonicalize
from repro.store.chaos import StoreChaos
from repro.store.codec import (
    encode_summary,
    payload_bytes,
    payload_digest,
)
from repro.store.disk import DiskStore, StoreCorrupt
from repro.store.validate import (
    InvalidStoreEntry,
    ValidatedEntry,
    validate_summary_payload,
)

__all__ = ["STORE_SCHEMA", "StoreHit", "SummaryStore"]

#: Payload/layout version; bump on any codec or layout change.  The
#: schema participates in the lookup digest, so entries written under
#: another version are unreachable -- and an entry whose *payload*
#: claims another version (however it got indexed) is rejected by
#: validation.
#:
#: v2: summary keys/payloads gained the callee-cone digest
#: (repro.ir.digest), and the ``fixpoint`` object kind was added.  The
#: cone digest also closes a v1 soundness gap: two *different*
#: procedures sharing a name and an entry shape (e.g. ``main`` across
#: crucible seeds) used to collide onto one summary key.
STORE_SCHEMA = 2

#: Consecutive I/O errors before the store takes itself out of play.
_MAX_IO_ERRORS = 3


class _NullMetrics:
    def inc(self, name, value=1):
        pass

    def observe(self, name, value):
        pass


_NULL_METRICS = _NullMetrics()

StoreHit = ValidatedEntry  # the engine-facing name


class SummaryStore:
    """See the module docstring.  All public methods are exception-
    contained: they raise nothing (except through the *chaos* hook,
    which is test-only by construction)."""

    def __init__(self, path, chaos: "StoreChaos | None" = None):
        self.path = os.fspath(path)
        self.chaos = chaos
        self.enabled = True
        self._io_errors_in_a_row = 0
        self._tallies = {
            "lookups": 0,
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "invalid": 0,
            "io_errors": 0,
        }
        self._diagnostics: list[Diagnostic] = []
        self._disk = DiskStore(self.path, chaos=chaos)
        try:
            self._disk.open(STORE_SCHEMA)
        except StoreCorrupt as exc:
            self._invalid(None, f"store layout rejected: {exc}")
            self.enabled = False
        except OSError as exc:
            self._io_error(None, f"store open failed: {exc}")
            self.enabled = False

    @classmethod
    def open(cls, path) -> "SummaryStore":
        """The standard constructor: honors ``REPRO_STORE_CHAOS`` so
        fault schedules reach subprocesses (serve workers, smoke
        populate runs) through the environment."""
        return cls(path, chaos=StoreChaos.from_env())

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def tally(self, name: str, value: int = 1) -> None:
        """Process-lifetime counters (the engine mirrors its own hit /
        re-application verdicts here so ``stats()`` is complete)."""
        self._tallies[name] = self._tallies.get(name, 0) + value

    def stats(self) -> dict:
        """Cache-style stats (mirrors ``EntailmentCache.stats()``)."""
        lookups = self._tallies["lookups"]
        hits = self._tallies["hits"]
        return {
            **self._tallies,
            "entries": len(self._disk),
            "torn_lines": self._disk.torn_lines,
            "compactions": self._disk.compactions,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "enabled": self.enabled,
        }

    def take_diagnostics(self) -> "list[Diagnostic]":
        drained, self._diagnostics = self._diagnostics, []
        return drained

    def _invalid(self, procedure, message: str) -> None:
        self._diagnostics.append(
            Diagnostic(
                code=STORE_INVALID,
                message=message,
                phase="store",
                procedure=procedure,
                severity=SEVERITY_WARNING,
                recovered=True,
            )
        )

    def _io_error(self, procedure, message: str) -> None:
        self.tally("io_errors")
        self._io_errors_in_a_row += 1
        self._invalid(procedure, message)
        if self._io_errors_in_a_row >= _MAX_IO_ERRORS and self.enabled:
            self.enabled = False
            self._invalid(
                procedure,
                f"store disabled after {self._io_errors_in_a_row} "
                "consecutive I/O errors; analysis continues without it",
            )

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def lookup_key(
        callee: str,
        entry_key: str,
        cutpoint_reprs,
        *,
        unroll: int,
        mode: str,
        cone: str = "",
    ) -> str:
        parts = [
            "summary",
            str(STORE_SCHEMA),
            callee,
            cone,
            str(unroll),
            mode,
            entry_key,
            *cutpoint_reprs,
        ]
        return payload_digest("\x00".join(parts).encode("utf-8"))

    # ------------------------------------------------------------------
    # Consult
    # ------------------------------------------------------------------
    def consult(
        self,
        callee: str,
        entry,
        cutpoints,
        env,
        metrics=_NULL_METRICS,
        *,
        unroll: int = 0,
        mode: str = "strict",
        cone: str = "",
    ) -> "StoreHit | None":
        """A validated entry for (*callee*, *entry*, *cutpoints*) under
        the given engine configuration, or None.  Never raises.

        Every lookup (hit, miss or rejection) is timed into the
        ``store.lookup.seconds`` histogram: the store is an
        accelerator, so its own latency -- disk reads plus
        validation-on-read -- is exactly the overhead it must beat."""
        if not self.enabled:
            return None
        import time

        started = time.perf_counter()
        try:
            return self._consult(
                callee, entry, cutpoints, env, metrics,
                unroll=unroll, mode=mode, cone=cone,
            )
        finally:
            metrics.observe(
                "store.lookup.seconds", time.perf_counter() - started
            )

    def _consult(
        self,
        callee: str,
        entry,
        cutpoints,
        env,
        metrics=_NULL_METRICS,
        *,
        unroll: int = 0,
        mode: str = "strict",
        cone: str = "",
    ) -> "StoreHit | None":
        self.tally("lookups")
        metrics.inc("store.lookups")
        try:
            entry_form = canonicalize(entry)
            cutpoint_reprs = sorted(
                repr(entry_form.encode_name(c)) for c in cutpoints
            )
        except UntranslatableWitness:
            self._miss(metrics)
            return None
        key = self.lookup_key(
            callee, entry_form.key, cutpoint_reprs,
            unroll=unroll, mode=mode, cone=cone,
        )
        try:
            raw = self._disk.get(key)
        except StoreCorrupt as exc:
            self._reject(callee, metrics, f"{callee}: {exc}")
            return None
        except OSError as exc:
            self._io_error(callee, f"{callee}: store read failed: {exc}")
            self._miss(metrics)
            return None
        if raw is None:
            self._miss(metrics)
            return None
        self._io_errors_in_a_row = 0
        try:
            payload = json.loads(raw)
            hit = validate_summary_payload(
                payload,
                callee=callee,
                entry_key=entry_form.key,
                schema=STORE_SCHEMA,
                env=env,
                resolve_blob=self._disk.get_object,
                cone=cone,
            )
        except InvalidStoreEntry as exc:
            self._reject(callee, metrics, f"{callee}: {exc}")
            return None
        except StoreCorrupt as exc:
            self._reject(callee, metrics, f"{callee}: {exc}")
            return None
        except OSError as exc:
            self._io_error(callee, f"{callee}: store read failed: {exc}")
            self._miss(metrics)
            return None
        except (ValueError, KeyError, TypeError) as exc:
            self._reject(callee, metrics, f"{callee}: undecodable entry: {exc}")
            return None
        return hit

    def _miss(self, metrics) -> None:
        self.tally("misses")
        metrics.inc("store.misses")

    def _reject(self, procedure, metrics, message: str) -> None:
        """A present-but-unusable entry: miss + invalid + diagnostic."""
        self.tally("invalid")
        self.tally("misses")
        metrics.inc("store.invalid")
        metrics.inc("store.misses")
        self._invalid(procedure, message)

    # ------------------------------------------------------------------
    # Record
    # ------------------------------------------------------------------
    def record(
        self,
        callee: str,
        entry,
        exits,
        cutpoints,
        env,
        metrics=_NULL_METRICS,
        *,
        unroll: int = 0,
        mode: str = "strict",
        cone: str = "",
    ) -> bool:
        """Persist one tabulated summary.  Never raises; returns True
        when new bytes reached disk."""
        if not self.enabled:
            return False
        if self.chaos is not None:
            self.chaos.begin_write()
        schema = STORE_SCHEMA
        if self.chaos is not None and self.chaos("schema"):
            schema = STORE_SCHEMA + 1
        try:
            payload, blobs = encode_summary(
                callee,
                entry,
                exits,
                cutpoints,
                env,
                unroll=unroll,
                mode=mode,
                schema=schema,
                cone=cone,
            )
        except UntranslatableWitness:
            # A cutpoint outside the entry's canonical form cannot be
            # replayed in another process; skip recording silently (the
            # in-memory table still has the summary for this run).
            return False
        key = self.lookup_key(
            callee,
            payload["entry"],
            payload["cutpoints"],
            unroll=unroll,
            mode=mode,
            cone=cone,
        )
        try:
            for digest, blob in blobs.items():
                self._disk.put_object(blob, digest)
            written = self._disk.put(key, payload_bytes(payload))
        except OSError as exc:
            self._io_error(callee, f"{callee}: store write failed: {exc}")
            return False
        self._io_errors_in_a_row = 0
        if written:
            self.tally("writes")
            metrics.inc("store.writes")
        return written

    # ------------------------------------------------------------------
    # Fixpoint bundles (incremental re-analysis)
    # ------------------------------------------------------------------
    #
    # Whole-procedure summary tables (repro.store.fixpoint) keyed on the
    # procedure's callee-cone digest.  The store hands back the *raw*
    # sub-payload list -- the engine validates each sub-payload with the
    # same validate_summary_payload discipline as per-entry hits, and
    # degrades the remainder of a bundle to a from-scratch cone on the
    # first failure.

    def get_blob(self, digest: str) -> bytes:
        """Checksum-verified object bytes (raises ``StoreCorrupt`` /
        ``OSError`` / ``KeyError``-family like the disk layer; callers
        contain)."""
        return self._disk.get_object(digest)

    def consult_fixpoint(
        self,
        procedure: str,
        cone: str,
        metrics=_NULL_METRICS,
        *,
        unroll: int = 0,
        mode: str = "strict",
    ) -> "list[dict] | None":
        """The raw summary sub-payloads bundled for (*procedure*,
        *cone*) under the given engine configuration, or None.  Never
        raises.  Only bundle-level structure is checked here; each
        sub-payload is validated by the engine at install time."""
        if not self.enabled:
            return None
        from repro.store.fixpoint import fixpoint_key

        self.tally("fixpoint_lookups")
        self.tally("lookups")
        metrics.inc("incr.fixpoint.lookups")
        metrics.inc("store.lookups")
        key = fixpoint_key(
            procedure, cone, unroll=unroll, mode=mode, schema=STORE_SCHEMA
        )
        try:
            raw = self._disk.get(key)
        except StoreCorrupt as exc:
            self._reject(procedure, metrics, f"{procedure}: fixpoint: {exc}")
            self.tally("fixpoint_misses")
            metrics.inc("incr.fixpoint.misses")
            return None
        except OSError as exc:
            self._io_error(
                procedure, f"{procedure}: fixpoint store read failed: {exc}"
            )
            self.tally("fixpoint_misses")
            metrics.inc("incr.fixpoint.misses")
            return None
        if raw is None:
            self.tally("fixpoint_misses")
            self.tally("misses")
            metrics.inc("incr.fixpoint.misses")
            metrics.inc("store.misses")
            return None
        self._io_errors_in_a_row = 0
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            self._reject(
                procedure, metrics,
                f"{procedure}: undecodable fixpoint entry: {exc}",
            )
            self.tally("fixpoint_misses")
            metrics.inc("incr.fixpoint.misses")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != "fixpoint"
            or payload.get("schema") != STORE_SCHEMA
            or payload.get("procedure") != procedure
            or payload.get("cone") != cone
            or payload.get("unroll") != unroll
            or payload.get("mode") != mode
            or not isinstance(payload.get("summaries"), list)
        ):
            self._reject(
                procedure, metrics,
                f"{procedure}: fixpoint entry does not match its lookup key",
            )
            self.tally("fixpoint_misses")
            metrics.inc("incr.fixpoint.misses")
            return None
        self.tally("fixpoint_hits")
        self.tally("hits")
        metrics.inc("incr.fixpoint.hits")
        metrics.inc("store.hits")
        return list(payload["summaries"])

    def record_fixpoint(
        self,
        procedure: str,
        cone: str,
        summaries,
        env,
        metrics=_NULL_METRICS,
        *,
        unroll: int = 0,
        mode: str = "strict",
    ) -> bool:
        """Persist a procedure's full summary table as one bundle,
        unioned with whatever bundle already sits under the key (other
        runs of the identical cone may have tabulated entry shapes this
        run never saw).  Never raises; returns True when new bytes
        reached disk."""
        if not self.enabled:
            return False
        from repro.store.fixpoint import (
            encode_fixpoint,
            fixpoint_key,
            merge_fixpoint_payloads,
        )

        if self.chaos is not None:
            self.chaos.begin_write()
        schema = STORE_SCHEMA
        if self.chaos is not None and self.chaos("schema"):
            schema = STORE_SCHEMA + 1
        payload, blobs = encode_fixpoint(
            procedure, cone, summaries, env,
            unroll=unroll, mode=mode, schema=schema,
        )
        if payload is None:
            return False
        key = fixpoint_key(
            procedure, cone, unroll=unroll, mode=mode, schema=STORE_SCHEMA
        )
        try:
            existing = self._disk.get(key)
        except (StoreCorrupt, OSError):
            existing = None  # quarantined or unreadable: start fresh
        if existing is not None:
            try:
                payload = merge_fixpoint_payloads(payload, json.loads(existing))
            except ValueError:
                pass
        try:
            for digest, blob in blobs.items():
                self._disk.put_object(blob, digest)
            written = self._disk.put(key, payload_bytes(payload))
        except OSError as exc:
            self._io_error(
                procedure, f"{procedure}: fixpoint store write failed: {exc}"
            )
            return False
        self._io_errors_in_a_row = 0
        if written:
            self.tally("fixpoint_writes")
            metrics.inc("incr.fixpoint.writes")
        return written

    # ------------------------------------------------------------------
    # Lemmas
    # ------------------------------------------------------------------
    #
    # Verified bridging lemmas (repro.logic.lemmas) ride in the same
    # store under their canonical pair key.  The same design rules
    # apply: the store is an accelerator -- LemmaEngine re-verifies
    # every consulted payload by self-derivation before trusting it
    # (its validation-on-read), and disk trouble degrades to a miss.

    @staticmethod
    def lemma_lookup_key(pair_key: str) -> str:
        parts = ["lemma", str(STORE_SCHEMA), pair_key]
        return payload_digest("\x00".join(parts).encode("utf-8"))

    def consult_lemma(self, pair_key: str) -> "dict | None":
        """The raw lemma payload recorded under *pair_key*, or None.
        Never raises.  The caller owns semantic validation (schema,
        kind, re-verification); this method only contains I/O and
        decode failures."""
        if not self.enabled:
            return None
        self.tally("lemma_lookups")
        try:
            raw = self._disk.get(self.lemma_lookup_key(pair_key))
        except StoreCorrupt as exc:
            self._reject(None, _NULL_METRICS, f"lemma entry: {exc}")
            return None
        except OSError as exc:
            self._io_error(None, f"lemma store read failed: {exc}")
            return None
        if raw is None:
            self.tally("lemma_misses")
            return None
        self._io_errors_in_a_row = 0
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            self.reject_lemma(pair_key, f"undecodable entry: {exc}")
            return None
        if not isinstance(payload, dict):
            self.reject_lemma(pair_key, "payload is not an object")
            return None
        self.tally("lemma_hits")
        return payload

    def record_lemma(self, pair_key: str, payload: dict) -> bool:
        """Persist one verified lemma payload.  Never raises; returns
        True when new bytes reached disk."""
        if not self.enabled:
            return False
        if self.chaos is not None:
            self.chaos.begin_write()
        try:
            written = self._disk.put(
                self.lemma_lookup_key(pair_key), payload_bytes(payload)
            )
        except OSError as exc:
            self._io_error(None, f"lemma store write failed: {exc}")
            return False
        self._io_errors_in_a_row = 0
        if written:
            self.tally("lemma_writes")
        return written

    def reject_lemma(self, pair_key: str, reason: str) -> None:
        """A present-but-unusable lemma entry (bad schema, failed
        re-verification): counted and diagnosed like any invalid store
        entry, then treated as a miss.  The entry itself stays on disk
        -- validation-on-read rejects it again on every consult, the
        same containment the summary path uses."""
        self.tally("invalid")
        self.tally("lemma_misses")
        self._invalid(None, f"lemma entry rejected: {reason}")
