"""Crash-safe content-addressed disk layer for the durable store.

Layout under the store root::

    schema          the layout version (one integer line)
    objects/        <sha256-hex>.json -- one checksummed payload each
    index.log       append-only JSON lines {"k": lookup, "o": object}
    lock            advisory write lock (fcntl.flock, where available)

Invariants:

* **Objects are immutable and self-checking.**  A file's name is the
  SHA-256 of its contents, so the digest doubles as the per-entry
  checksum; any read whose bytes do not hash to the file name raises
  :class:`StoreCorrupt` and quarantines the object (best-effort
  unlink + local index drop) so a later record can heal it.
* **Writes are atomic.**  Every object is written to a same-directory
  temp file, flushed, fsynced, then ``os.replace``d into place; the
  directory is fsynced after the rename where the platform allows.
  A crash leaves either no object or a complete one -- never a file
  that exists under its final name with partial contents (a torn temp
  file that does get renamed is caught by the checksum).
* **The index tolerates torn tails.**  Readers parse complete JSON
  lines and skip anything malformed (counted in ``torn_lines``);
  writers terminate an unterminated tail with a newline before
  appending, so one torn record never corrupts its successors.
* **Readers are lock-free.**  They track their byte offset and
  incrementally parse new appends; a shrunken or replaced file
  (compaction) triggers a full reload.  Only writers take the
  advisory lock, so a shared store never blocks analysis reads.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

try:  # pragma: no cover - absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

__all__ = ["DiskStore", "StoreCorrupt"]

#: Compact once the log holds this many dead lines beyond the live set.
_COMPACT_SLACK = 64


class StoreCorrupt(Exception):
    """A checksummed read failed validation (torn or flipped bytes)."""


class DiskStore:
    """One store directory; see the module docstring for invariants."""

    def __init__(self, root, chaos=None):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.index_path = self.root / "index.log"
        self.lock_path = self.root / "lock"
        self.schema_path = self.root / "schema"
        self.chaos = chaos
        self._index: dict[str, str] = {}
        self._offset = 0
        self._ino: int | None = None
        self._lines = 0
        self._tmp_counter = 0
        self.torn_lines = 0
        self.compactions = 0

    def open(self, schema: int) -> None:
        """Create the layout (idempotent), verify the schema marker,
        sweep orphaned temp files, and load the index."""
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        if self.schema_path.exists():
            text = self.schema_path.read_text().strip()
            if text != str(schema):
                raise StoreCorrupt(
                    f"store layout version {text!r} != expected {schema}"
                )
        else:
            self._write_file(self.schema_path, f"{schema}\n".encode())
        for directory in (self.objects_dir, self.root):
            for orphan in directory.glob("tmp-*"):
                try:
                    orphan.unlink()
                except OSError:
                    pass
        self.refresh()

    # ------------------------------------------------------------------
    # Index
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Fold any new index appends into the in-memory map."""
        try:
            stat = os.stat(self.index_path)
        except FileNotFoundError:
            self._index.clear()
            self._offset = 0
            self._ino = None
            self._lines = 0
            return
        if stat.st_ino != self._ino or stat.st_size < self._offset:
            # Compacted or replaced underneath us: full reload.
            self._index.clear()
            self._offset = 0
            self._ino = stat.st_ino
            self._lines = 0
        if stat.st_size == self._offset:
            return
        with open(self.index_path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        self._offset += len(chunk)
        for line in chunk.split(b"\n"):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                lookup, digest = entry["k"], entry["o"]
                if not (isinstance(lookup, str) and isinstance(digest, str)):
                    raise ValueError("non-string index entry")
            except (ValueError, KeyError, TypeError):
                self.torn_lines += 1
                continue
            self._index[lookup] = digest
            self._lines += 1

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, lookup: str) -> bool:
        return lookup in self._index

    # ------------------------------------------------------------------
    # Reads (lock-free)
    # ------------------------------------------------------------------
    def get(self, lookup: str) -> "bytes | None":
        """The checksum-verified payload the index maps *lookup* to, or
        None on a miss.  Raises :class:`StoreCorrupt` on a bad object."""
        self.refresh()
        digest = self._index.get(lookup)
        if digest is None:
            return None
        return self.get_object(digest)

    def get_object(self, digest: str) -> bytes:
        """Read + verify one content-addressed object."""
        path = self.objects_dir / f"{digest}.json"
        try:
            data = path.read_bytes()
        except FileNotFoundError as exc:
            raise StoreCorrupt(f"object {digest[:12]} missing") from exc
        from repro.store.codec import payload_digest

        if payload_digest(data) != digest:
            self._quarantine(digest, path)
            raise StoreCorrupt(f"object {digest[:12]} fails its checksum")
        return data

    def _quarantine(self, digest: str, path: Path) -> None:
        """Drop a corrupt object so a later record can rewrite it.  The
        on-disk index may still reference it; ``put`` re-appends after a
        local drop, which also repairs other processes' views."""
        try:
            path.unlink()
        except OSError:
            pass
        for lookup, mapped in list(self._index.items()):
            if mapped == digest:
                del self._index[lookup]

    # ------------------------------------------------------------------
    # Writes (advisory-locked)
    # ------------------------------------------------------------------
    def put(self, lookup: str, payload: bytes) -> bool:
        """Persist *payload* and map *lookup* to it.  Returns False when
        the identical mapping is already durable (warm re-records are
        free)."""
        from repro.store.codec import payload_digest

        digest = payload_digest(payload)
        object_path = self.objects_dir / f"{digest}.json"
        if self._index.get(lookup) == digest and object_path.exists():
            return False
        self.put_object(payload, digest)
        with self._writer_lock():
            self.refresh()
            if self._index.get(lookup) != digest or not object_path.exists():
                if self.chaos is not None:
                    self.chaos("pre-index", self.index_path)
                self._append_index_line(lookup, digest)
                self._index[lookup] = digest
            if self._lines > 2 * len(self._index) + _COMPACT_SLACK:
                self._compact()
        return True

    def put_object(self, payload: bytes, digest: "str | None" = None) -> str:
        """Write one content-addressed object (atomic, idempotent)."""
        from repro.store.codec import payload_digest

        if digest is None:
            digest = payload_digest(payload)
        path = self.objects_dir / f"{digest}.json"
        if path.exists():
            return digest
        self._tmp_counter += 1
        tmp = self.objects_dir / f"tmp-{os.getpid()}-{self._tmp_counter}"
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        if self.chaos is not None:
            self.chaos("pre-rename", tmp)
        os.replace(tmp, path)
        self._fsync_dir(self.objects_dir)
        if self.chaos is not None:
            self.chaos("post-object", path)
        return digest

    def _append_index_line(self, lookup: str, digest: str) -> None:
        line = json.dumps({"k": lookup, "o": digest}).encode() + b"\n"
        with open(self.index_path, "ab") as handle:
            # Terminate a torn tail left by a crashed writer so the
            # junk bytes become one skippable line, not a prefix of
            # ours.
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                with open(self.index_path, "rb") as reader:
                    reader.seek(-1, os.SEEK_END)
                    if reader.read(1) != b"\n":
                        handle.write(b"\n")
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
            self._offset = handle.tell()
        stat = os.stat(self.index_path)
        self._ino = stat.st_ino
        self._lines += 1

    def _compact(self) -> None:
        """Rewrite the log to the live set (caller holds the lock)."""
        lines = b"".join(
            json.dumps({"k": k, "o": o}).encode() + b"\n"
            for k, o in sorted(self._index.items())
        )
        self._write_file(self.index_path, lines)
        stat = os.stat(self.index_path)
        self._offset = stat.st_size
        self._ino = stat.st_ino
        self._lines = len(self._index)
        self.compactions += 1

    def _write_file(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(f"tmp-{os.getpid()}-{path.name}")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._fsync_dir(path.parent)

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        try:  # pragma: no cover - platform-dependent
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _writer_lock(self):
        return _FlockGuard(self.lock_path)


class _FlockGuard:
    """Advisory exclusive lock; a no-op where flock is unavailable."""

    def __init__(self, path: Path):
        self.path = path
        self.fd: int | None = None

    def __enter__(self):
        if fcntl is not None:
            self.fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(self.fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info):
        if self.fd is not None:
            try:
                fcntl.flock(self.fd, fcntl.LOCK_UN)
            finally:
                os.close(self.fd)
                self.fd = None
        return False
