"""Store-level fault injection.

The disk layer exposes four *stages* inside every record event, and a
:class:`StoreChaos` schedule damages the write at exactly one of them:

==============  ======================================================
kind            what it simulates
==============  ======================================================
``torn-write``  power loss mid-``write()``: the temp file is truncated
                to half before the atomic rename, committing a torn
                object whose checksum cannot match its name
``checksum-flip``  a bit flip at rest: one byte of the committed
                object file is inverted after the rename
``stale-schema``  an entry written by a newer/older code version: the
                payload's schema number is bumped *before* the digest
                is taken, so the checksum is valid but the schema
                check must reject it
``kill``        a crash between object commit and index append: the
                process SIGKILLs itself, leaving orphaned temp files
                and/or unindexed objects for recovery to clean up
==============  ======================================================

Specs count *record events* (1-based), not individual file writes, so
``torn-write@2`` damages the second summary the store tries to
persist.  Each spec fires at most once.

Schedules come from three places: programmatically (tests), from the
``REPRO_STORE_CHAOS`` environment variable (``"torn-write@1,kill@3"``)
so crash kinds can be injected into subprocesses, and from the
crucible's :class:`~repro.crucible.faults.FaultPlan` bridge.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

__all__ = ["CHAOS_ENV", "STORE_FAULT_KINDS", "StoreChaos", "StoreFaultSpec"]

CHAOS_ENV = "REPRO_STORE_CHAOS"

STORE_FAULT_KINDS = ("torn-write", "checksum-flip", "stale-schema", "kill")

#: Which disk-layer stage each kind fires at.
_STAGE_OF_KIND = {
    "stale-schema": "schema",
    "torn-write": "pre-rename",
    "checksum-flip": "post-object",
    "kill": "pre-index",
}


@dataclass(frozen=True, slots=True)
class StoreFaultSpec:
    """Damage the *at*-th record event (1-based) with *kind*."""

    kind: str
    at: int = 1

    def __post_init__(self) -> None:
        if self.kind not in STORE_FAULT_KINDS:
            raise ValueError(
                f"unknown store fault kind {self.kind!r}; "
                f"expected one of {STORE_FAULT_KINDS}"
            )
        if self.at < 1:
            raise ValueError(f"store fault ordinal must be >= 1, got {self.at}")

    @classmethod
    def parse(cls, text: str) -> "StoreFaultSpec":
        """Parse ``"<kind>@<n>"`` (``@<n>`` optional, default 1)."""
        kind, _, ordinal = text.strip().partition("@")
        return cls(kind, int(ordinal) if ordinal else 1)


class StoreChaos:
    """A schedule of :class:`StoreFaultSpec` applied by the disk layer.

    The store calls :meth:`begin_write` once per record event and the
    disk layer calls the instance at each stage with the file being
    written.  ``fired`` records ``(kind, event)`` pairs for assertions.
    """

    def __init__(self, specs: "list[StoreFaultSpec] | tuple[StoreFaultSpec, ...]"):
        self.specs = list(specs)
        self.writes = 0
        self.fired: list[tuple[str, int]] = []
        self._done: set[int] = set()

    @classmethod
    def from_env(cls, environ=os.environ) -> "StoreChaos | None":
        """Build a schedule from ``REPRO_STORE_CHAOS``, or None."""
        raw = environ.get(CHAOS_ENV, "").strip()
        if not raw:
            return None
        specs = [
            StoreFaultSpec.parse(part)
            for part in raw.split(",")
            if part.strip()
        ]
        return cls(specs) if specs else None

    def begin_write(self) -> None:
        self.writes += 1

    def __call__(self, stage: str, path=None) -> bool:
        """Run every due spec for *stage*; return True when the payload
        should be written with a stale schema number."""
        stale = False
        for position, spec in enumerate(self.specs):
            if position in self._done or spec.at != self.writes:
                continue
            if _STAGE_OF_KIND[spec.kind] != stage:
                continue
            self._done.add(position)
            self.fired.append((spec.kind, self.writes))
            if spec.kind == "stale-schema":
                stale = True
            elif spec.kind == "torn-write":
                _truncate_half(path)
            elif spec.kind == "checksum-flip":
                _flip_last_byte(path)
            elif spec.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
        return stale


def _truncate_half(path) -> None:
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)
        handle.flush()
        os.fsync(handle.fileno())


def _flip_last_byte(path) -> None:
    with open(path, "r+b") as handle:
        data = handle.read()
        if not data:
            return
        handle.seek(len(data) - 1)
        handle.write(bytes([data[-1] ^ 0xFF]))
        handle.flush()
        os.fsync(handle.fileno())
