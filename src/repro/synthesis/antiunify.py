"""Anti-unification of segments (paper, §3.1.2 step 2).

The body of the recurrence is the maximal overlapping portion of all
segments, computed by anti-unifying them.  The paper's ``phi`` is a
one-to-one mapping between tuples of sub-terms and variables which
guarantees that identical sub-term tuples are replaced by the same
variable throughout the whole term -- this is what makes two field
positions that always carry the same value share one parameter.

We anti-unify all segments at once (n-ary) rather than folding the
binary operator, which is equivalent and keeps ``phi`` keyed on the
full value tuple.  Entries of a tuple may be ``None`` when a segment
does not instantiate the position (a nested predicate instance whose
occurrence in that segment is the base case ``null``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synthesis.terms import (
    HOLE,
    Hole,
    NULL_TERM,
    NullTerm,
    PredTerm,
    StarTerm,
    Term,
    VarTerm,
)

__all__ = ["AntiUnification", "anti_unify"]


@dataclass
class AntiUnification:
    """The generalized body plus, per variable, its value in each segment."""

    body: Term
    var_values: dict[int, tuple[Term | None, ...]] = field(default_factory=dict)

    def values_of(self, var: VarTerm) -> tuple[Term | None, ...]:
        return self.var_values[var.index]


def anti_unify(segments: list[Term]) -> AntiUnification:
    """Anti-unify *segments* (all matching one skeleton) into a body."""
    if not segments:
        raise ValueError("need at least one segment")
    phi: dict[tuple[Term | None, ...], VarTerm] = {}
    result = AntiUnification(NULL_TERM)

    def make_var(values: tuple[Term | None, ...]) -> VarTerm:
        var = phi.get(values)
        if var is None:
            var = VarTerm(len(phi) + 1)
            phi[values] = var
            result.var_values[var.index] = values
        return var

    def au(nodes: tuple[Term, ...]) -> Term:
        first = nodes[0]
        if all(isinstance(n, Hole) for n in nodes):
            return HOLE
        if all(isinstance(n, NullTerm) for n in nodes):
            return NULL_TERM
        if isinstance(first, StarTerm) and all(
            isinstance(n, StarTerm) and n.fields == first.fields for n in nodes
        ):
            targets = tuple(
                au(tuple(n.targets[i] for n in nodes))
                for i in range(len(first.fields))
            )
            return StarTerm(first.fields, targets, loc=None)
        preds = [n for n in nodes if isinstance(n, PredTerm)]
        if preds and all(isinstance(n, (PredTerm, NullTerm)) for n in nodes):
            # A nested, already-folded structure; segments where the
            # field is null are its base case and contribute no values.
            pred, arity = preds[0].pred, len(preds[0].args)
            if all(p.pred == pred and len(p.args) == arity for p in preds):
                args = tuple(
                    make_var(
                        tuple(
                            n.args[i] if isinstance(n, PredTerm) else None
                            for n in nodes
                        )
                    )
                    for i in range(arity)
                )
                return PredTerm(pred, args, loc=None)
        return make_var(nodes)

    result.body = au(tuple(segments))
    return result
