"""Term trees for inductive recursion synthesis (paper, §3.1.1).

The recurrence-detection algorithm of Summers/Schmid operates on
*terms*.  The paper translates each heap location into a term that
describes the data structure reachable from it:

* a ``*`` node per heap location, with one child per field (the paper
  writes one ``|->_n`` child per field; we keep the field names on the
  star node and the source-location name in ``loc``, which carries the
  same information);
* *name terms* in prefix form for locations referenced but not expanded
  along this path (``[h.n] = n([h])``) -- these encode the access paths
  that ``rearrange_names`` chose and are what parameter-substitution
  inference pattern-matches on;
* ``NULL`` leaves; and
* *un-expanded* nodes (a ``*`` term with no children): locations linked
  into the structure whose cells carry no assertions yet -- the
  frontier where symbolic execution of the loop stopped.

Predicate instances already present in the heap (nested structures
folded earlier, or callee summaries) appear as :class:`PredTerm`
leaves.

Positions are tuples of child indices; ``subterm(t, pos)`` addresses
``t|pos`` as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclasses_field

from repro.logic.heapnames import (
    FieldPath,
    GlobalLoc,
    HeapName,
    Var,
    path_of,
    root_of,
)

__all__ = [
    "Term",
    "NullTerm",
    "Hole",
    "VarTerm",
    "NameTerm",
    "StarTerm",
    "PredTerm",
    "NULL_TERM",
    "HOLE",
    "name_term",
    "children",
    "subterm",
    "positions",
    "contains_terminal",
    "is_terminal",
    "term_size",
    "format_term",
]


class Term:
    """Base class of all term-tree nodes."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class NullTerm(Term):
    """The ``NULL`` leaf."""

    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True, slots=True)
class Hole(Term):
    """The ``0`` symbol marking recursion points in skeletons/segments."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True, slots=True)
class VarTerm(Term):
    """An anti-unification variable."""

    index: int

    def __str__(self) -> str:
        return f"X{self.index}"


@dataclass(frozen=True, slots=True)
class NameTerm(Term):
    """A name term in prefix form: ``[g.a.b] = b(a(g))``.

    ``origin`` remembers the heap name the term was translated from so
    that synthesis can map parameter instantiations back to symbolic
    values; it does not participate in term equality.
    """

    root: str
    fields: tuple[str, ...] = ()
    origin: HeapName | None = dataclasses_field(default=None, compare=False)

    def outer(self) -> "NameTerm | None":
        """Strip the outermost field application (``b(a(g)) -> a(g)``)."""
        if not self.fields:
            return None
        return NameTerm(self.root, self.fields[:-1])

    def extended(self, field_name: str) -> "NameTerm":
        """Apply one more field (``[h] -> [h.f]``)."""
        return NameTerm(self.root, self.fields + (field_name,))

    def __str__(self) -> str:
        text = self.root
        for f in self.fields:
            text = f"{f}({text})"
        return text


@dataclass(frozen=True, slots=True)
class StarTerm(Term):
    """An expanded heap location: one target child per field.

    ``fields`` and ``targets`` are parallel and sorted by field name so
    that nodes of the same struct type always have the same shape.  An
    un-expanded node has no fields.
    """

    fields: tuple[str, ...]
    targets: tuple[Term, ...]
    loc: HeapName | None = None

    @property
    def is_unexpanded(self) -> bool:
        return not self.fields

    def target_of(self, field_name: str) -> Term:
        return self.targets[self.fields.index(field_name)]

    def __str__(self) -> str:
        if self.is_unexpanded:
            return f"*({self.loc})" if self.loc is not None else "*()"
        parts = [f"{f}:{t}" for f, t in zip(self.fields, self.targets)]
        return "*(" + ", ".join(parts) + ")"


@dataclass(frozen=True, slots=True)
class PredTerm(Term):
    """An already-folded sub-structure: ``A([h1], ..., [hn])``."""

    pred: str
    args: tuple[Term, ...]
    loc: HeapName | None = None

    def __str__(self) -> str:
        return f"{self.pred}(" + ", ".join(str(a) for a in self.args) + ")"


NULL_TERM = NullTerm()
HOLE = Hole()


def name_term(name: HeapName) -> NameTerm:
    """The name term of a heap location (``[h]`` of the paper)."""
    root = root_of(name)
    root_text = root.name if isinstance(root, (Var, GlobalLoc)) else str(root)
    return NameTerm(root_text, path_of(name), origin=name)


def children(term: Term) -> tuple[Term, ...]:
    if isinstance(term, StarTerm):
        return term.targets
    if isinstance(term, PredTerm):
        return term.args
    if isinstance(term, NameTerm):
        inner = term.outer()
        return (inner,) if inner is not None else ()
    return ()


def subterm(term: Term, pos: tuple[int, ...]) -> Term | None:
    """``term|pos``, or None when the position does not exist."""
    node = term
    for index in pos:
        kids = children(node)
        if index >= len(kids):
            return None
        node = kids[index]
    return node


def positions(term: Term, prefix: tuple[int, ...] = ()) -> list[tuple[int, ...]]:
    """All positions of *term* in preorder (the root is ``()``)."""
    result = [prefix]
    for i, child in enumerate(children(term)):
        result.extend(positions(child, prefix + (i,)))
    return result


def is_terminal(term: Term) -> bool:
    """Is *term* a place where an unfolding stops (NULL or un-expanded)?"""
    return isinstance(term, NullTerm) or (
        isinstance(term, StarTerm) and term.is_unexpanded
    )


def contains_terminal(term: Term) -> bool:
    """Does *term* contain a NULL or un-expanded node?  (The ``0 <= t``
    side condition of the paper's skeleton-matching relation.)"""
    if is_terminal(term):
        return True
    if isinstance(term, NameTerm):
        return False
    return any(contains_terminal(c) for c in children(term))


def term_size(term: Term) -> int:
    return 1 + sum(term_size(c) for c in children(term))


def format_term(term: Term, indent: int = 0) -> str:
    """Multi-line rendering mirroring the paper's Figure 4(b)."""
    pad = "  " * indent
    if isinstance(term, StarTerm):
        if term.is_unexpanded:
            return f"{pad}*  ({term.loc})   <- un-expanded"
        lines = [f"{pad}*  ({term.loc})"]
        for f, t in zip(term.fields, term.targets):
            if isinstance(t, (StarTerm, PredTerm)) and not (
                isinstance(t, StarTerm) and t.is_unexpanded
            ):
                lines.append(f"{pad}  .{f} ->")
                lines.append(format_term(t, indent + 2))
            else:
                lines.append(f"{pad}  .{f} -> {t}")
        return "\n".join(lines)
    return f"{pad}{term}"
