"""Parameter-substitution inference (paper, §3.1.2 step 3).

Once the recurrence body is known, the sub-terms where the segments
differ are instantiations of the parameters; the substitution applied
at each recursion point is recovered by identifying regularities in
those terms across parent/child segment pairs (the paper's ``sub`` /
``is_recurrent``).  Because parameter instantiations are *name terms*
-- access paths chosen by ``rearrange_names`` -- the patterns are
simple: a child-call argument is either a parent parameter ``xk``, the
root of one of the parent's sub-structures (``field(x1)``, i.e. a
:class:`RecTarget`), or null.

With two executed iterations some recursion points contribute a single
parent/child sample, which can be ambiguous (a value may equal several
parent parameters).  We resolve ties deterministically -- identity
substitution first, then lower parameter index, then sub-structure
roots -- and rely on the invariant-verification step for soundness, as
the paper does.  :func:`fit_argument` returns all consistent candidates
in preference order so the synthesizer can backtrack across them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.predicates import ArgExpr, NullArg, ParamArg, RecTarget
from repro.synthesis.terms import NameTerm, NullTerm, Term

__all__ = ["SampleContext", "fit_argument"]


@dataclass(frozen=True)
class SampleContext:
    """The parameter instantiation of one parent segment.

    ``params[k]`` is the value of parameter ``x(k+1)`` in that segment
    (``params[0]`` is the node's own name term); ``rec_fields[i]`` is
    the field whose target roots the i-th sub-structure of the body.
    """

    params: tuple[Term | None, ...]
    rec_fields: tuple[str, ...]


def fit_argument(
    samples: list[tuple[SampleContext, Term | None]],
    prefer_param: int | None = None,
) -> list[ArgExpr]:
    """All argument expressions consistent with the samples, best first.

    Each sample pairs a parent context with the observed value of the
    argument in the corresponding child call.  An empty sample list
    (a recursion point whose every unfolding was the base case) is
    explained by any argument; we return ``[NullArg()]`` -- sound
    because the base case constrains nothing.
    """
    if not samples:
        return [NullArg()]
    if all(value is None or isinstance(value, NullTerm) for _, value in samples):
        return [NullArg()]

    candidates: list[ArgExpr] = []
    param_count = len(samples[0][0].params)

    def consistent_param(k: int) -> bool:
        return all(
            value is not None and context.params[k] == value
            for context, value in samples
        )

    order = list(range(param_count))
    if prefer_param is not None and prefer_param in order:
        order.remove(prefer_param)
        order.insert(0, prefer_param)
    for k in order:
        if consistent_param(k):
            candidates.append(ParamArg(k))

    rec_field_count = len(samples[0][0].rec_fields)
    for i in range(rec_field_count):
        ok = True
        for context, value in samples:
            x1 = context.params[0]
            if not isinstance(x1, NameTerm) or value != x1.extended(
                context.rec_fields[i]
            ):
                ok = False
                break
        if ok:
            candidates.append(RecTarget(i))
    return candidates
