"""Recursion synthesis: from a term tree to a recursive predicate (§3).

``synthesize_term`` runs the full pipeline on one top-level term:

1. search for a valid segmentation (:mod:`repro.synthesis.segmentation`);
2. anti-unify the segments into the recurrence body
   (:mod:`repro.synthesis.antiunify`);
3. infer the parameter substitutions applied at each recursion point
   (:mod:`repro.synthesis.substitution`);
4. assemble a :class:`~repro.logic.predicates.PredicateDef`, register it
   in the environment ``T`` (structurally deduplicated), and return the
   *instance*: the top-level arguments (the root segment's parameter
   values), the truncation points (the un-expanded frontier nodes where
   symbolic execution stopped), and the set of heap locations the term
   covered -- everything the caller needs to fold the trace into the
   synthesized invariant.

Candidate segmentations or ambiguous substitutions that fail later
checks are backtracked over; if nothing works the function returns
None and the caller falls back (e.g. to synthesizing the sub-structures
below a non-recursive prefix node, the paper's "recursion does not
start at the root" case).  Soundness never rests on the choices made
here: the analysis verifies every hypothesized invariant by deriving it
over the loop body and halts on failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.logic.heapnames import HeapName
from repro.logic.predicates import (
    AnyArg,
    ArgExpr,
    FieldSpec,
    NullArg,
    ParamArg,
    PredicateDef,
    PredicateEnv,
    RecCallSpec,
    RecTarget,
)
from repro.logic.symvals import NULL_VAL, SymVal
from repro.synthesis.antiunify import AntiUnification, anti_unify
from repro.synthesis.segmentation import Segmentation, find_segmentations
from repro.synthesis.substitution import SampleContext, fit_argument
from repro.synthesis.terms import (
    Hole,
    NameTerm,
    NullTerm,
    PredTerm,
    StarTerm,
    Term,
    VarTerm,
    name_term,
    subterm,
)

__all__ = ["SynthesizedInstance", "SynthesisFailure", "synthesize_term", "synthesize_forest"]


class SynthesisFailure(Exception):
    """A candidate segmentation cannot be turned into a predicate."""


@dataclass(frozen=True)
class SynthesizedInstance:
    """The outcome of synthesizing one term."""

    definition: PredicateDef
    args: tuple[SymVal, ...]
    truncs: tuple[HeapName, ...]
    covered_sources: frozenset[HeapName]
    covered_instance_roots: frozenset[HeapName]

    def __str__(self) -> str:
        from repro.logic.assertions import PredInstance

        return str(
            PredInstance(self.definition.name, self.args, self.truncs)
        ) + f"  where  {self.definition}"


def synthesize_term(
    term: Term, env: PredicateEnv, hint: str = "P"
) -> SynthesizedInstance | None:
    """Synthesize a recursive predicate explaining *term*, or None.

    Each attempt reports to the active observability instruments: how
    many candidate segmentations were tried before one anti-unified
    into a predicate (or all were exhausted), and the outcome."""
    tried = 0
    instance: SynthesizedInstance | None = None
    for segmentation in find_segmentations(term):
        tried += 1
        try:
            instance = _build(term, segmentation, env, hint)
            break
        except SynthesisFailure:
            continue
    metrics = obs.METRICS
    if metrics.enabled:
        metrics.inc("synthesis.terms")
        metrics.inc("synthesis.segmentations_tried", tried)
        metrics.inc(
            "synthesis.succeeded" if instance is not None
            else "synthesis.failed"
        )
    tracer = obs.TRACER
    if tracer.enabled:
        tracer.event(
            "synthesis.term",
            segmentations_tried=tried,
            synthesized=instance is not None,
            predicate=instance.definition.name if instance else None,
        )
    return instance


def synthesize_forest(
    term: Term, env: PredicateEnv, hint: str = "P"
) -> list[SynthesizedInstance]:
    """Synthesize the maximal synthesizable sub-structures of *term*.

    Tries the root first; when the recursion does not start at the root
    (the structure hangs below non-recursive prefix data), descends into
    the expanded children.
    """
    instance = synthesize_term(term, env, hint)
    if instance is not None:
        return [instance]
    results: list[SynthesizedInstance] = []
    if isinstance(term, StarTerm):
        for target in term.targets:
            if isinstance(target, StarTerm) and not target.is_unexpanded:
                results.extend(synthesize_forest(target, env, hint))
    return results


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def _build(
    term: Term, segmentation: Segmentation, env: PredicateEnv, hint: str
) -> SynthesizedInstance:
    order = segmentation.segment_order
    index_of = {pos: i for i, pos in enumerate(order)}
    au = anti_unify([segmentation.segments[pos] for pos in order])
    body = au.body
    if not isinstance(body, StarTerm):
        raise SynthesisFailure("recurrence body is not a heap node")
    if any(len(r) != 1 for r in segmentation.recursion_points):
        raise SynthesisFailure("nested (multi-level) recurrence bodies unsupported")

    x1_values = tuple(_node_name(term, pos) for pos in order)

    # ------------------------------------------------------------------
    # Field specs, parameters and recursive calls
    # ------------------------------------------------------------------
    params: list[tuple[Term | None, ...]] = [x1_values]
    param_of_var: dict[int, int] = {}
    field_specs: list[FieldSpec] = []
    rec_fields: list[str] = []
    # (field, kind, payload): self-recursion or nested predicate call
    pending_calls: list[tuple[str, str, object]] = []

    def param_for(var: VarTerm) -> int:
        values = au.values_of(var)
        if values == x1_values:
            return 0
        if var.index in param_of_var:
            return param_of_var[var.index]
        for i, value in enumerate(values):
            if value is None:
                raise SynthesisFailure("parameter missing in a segment")
            if isinstance(value, NullTerm) and i != 0:
                raise SynthesisFailure("null parameter below the root")
            if not isinstance(value, (NameTerm, NullTerm)):
                raise SynthesisFailure(f"parameter value is not a name: {value}")
        params.append(values)
        param_of_var[var.index] = len(params) - 1
        return param_of_var[var.index]

    recursion_position_of_field: dict[str, tuple[int, ...]] = {}
    for field_index, (field_name, target) in enumerate(
        zip(body.fields, body.targets)
    ):
        if isinstance(target, Hole):
            rec_index = len(rec_fields)
            rec_fields.append(field_name)
            recursion_position_of_field[field_name] = (field_index,)
            field_specs.append(FieldSpec(field_name, RecTarget(rec_index)))
            pending_calls.append((field_name, "self", (field_index,)))
        elif isinstance(target, NullTerm):
            field_specs.append(FieldSpec(field_name, NullArg()))
        elif isinstance(target, VarTerm):
            if _holds_untracked_data(au.values_of(target)):
                # Opaque (non-pointer) payload that survived slicing:
                # a residual data field, not a parameter.
                field_specs.append(FieldSpec(field_name, AnyArg()))
            else:
                index = param_for(target)
                field_specs.append(FieldSpec(field_name, ParamArg(index)))
        elif isinstance(target, PredTerm):
            rec_index = len(rec_fields)
            rec_fields.append(field_name)
            field_specs.append(FieldSpec(field_name, RecTarget(rec_index)))
            pending_calls.append((field_name, "nested", target))
        else:
            raise SynthesisFailure(f"unsupported body target: {target}")

    # ------------------------------------------------------------------
    # Argument substitutions for each call
    # ------------------------------------------------------------------
    def context_at(pos: tuple[int, ...]) -> SampleContext:
        i = index_of[pos]
        return SampleContext(
            params=tuple(values[i] for values in params),
            rec_fields=tuple(rec_fields),
        )

    rec_call_specs: list[RecCallSpec] = []
    tail_preds: set[str] = set()
    for field_name, kind, payload in pending_calls:
        if kind == "self":
            position = payload
            pairs = [
                (ppos, cpos)
                for ppos, r_index, cpos in segmentation.pairs
                if segmentation.recursion_points[r_index] == position
            ]
            tails = [
                (ppos, tail)
                for ppos, r_index, tail in segmentation.folded_tails
                if segmentation.recursion_points[r_index] == position
            ]
            # The first argument of the unfolded call is the field's
            # target itself; verify the trace agrees.
            for ppos, cpos in pairs:
                parent_x1 = x1_values[index_of[ppos]]
                child_x1 = x1_values[index_of[cpos]]
                if not isinstance(parent_x1, NameTerm) or child_x1 != (
                    parent_x1.extended(field_name)
                ):
                    raise SynthesisFailure("recursion root is not the field target")
            for ppos, tail in tails:
                tail_preds.add(tail.pred)
                if len(tail.args) != len(params):
                    raise SynthesisFailure("folded tail has a different arity")
                parent_x1 = x1_values[index_of[ppos]]
                if not isinstance(parent_x1, NameTerm) or tail.args[0] != (
                    parent_x1.extended(field_name)
                ):
                    raise SynthesisFailure("folded tail root is not the field target")
            args: list[ArgExpr] = []
            for j in range(1, len(params)):
                samples = [
                    (context_at(ppos), params[j][index_of[cpos]])
                    for ppos, cpos in pairs
                ] + [
                    (context_at(ppos), tail.args[j]) for ppos, tail in tails
                ]
                candidates = fit_argument(samples, prefer_param=j)
                if not candidates:
                    raise SynthesisFailure(
                        f"no consistent substitution for x{j + 1} at .{field_name}"
                    )
                args.append(candidates[0])
            rec_call_specs.append(RecCallSpec("self", tuple(args)))
        else:
            pred_term: PredTerm = payload  # type: ignore[assignment]
            arg_values = [
                au.values_of(a) if isinstance(a, VarTerm) else None
                for a in pred_term.args
            ]
            if any(v is None for v in arg_values):
                raise SynthesisFailure("nested call argument is not a variable")
            # First argument must be the field's target.
            for i, pos in enumerate(order):
                value = arg_values[0][i]
                if value is None:
                    continue
                x1 = x1_values[i]
                if not isinstance(x1, NameTerm) or value != x1.extended(field_name):
                    raise SynthesisFailure("nested structure root mismatch")
            args = []
            for j in range(1, len(pred_term.args)):
                samples = [
                    (context_at(pos), arg_values[j][i])
                    for i, pos in enumerate(order)
                    if arg_values[j][i] is not None
                ]
                candidates = fit_argument(samples)
                if not candidates:
                    raise SynthesisFailure(
                        f"no consistent substitution in nested call at .{field_name}"
                    )
                args.append(candidates[0])
            rec_call_specs.append(RecCallSpec(pred_term.pred, tuple(args)))

    # A folded continuation must be the very predicate we are about to
    # derive: check structural agreement *before* registering anything,
    # so failed candidates leave no orphan definitions in T.
    if tail_preds:
        if len(tail_preds) > 1:
            raise SynthesisFailure(f"conflicting folded tails {tail_preds}")
        (tail_name,) = tail_preds
        if tail_name not in env:
            raise SynthesisFailure(f"unknown folded tail {tail_name}")
        candidate = PredicateDef(
            tail_name,
            len(params),
            tuple(field_specs),
            tuple(
                RecCallSpec(tail_name if c.pred == "self" else c.pred, c.args)
                for c in rec_call_specs
            ),
        )
        if candidate.structure_key() != env[tail_name].structure_key():
            raise SynthesisFailure(
                f"folded tail {tail_name} does not match the derived body"
            )
    definition = env.define(
        tuple(field_specs), tuple(rec_call_specs), arity=len(params), hint=hint
    )

    # ------------------------------------------------------------------
    # Top-level instantiation, truncation points, coverage
    # ------------------------------------------------------------------
    top_args = tuple(_to_symval(values[0]) for values in params)
    truncs: list[HeapName] = []
    covered_sources: set[HeapName] = set()
    covered_instances: set[HeapName] = set()
    _collect_coverage(term, truncs, covered_sources, covered_instances)
    return SynthesizedInstance(
        definition,
        top_args,
        tuple(truncs),
        frozenset(covered_sources),
        frozenset(covered_instances),
    )


def _holds_untracked_data(values: tuple[Term | None, ...]) -> bool:
    """True when some segment carries an opaque (origin-less) value at
    this position -- integer payload rather than a heap location."""
    return any(
        isinstance(v, NameTerm) and v.origin is None and not v.fields
        for v in values
    )


def _node_name(term: Term, pos: tuple[int, ...]) -> NameTerm:
    node = subterm(term, pos)
    if not isinstance(node, StarTerm) or node.loc is None:
        raise SynthesisFailure("segment without a source location")
    return name_term(node.loc)


def _to_symval(value: Term | None) -> SymVal:
    if isinstance(value, NullTerm):
        return NULL_VAL
    if isinstance(value, NameTerm) and value.origin is not None:
        return value.origin
    raise SynthesisFailure(f"cannot map {value} back to a symbolic value")


def _collect_coverage(
    term: Term,
    truncs: list[HeapName],
    sources: set[HeapName],
    instances: set[HeapName],
) -> None:
    if isinstance(term, StarTerm):
        if term.is_unexpanded:
            if term.loc is not None:
                truncs.append(term.loc)
            return
        if term.loc is not None:
            sources.add(term.loc)
        for target in term.targets:
            _collect_coverage(target, truncs, sources, instances)
    elif isinstance(term, PredTerm):
        if term.loc is not None:
            instances.add(term.loc)
