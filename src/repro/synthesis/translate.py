"""Translation of heap formulae into term forests (paper, §3.1.1).

The translation walks the abstract heap depth-first.  Every predicate
instantiation becomes the heap term of its first parameter; all
points-to assertions with the same source location are translated
together into that location's ``*`` term.  The choice between linking a
target as a sub-tree (continuing the expansion) and cutting the link
with a *name term* is guided by the access paths that
``rearrange_names`` encoded into the heap names: the target ``h2`` of
``h1.n |-> h2`` is expanded in place exactly when ``h2 == h1.n`` -- the
link that reveals the acyclic backbone.

The result is a forest of top-level term trees; thanks to the naming
heuristic each tree roughly corresponds to one data structure of the
program.
"""

from __future__ import annotations

from repro.logic.assertions import PointsTo, PredInstance
from repro.logic.formula import SpatialFormula
from repro.logic.heapnames import FieldPath, HeapName
from repro.logic.symvals import NullVal, OffsetVal, Opaque, SymVal
from repro.synthesis.terms import (
    NULL_TERM,
    NameTerm,
    PredTerm,
    StarTerm,
    Term,
    name_term,
)

__all__ = ["translate_heap", "heap_term_of"]


def _expanded_sources(spatial: SpatialFormula) -> dict[HeapName, list[PointsTo]]:
    sources: dict[HeapName, list[PointsTo]] = {}
    for atom in spatial.points_to_atoms():
        sources.setdefault(atom.src, []).append(atom)
    return sources


def _rooted_instances(spatial: SpatialFormula) -> dict[HeapName, PredInstance]:
    rooted: dict[HeapName, PredInstance] = {}
    for inst in spatial.pred_instances():
        root = inst.root
        if not isinstance(root, (NullVal, OffsetVal, Opaque)):
            rooted[root] = inst
    return rooted


def translate_heap(spatial: SpatialFormula) -> list[Term]:
    """Translate *spatial* into its forest of top-level term trees."""
    sources = _expanded_sources(spatial)
    rooted = _rooted_instances(spatial)

    # A location is linked (appears as the backbone target of a
    # points-to fact) when some h1.n |-> h2 has h2 named h1.n.
    linked: set[HeapName] = set()
    referenced: set[HeapName] = set()
    for atoms in sources.values():
        for atom in atoms:
            target = atom.target
            if isinstance(target, (NullVal, OffsetVal, Opaque)):
                continue
            referenced.add(target)
            if target == FieldPath(atom.src, atom.field):
                linked.add(target)

    tops = [
        loc
        for loc in sorted(set(sources) | set(rooted), key=str)
        if loc not in linked
    ]
    # Referenced-but-unexpanded locations that are not backbone-linked
    # stay as name terms inside other trees; they never become roots.
    memo: dict[HeapName, Term] = {}
    return [heap_term_of(loc, sources, rooted, memo) for loc in tops]


def heap_term_of(
    loc: HeapName,
    sources: dict[HeapName, list[PointsTo]],
    rooted: dict[HeapName, PredInstance],
    memo: dict[HeapName, Term],
) -> Term:
    """The heap term of one location (memoized; names keep it acyclic)."""
    cached = memo.get(loc)
    if cached is not None:
        return cached
    instance = rooted.get(loc)
    if instance is not None:
        term = PredTerm(
            instance.pred,
            tuple(_value_term(a) for a in instance.args),
            loc=loc,
        )
        memo[loc] = term
        return term
    atoms = sources.get(loc)
    if not atoms:
        term = StarTerm((), (), loc=loc)  # un-expanded node
        memo[loc] = term
        return term
    ordered = sorted(atoms, key=lambda a: a.field)
    fields = tuple(a.field for a in ordered)
    targets = []
    for atom in ordered:
        target = atom.target
        if isinstance(target, (NullVal, OffsetVal, Opaque)):
            targets.append(_value_term(target))
        elif target == FieldPath(loc, atom.field):
            targets.append(heap_term_of(target, sources, rooted, memo))
        else:
            targets.append(name_term(target))
    term = StarTerm(fields, tuple(targets), loc=loc)
    memo[loc] = term
    return term


def _value_term(value: SymVal) -> Term:
    if isinstance(value, NullVal):
        return NULL_TERM
    if isinstance(value, OffsetVal):
        # Un-aliased pointer arithmetic: name the base; the offset is
        # outside the shape domain and becomes an opaque name term.
        return NameTerm(str(value))
    if isinstance(value, Opaque):
        return NameTerm(str(value))
    return name_term(value)
