"""Segmentation search: finding the recursion points of a term (§3.1.2).

A *segmentation* of an input term ``t`` is a set ``R`` of positions --
the recursion points, "places in the recurrence body where it invokes
itself".  The unfolding points of ``t`` are derived by repeatedly
unrolling the recurrence at its recursion points; ``R`` is valid when
every derived unfolding point either terminates (a ``NULL`` or an
un-expanded node) or again matches the skeleton of the hypothetical
recurrence body (the paper's ``tskel <= u`` relation):

* ``0 <= u``   if ``u`` contains NULL or un-expanded nodes,
* ``x <= u``   if ``u`` does not contain NULL or un-expanded nodes
  (and, since predicate parameters must be *names* of heap locations,
  ``u`` is a name term or an already-folded predicate instance),
* ``f(s1..sn) <= f(u1..un)`` if ``si <= ui`` for all i.

The paper's Figure 5 walks the term left-to-right / top-to-bottom,
preferring to accept a potential recursion point and backtracking when
the segmentation fails to validate.  We implement the same search order
as a full backtracking generator (so a caller can also reject a
segmentation later -- e.g. when no consistent parameter substitution
exists -- and resume the search), which subsumes the paper's
modifications "to determine when NULL nodes are not unfolding points":
a NULL accepted too eagerly simply fails validation once the real
recursion points are considered, and the search moves on.

To guarantee that the recurrence is actually exercised (Summers'
two-example requirement; the paper symbolically executes two loop
iterations for the same reason), a valid segmentation must derive at
least one *non-terminal* unfolding point.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.synthesis.terms import (
    HOLE,
    Hole,
    NameTerm,
    NullTerm,
    PredTerm,
    StarTerm,
    Term,
    VarTerm,
    children,
    contains_terminal,
    is_terminal,
    positions,
    subterm,
)

__all__ = ["Segmentation", "find_segmentations", "make_skeleton", "skeleton_matches"]

Position = tuple[int, ...]


@dataclass(frozen=True)
class Segmentation:
    """A validated segmentation of an input term.

    ``segments`` maps the position of each non-terminal unfolding point
    (including the root, at position ``()``) to its *segment*: the
    subterm with the sub-structures at the recursion points replaced by
    holes.  ``pairs`` lists the parent/child unfoldings actually
    witnessed in the term: ``(parent_pos, recursion_index, child_pos)``.
    ``folded_tails`` lists unfolding points that are already-folded
    predicate instances (a recursion that continues below an earlier
    invariant) as ``(parent_pos, recursion_index, PredTerm)``.
    """

    recursion_points: tuple[Position, ...]
    skeleton: Term
    segments: dict[Position, Term]
    pairs: tuple[tuple[Position, int, Position], ...]
    folded_tails: tuple[tuple[Position, int, PredTerm], ...] = ()

    @property
    def segment_order(self) -> list[Position]:
        return sorted(self.segments, key=lambda p: (len(p), p))


def _is_stop(node: Term) -> bool:
    """A place where the derivation of unfolding points stops: the base
    case (NULL), the frontier (un-expanded) or an already-folded
    sub-structure (a predicate instance)."""
    return is_terminal(node) or isinstance(node, PredTerm)


def _contains_stop(node: Term) -> bool:
    if _is_stop(node):
        return True
    if isinstance(node, NameTerm):
        return False
    return any(_contains_stop(c) for c in children(node))


def find_segmentations(term: Term) -> Iterator[Segmentation]:
    """Yield valid segmentations of *term*, best-first.

    The order follows the paper: candidates are considered in preorder,
    accepting a candidate is preferred over skipping it, so the first
    yielded segmentation has its recursion points as high and as far
    left as possible (the minimal recurrence)."""
    if not isinstance(term, StarTerm) or term.is_unexpanded:
        return
    candidates = [p for p in positions(term) if p and _is_potential(term, p)]

    def search(index: int, chosen: list[Position]) -> Iterator[Segmentation]:
        if index == len(candidates):
            if chosen:
                result = _validate(term, tuple(chosen))
                if result is not None:
                    yield result
            return
        pos = candidates[index]
        if any(_is_position_prefix(r, pos) for r in chosen):
            # Inside an accepted recursion sub-structure; not a choice.
            yield from search(index + 1, chosen)
            return
        # Prefer accepting (paper's left-to-right, top-to-bottom greed).
        chosen.append(pos)
        yield from search(index + 1, chosen)
        chosen.pop()
        yield from search(index + 1, chosen)

    yield from search(0, [])


def _is_position_prefix(prefix: Position, pos: Position) -> bool:
    return len(prefix) < len(pos) and pos[: len(prefix)] == prefix


def _is_potential(term: Term, pos: Position) -> bool:
    """``is_potential_recursion_point`` of Figure 5."""
    node = subterm(term, pos)
    if isinstance(node, (NullTerm, PredTerm)):
        return True
    if isinstance(node, StarTerm):
        if node.is_unexpanded:
            return True
        return node.fields == term.fields and _contains_stop(node)
    return False


def make_skeleton(term: Term, recursion_points: tuple[Position, ...]) -> Term:
    """The minimal pattern of *term* reaching all recursion points.

    Recursion points become holes; every maximal subtree containing no
    recursion point is replaced by a variable at its highest point."""
    counter = [0]
    prefixes = {r[:i] for r in recursion_points for i in range(len(r) + 1)}

    def build(node: Term, pos: Position) -> Term:
        if pos in recursion_points:
            return HOLE
        if pos not in prefixes:
            counter[0] += 1
            return VarTerm(counter[0])
        kids = children(node)
        rebuilt = tuple(build(c, pos + (i,)) for i, c in enumerate(kids))
        if isinstance(node, StarTerm):
            return StarTerm(node.fields, rebuilt, loc=None)
        if isinstance(node, PredTerm):
            return PredTerm(node.pred, rebuilt, loc=None)
        raise AssertionError(
            f"recursion point inside a non-structural term: {node}"
        )

    return build(term, ())


def skeleton_matches(skeleton: Term, node: Term) -> bool:
    """The paper's ``tskel <= u`` relation."""
    if isinstance(skeleton, Hole):
        return _contains_stop(node)
    if isinstance(skeleton, VarTerm):
        if contains_terminal(node):
            return False
        # Parameters must be translated names of heap locations (or
        # already-folded sub-structures, which become nested calls).
        return isinstance(node, (NameTerm, PredTerm))
    if isinstance(skeleton, StarTerm):
        return (
            isinstance(node, StarTerm)
            and skeleton.fields == node.fields
            and all(
                skeleton_matches(s, c)
                for s, c in zip(skeleton.targets, node.targets)
            )
        )
    if isinstance(skeleton, PredTerm):
        return (
            isinstance(node, PredTerm)
            and skeleton.pred == node.pred
            and len(skeleton.args) == len(node.args)
            and all(
                skeleton_matches(s, c) for s, c in zip(skeleton.args, node.args)
            )
        )
    raise AssertionError(f"unexpected skeleton node {skeleton}")


def _make_segment(node: Term, recursion_points: tuple[Position, ...]) -> Term | None:
    """*node* with the subtrees at the recursion points cut to holes."""

    def build(current: Term, pos: Position) -> Term | None:
        if pos in recursion_points:
            return HOLE
        if not any(_is_position_prefix(pos, r) or pos == r for r in recursion_points):
            return current
        kids = children(current)
        rebuilt = []
        for i, child in enumerate(kids):
            piece = build(child, pos + (i,))
            if piece is None:
                return None
            rebuilt.append(piece)
        if isinstance(current, StarTerm):
            return StarTerm(current.fields, tuple(rebuilt), loc=current.loc)
        if isinstance(current, PredTerm):
            return PredTerm(current.pred, tuple(rebuilt), loc=current.loc)
        return None  # recursion point under a non-structural node

    return build(node, ())


def _validate(term: Term, recursion_points: tuple[Position, ...]) -> Segmentation | None:
    """Full validity check; builds the segmentation artifacts."""
    for r in recursion_points:
        if subterm(term, r) is None:
            return None
    skeleton = make_skeleton(term, recursion_points)
    # The root's own parameter positions must hold legal parameter
    # instantiations (names or null -- e.g. mcf_tree(h, null, null)).
    if not _root_parameters_legal(skeleton, term):
        return None
    segments: dict[Position, Term] = {}
    pairs: list[tuple[Position, int, Position]] = []
    folded_tails: list[tuple[Position, int, PredTerm]] = []

    def walk(pos: Position) -> bool:
        node = subterm(term, pos)
        segment = _make_segment(node, recursion_points)
        if segment is None:
            return False
        segments[pos] = segment
        for index, r in enumerate(recursion_points):
            child_pos = pos + r
            child = subterm(term, child_pos)
            if child is None:
                return False
            if is_terminal(child):
                continue
            if isinstance(child, PredTerm):
                folded_tails.append((pos, index, child))
                continue
            if not skeleton_matches(skeleton, child):
                return False
            pairs.append((pos, index, child_pos))
            if not walk(child_pos):
                return False
        return True

    if not walk(()):
        return None
    if not pairs and not folded_tails:
        return None  # the recurrence was never seen to repeat
    return Segmentation(
        recursion_points,
        skeleton,
        segments,
        tuple(pairs),
        tuple(folded_tails),
    )


def _root_parameters_legal(skeleton: Term, root: Term) -> bool:
    """Variable positions of the skeleton must hold names, null or
    folded instances in the root segment (they become the arguments of
    the top-level predicate instantiation)."""

    def check(skel: Term, node: Term) -> bool:
        if isinstance(skel, Hole):
            return True
        if isinstance(skel, VarTerm):
            return isinstance(node, (NameTerm, NullTerm, PredTerm))
        for s, c in zip(children(skel), children(node)):
            if not check(s, c):
                return False
        return True

    return check(skeleton, root)
