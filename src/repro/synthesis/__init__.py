"""Inductive recursion synthesis: the paper's core contribution (§3).

Pipeline: heap formula -> term forest (:mod:`translate`) -> segmentation
search (:mod:`segmentation`) -> anti-unification (:mod:`antiunify`) ->
parameter substitutions (:mod:`substitution`) -> predicate definition
(:mod:`synthesize`).
"""

from repro.synthesis.antiunify import AntiUnification, anti_unify
from repro.synthesis.segmentation import (
    Segmentation,
    find_segmentations,
    make_skeleton,
    skeleton_matches,
)
from repro.synthesis.substitution import SampleContext, fit_argument
from repro.synthesis.synthesize import (
    SynthesisFailure,
    SynthesizedInstance,
    synthesize_forest,
    synthesize_term,
)
from repro.synthesis.terms import (
    HOLE,
    NULL_TERM,
    Hole,
    NameTerm,
    NullTerm,
    PredTerm,
    StarTerm,
    Term,
    VarTerm,
    children,
    contains_terminal,
    format_term,
    is_terminal,
    name_term,
    positions,
    subterm,
    term_size,
)
from repro.synthesis.translate import heap_term_of, translate_heap

__all__ = [
    "AntiUnification",
    "HOLE",
    "Hole",
    "NULL_TERM",
    "NameTerm",
    "NullTerm",
    "PredTerm",
    "SampleContext",
    "Segmentation",
    "StarTerm",
    "SynthesisFailure",
    "SynthesizedInstance",
    "Term",
    "VarTerm",
    "anti_unify",
    "children",
    "contains_terminal",
    "find_segmentations",
    "fit_argument",
    "format_term",
    "heap_term_of",
    "is_terminal",
    "make_skeleton",
    "name_term",
    "positions",
    "skeleton_matches",
    "subterm",
    "synthesize_forest",
    "synthesize_term",
    "term_size",
    "translate_heap",
]
