"""Lowering mini-C to the low-level IR.

Mirrors what the paper's optimizing C compiler does before the shape
analysis runs: expressions flatten into three-address instructions over
virtual registers, ``->`` accesses become explicit loads/stores,
structured control flow becomes labels and branches, and
``p + k`` / ``p - k`` on struct pointers stays element-granular.

Short-circuit ``&&``/``||`` lower to branches; comparisons used as
values materialize 0/1 through a small diamond.
"""

from __future__ import annotations

from repro.frontend.cast import (
    AssignStmt,
    BinaryExpr,
    BlockStmt,
    CallExpr,
    DeclStmt,
    Expr,
    ExprStmt,
    FieldExpr,
    ForStmt,
    FreeStmt,
    FuncDecl,
    IfStmt,
    IntType,
    MallocExpr,
    NullExpr,
    NumberExpr,
    PtrType,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    TranslationUnit,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)
from repro.frontend.cparser import parse
from repro.ir import (
    NULL,
    Cond,
    IntConst,
    Operand,
    ProcBuilder,
    Program,
    ProgramBuilder,
    Register,
)

__all__ = ["lower", "compile_c", "LowerError"]

_COMPARISONS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod"}


class LowerError(Exception):
    """A construct the IR cannot express (should be rare: the parser
    already restricts the language)."""


class _FunctionLowerer:
    def __init__(self, unit: TranslationUnit, func: FuncDecl):
        self.unit = unit
        self.func = func
        self.b = ProcBuilder(func.name, [p.name for p in func.params])

    def lower(self):
        self._block(self.func.body)
        return self.b.build()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _block(self, block: BlockStmt) -> None:
        for statement in block.statements:
            self._statement(statement)

    def _statement(self, statement: Stmt) -> None:
        if isinstance(statement, BlockStmt):
            self._block(statement)
        elif isinstance(statement, DeclStmt):
            value = (
                self._rvalue(statement.init)
                if statement.init is not None
                else (NULL if isinstance(statement.ctype, PtrType) else IntConst(0))
            )
            self.b.assign(statement.name, value)
        elif isinstance(statement, AssignStmt):
            self._assign(statement)
        elif isinstance(statement, ExprStmt):
            self._rvalue(statement.expr)
        elif isinstance(statement, IfStmt):
            self._if(statement)
        elif isinstance(statement, WhileStmt):
            self._while(statement)
        elif isinstance(statement, ForStmt):
            self._for(statement)
        elif isinstance(statement, ReturnStmt):
            value = (
                self._rvalue(statement.value)
                if statement.value is not None
                else None
            )
            self.b.ret(value)
        elif isinstance(statement, FreeStmt):
            self.b.free(self._as_register(self._rvalue(statement.target)))
        else:
            raise LowerError(f"cannot lower {statement}")

    def _assign(self, statement: AssignStmt) -> None:
        if isinstance(statement.target, VarExpr):
            self.b.assign(statement.target.name, self._rvalue(statement.value))
            return
        target = statement.target
        base = self._as_register(self._rvalue(target.base))
        self.b.store(base, target.field, self._rvalue(statement.value))

    def _if(self, statement: IfStmt) -> None:
        if statement.otherwise is None:
            end = self.b.fresh_label("endif")
            self._branch_if_false(statement.cond, end)
            self._block(statement.then)
            self.b._labels[end] = len(self.b._instrs)
            return
        else_label = self.b.fresh_label("else")
        end = self.b.fresh_label("endif")
        self._branch_if_false(statement.cond, else_label)
        self._block(statement.then)
        self.b.goto(end)
        self.b._labels[else_label] = len(self.b._instrs)
        self._block(statement.otherwise)
        self.b._labels[end] = len(self.b._instrs)

    def _while(self, statement: WhileStmt) -> None:
        header = self.b.label()
        exit_label = self.b.fresh_label("endwhile")
        self._branch_if_false(statement.cond, exit_label)
        self._block(statement.body)
        self.b.goto(header)
        self.b._labels[exit_label] = len(self.b._instrs)

    def _for(self, statement: ForStmt) -> None:
        if statement.init is not None:
            self._statement(statement.init)
        header = self.b.label()
        exit_label = self.b.fresh_label("endfor")
        if statement.cond is not None:
            self._branch_if_false(statement.cond, exit_label)
        self._block(statement.body)
        if statement.step is not None:
            self._statement(statement.step)
        self.b.goto(header)
        self.b._labels[exit_label] = len(self.b._instrs)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _branch_if_false(self, cond: Expr, target: str) -> None:
        """Branch to *target* when *cond* is false (short-circuiting)."""
        if isinstance(cond, BinaryExpr) and cond.op in _COMPARISONS:
            lhs = self._rvalue(cond.lhs)
            rhs = self._rvalue(cond.rhs)
            negated = Cond(_COMPARISONS[cond.op], lhs, rhs).negated()
            self.b.emit_branch(negated, target)
            return
        if isinstance(cond, BinaryExpr) and cond.op == "&&":
            self._branch_if_false(cond.lhs, target)
            self._branch_if_false(cond.rhs, target)
            return
        if isinstance(cond, BinaryExpr) and cond.op == "||":
            take = self.b.fresh_label("or")
            self._branch_if_true(cond.lhs, take)
            self._branch_if_false(cond.rhs, target)
            self.b._labels[take] = len(self.b._instrs)
            return
        if isinstance(cond, UnaryExpr) and cond.op == "!":
            self._branch_if_true(cond.operand, target)
            return
        # Truthiness: false iff equal to null/zero.
        value = self._rvalue(cond)
        self.b.emit_branch(Cond("eq", value, _zero_of(cond, self)), target)

    def _branch_if_true(self, cond: Expr, target: str) -> None:
        if isinstance(cond, BinaryExpr) and cond.op in _COMPARISONS:
            lhs = self._rvalue(cond.lhs)
            rhs = self._rvalue(cond.rhs)
            self.b.emit_branch(Cond(_COMPARISONS[cond.op], lhs, rhs), target)
            return
        if isinstance(cond, BinaryExpr) and cond.op == "&&":
            skip = self.b.fresh_label("and")
            self._branch_if_false(cond.lhs, skip)
            self._branch_if_true(cond.rhs, target)
            self.b._labels[skip] = len(self.b._instrs)
            return
        if isinstance(cond, BinaryExpr) and cond.op == "||":
            self._branch_if_true(cond.lhs, target)
            self._branch_if_true(cond.rhs, target)
            return
        if isinstance(cond, UnaryExpr) and cond.op == "!":
            self._branch_if_false(cond.operand, target)
            return
        value = self._rvalue(cond)
        self.b.emit_branch(Cond("ne", value, _zero_of(cond, self)), target)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _rvalue(self, expr: Expr) -> Operand:
        if isinstance(expr, NumberExpr):
            return IntConst(expr.value)
        if isinstance(expr, NullExpr):
            return NULL
        if isinstance(expr, SizeofExpr):
            return IntConst(1)  # element-granular model
        if isinstance(expr, VarExpr):
            return Register(expr.name)
        if isinstance(expr, FieldExpr):
            base = self._as_register(self._rvalue(expr.base))
            return self.b.load(self.b.fresh_reg("t"), base, expr.field)
        if isinstance(expr, MallocExpr):
            count = (
                self._rvalue(expr.count) if expr.count is not None else None
            )
            return self.b.malloc(self.b.fresh_reg("m"), count)
        if isinstance(expr, CallExpr):
            args = [self._rvalue(a) for a in expr.args]
            return self.b.call(self.b.fresh_reg("r"), expr.func, list(args))
        if isinstance(expr, UnaryExpr) and expr.op == "-":
            value = self._rvalue(expr.operand)
            return self.b.arith(self.b.fresh_reg("t"), "sub", IntConst(0), value)
        if isinstance(expr, BinaryExpr) and expr.op in _ARITH:
            lhs = self._rvalue(expr.lhs)
            rhs = self._rvalue(expr.rhs)
            return self.b.arith(self.b.fresh_reg("t"), _ARITH[expr.op], lhs, rhs)
        if isinstance(expr, BinaryExpr) and expr.op in _COMPARISONS or (
            isinstance(expr, (BinaryExpr, UnaryExpr))
        ):
            # Comparison/boolean used as a value: materialize 0/1.
            result = self.b.fresh_reg("b")
            true_label = self.b.fresh_label("btrue")
            end = self.b.fresh_label("bend")
            self._branch_if_true(expr, true_label)
            self.b.assign(result, IntConst(0))
            self.b.goto(end)
            self.b._labels[true_label] = len(self.b._instrs)
            self.b.assign(result, IntConst(1))
            self.b._labels[end] = len(self.b._instrs)
            return result
        raise LowerError(f"cannot lower expression {expr}")

    def _as_register(self, operand: Operand) -> Register:
        if isinstance(operand, Register):
            return operand
        reg = self.b.fresh_reg("t")
        self.b.assign(reg, operand)
        return reg


def _zero_of(expr: Expr, lowerer: _FunctionLowerer) -> Operand:
    """Null for pointers, 0 for ints; the IR's filter treats an integer
    comparison as opaque anyway, so when in doubt use null."""
    return NULL


def lower(unit: TranslationUnit) -> Program:
    """Lower a parsed translation unit to an IR program."""
    builder = ProgramBuilder(
        entry="main", globals=tuple(g.name for g in unit.globals)
    )
    for func in unit.functions.values():
        builder.add(_FunctionLowerer(unit, func).lower())
    return builder.build()


def compile_c(source: str, typecheck: bool = True) -> Program:
    """Front door: mini-C source text to an IR program.

    ``typecheck=False`` skips the static checks (useful for feeding the
    analysis deliberately odd inputs in tests)."""
    unit = parse(source)
    if typecheck:
        from repro.frontend.typecheck import check_unit

        check_unit(unit)
    return lower(unit)
