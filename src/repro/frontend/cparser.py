"""Recursive-descent parser for the mini-C subset.

Grammar (simplified)::

    unit      := (struct_decl | func_decl | global_decl)*
    struct    := 'struct' ident '{' (type ident ';')* '}' ';'
    func      := type ident '(' params ')' block
    type      := ('int' | 'struct' ident '*'* | 'void')
    block     := '{' stmt* '}'
    stmt      := decl | assign | if | while | for | return | free | call ';'
    assign    := lvalue '=' expr ';'
    lvalue    := ident | expr '->' ident
    expr      := precedence-climbing over || && == != < <= > >= + - * / %

Only the constructs the analysis models are accepted; anything else is
a :class:`ParseError` with a line number.
"""

from __future__ import annotations

from repro.frontend.cast import (
    AssignStmt,
    BinaryExpr,
    BlockStmt,
    CallExpr,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FieldExpr,
    ForStmt,
    FreeStmt,
    FuncDecl,
    IfStmt,
    IntType,
    MallocExpr,
    NullExpr,
    NumberExpr,
    PtrType,
    ReturnStmt,
    SizeofExpr,
    StructDecl,
    TranslationUnit,
    UnaryExpr,
    VarDecl,
    VarExpr,
    WhileStmt,
)
from repro.frontend.lexer import Token, tokenize

__all__ = ["parse", "ParseError"]

_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class ParseError(Exception):
    def __init__(self, token: Token, message: str):
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(token, f"expected {want!r}")
        return self._advance()

    def _at(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> bool:
        if self._at(kind, text):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        while not self._at("eof"):
            if self._at("keyword", "struct") and self._peek(2).text == "{":
                struct = self._parse_struct()
                unit.structs[struct.name] = struct
                continue
            ctype = self._parse_type(allow_void=True)
            name = self._expect("ident").text
            if self._at("("):
                unit.functions[name] = self._parse_function(ctype, name)
            else:
                self._expect(";")
                if ctype is None:
                    raise ParseError(self._peek(), "void global")
                unit.globals.append(VarDecl(name, ctype))
        return unit

    def _parse_struct(self) -> StructDecl:
        self._expect("keyword", "struct")
        name = self._expect("ident").text
        self._expect("{")
        fields: list[tuple[str, CType]] = []
        while not self._accept("}"):
            ctype = self._parse_type()
            assert ctype is not None
            field_name = self._expect("ident").text
            self._expect(";")
            fields.append((field_name, ctype))
        self._expect(";")
        return StructDecl(name, fields)

    def _parse_type(self, allow_void: bool = False) -> CType | None:
        if self._accept("keyword", "void"):
            stars = 0
            while self._accept("*"):
                stars += 1
            if stars:
                return PtrType("")
            if not allow_void:
                raise ParseError(self._peek(), "void is only a return type")
            return None
        if self._accept("keyword", "int"):
            stars = 0
            while self._accept("*"):
                stars += 1
            return PtrType("") if stars else IntType()
        if self._accept("keyword", "struct"):
            name = self._expect("ident").text
            stars = 0
            while self._accept("*"):
                stars += 1
            if stars == 0:
                raise ParseError(
                    self._peek(), "struct values are not supported; use a pointer"
                )
            return PtrType(name)
        raise ParseError(self._peek(), "expected a type")

    def _parse_function(self, return_type: CType | None, name: str) -> FuncDecl:
        self._expect("(")
        params: list[VarDecl] = []
        if not self._at(")"):
            if self._at("keyword", "void") and self._peek(1).text == ")":
                self._advance()
            else:
                while True:
                    ctype = self._parse_type()
                    assert ctype is not None
                    pname = self._expect("ident").text
                    params.append(VarDecl(pname, ctype))
                    if not self._accept(","):
                        break
        self._expect(")")
        body = self._parse_block()
        return FuncDecl(name, return_type, params, body)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> BlockStmt:
        self._expect("{")
        block = BlockStmt()
        while not self._accept("}"):
            block.statements.append(self._parse_statement())
        return block

    def _parse_statement(self) -> "Stmt":
        if self._at("{"):
            return self._parse_block()
        if self._at("keyword", "if"):
            return self._parse_if()
        if self._at("keyword", "while"):
            return self._parse_while()
        if self._at("keyword", "for"):
            return self._parse_for()
        if self._at("keyword", "return"):
            self._advance()
            value = None if self._at(";") else self._parse_expr()
            self._expect(";")
            return ReturnStmt(value)
        if self._at("keyword", "free"):
            self._advance()
            self._expect("(")
            target = self._parse_expr()
            self._expect(")")
            self._expect(";")
            return FreeStmt(target)
        if self._at("keyword", "int") or self._at("keyword", "struct"):
            return self._parse_decl()
        return self._parse_simple_statement(expect_semi=True)

    def _parse_decl(self) -> DeclStmt:
        ctype = self._parse_type()
        assert ctype is not None
        name = self._expect("ident").text
        init = None
        if self._accept("="):
            init = self._parse_expr()
        self._expect(";")
        return DeclStmt(name, ctype, init)

    def _parse_simple_statement(self, expect_semi: bool) -> "Stmt":
        """Assignment, increment, or expression statement (no keyword)."""
        expr = self._parse_expr()
        if self._accept("="):
            value = self._parse_expr()
            if expect_semi:
                self._expect(";")
            if not isinstance(expr, (VarExpr, FieldExpr)):
                raise ParseError(self._peek(), "bad assignment target")
            return AssignStmt(expr, value)
        if self._at("++") or self._at("--"):
            op = self._advance().text
            if expect_semi:
                self._expect(";")
            if not isinstance(expr, VarExpr):
                raise ParseError(self._peek(), "++/-- needs a variable")
            delta = BinaryExpr("+" if op == "++" else "-", expr, NumberExpr(1))
            return AssignStmt(expr, delta)
        if expect_semi:
            self._expect(";")
        return ExprStmt(expr)

    def _parse_if(self) -> IfStmt:
        self._expect("keyword", "if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then = self._parse_statement_as_block()
        otherwise = None
        if self._accept("keyword", "else"):
            otherwise = self._parse_statement_as_block()
        return IfStmt(cond, then, otherwise)

    def _parse_while(self) -> WhileStmt:
        self._expect("keyword", "while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        return WhileStmt(cond, self._parse_statement_as_block())

    def _parse_for(self) -> ForStmt:
        self._expect("keyword", "for")
        self._expect("(")
        init = None
        if not self._at(";"):
            if self._at("keyword", "int") or self._at("keyword", "struct"):
                init = self._parse_decl()
            else:
                init = self._parse_simple_statement(expect_semi=True)
        else:
            self._expect(";")
        cond = None if self._at(";") else self._parse_expr()
        self._expect(";")
        step = None
        if not self._at(")"):
            step = self._parse_simple_statement(expect_semi=False)
        self._expect(")")
        return ForStmt(init, cond, step, self._parse_statement_as_block())

    def _parse_statement_as_block(self) -> BlockStmt:
        statement = self._parse_statement()
        if isinstance(statement, BlockStmt):
            return statement
        return BlockStmt([statement])

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expr(self, min_precedence: int = 1) -> Expr:
        lhs = self._parse_unary()
        while True:
            token = self._peek()
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                break
            self._advance()
            rhs = self._parse_expr(precedence + 1)
            lhs = BinaryExpr(token.text, lhs, rhs)
        return lhs

    def _parse_unary(self) -> Expr:
        if self._accept("-"):
            return UnaryExpr("-", self._parse_unary())
        if self._accept("!"):
            return UnaryExpr("!", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._accept("->"):
            field_name = self._expect("ident").text
            expr = FieldExpr(expr, field_name)
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return NumberExpr(int(token.text))
        if self._accept("keyword", "NULL"):
            return NullExpr()
        if self._at("keyword", "malloc"):
            return self._parse_malloc()
        if self._at("keyword", "sizeof"):
            return SizeofExpr(self._parse_sizeof())
        if token.kind == "ident":
            self._advance()
            if self._accept("("):
                args = []
                if not self._at(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept(","):
                            break
                self._expect(")")
                return CallExpr(token.text, tuple(args))
            return VarExpr(token.text)
        if self._accept("("):
            # A cast "(struct s *) e" is accepted and ignored.
            if self._at("keyword", "struct") or self._at("keyword", "int"):
                self._parse_type()
                self._expect(")")
                return self._parse_unary()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise ParseError(token, "expected an expression")

    def _parse_sizeof(self) -> str:
        self._expect("keyword", "sizeof")
        self._expect("(")
        self._expect("keyword", "struct")
        name = self._expect("ident").text
        while self._accept("*"):
            pass
        self._expect(")")
        return name

    def _parse_malloc(self) -> MallocExpr:
        self._expect("keyword", "malloc")
        self._expect("(")
        argument = self._parse_expr()
        self._expect(")")
        if isinstance(argument, SizeofExpr):
            return MallocExpr(argument.struct, None)
        if isinstance(argument, BinaryExpr) and argument.op == "*":
            if isinstance(argument.rhs, SizeofExpr):
                return MallocExpr(argument.rhs.struct, argument.lhs)
            if isinstance(argument.lhs, SizeofExpr):
                return MallocExpr(argument.lhs.struct, argument.rhs)
        raise ParseError(
            self._peek(), "malloc argument must be [n *] sizeof(struct s)"
        )


def parse(source: str) -> TranslationUnit:
    """Parse mini-C source into a :class:`TranslationUnit`."""
    return _Parser(tokenize(source)).parse_unit()
