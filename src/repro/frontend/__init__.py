"""Mini-C frontend: lexer, parser and lowering to the low-level IR --
the role the paper's optimizing C compiler plays upstream of the
analysis."""

from repro.frontend.cast import TranslationUnit
from repro.frontend.cparser import ParseError, parse
from repro.frontend.lexer import LexError, Token, tokenize
from repro.frontend.lower import LowerError, compile_c, lower
from repro.frontend.typecheck import TypeError_, check_unit

__all__ = [
    "LexError",
    "LowerError",
    "ParseError",
    "TypeError_",
    "check_unit",
    "Token",
    "TranslationUnit",
    "compile_c",
    "lower",
    "parse",
    "tokenize",
]
