"""Lexer for the mini-C subset.

The frontend accepts the C fragment the benchmark kernels need:
struct declarations with pointer and integer members, functions,
pointers, ``->`` field access, ``malloc``/``free``, ``while``/``for``/
``if``/``else``/``return``, integer arithmetic and comparisons, and
element-level pointer arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "struct",
    "int",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "sizeof",
    "malloc",
    "free",
    "NULL",
}

_PUNCT = [
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "{",
    "}",
    "(",
    ")",
    ";",
    ",",
    "*",
    "+",
    "-",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    ".",
    "&",
]


class LexError(Exception):
    """Malformed input, with a line number."""

    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'ident', 'number', 'keyword', or the punctuation itself
    text: str
    line: int

    def __str__(self) -> str:
        return self.text


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*; raises :class:`LexError` on junk."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(line, "unterminated comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("number", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        for punct in _PUNCT:
            if source.startswith(punct, i):
                tokens.append(Token(punct, punct, line))
                i += len(punct)
                break
        else:
            raise LexError(line, f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens
